"""Golden regression tests for the table generators and reporting layer.

Two pinning strategies:

* **Formatting goldens** — synthetic :class:`SuiteResult` objects with fixed
  accuracies *and* timings, so the full rendered Table I/II text (including
  the fused-engine footer) is deterministic and pinned byte-for-byte.  Any
  change to column layout, separators, precision or footer phrasing fails
  here loudly.
* **Numeric goldens** — a real fixed-seed tiny-scale suite run over the
  shared session datasets, pinned at the rendered two-decimal precision.
  Any drift in dataset generation, seed derivation, splitting or model
  training shows up as changed accuracy cells.

If a failure here is *intentional* (a deliberate format or algorithm
change), regenerate the expected strings with the snippet in each test's
docstring and update the constants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    format_mean_std,
    format_series,
    format_table,
    run_suite,
    table1_accuracy,
    table2_inference,
)
from repro.experiments.runner import ModelRunResult, SuiteResult

pytestmark = pytest.mark.runtime


def _cell(model, dataset, accs, infer, engine=None, warm=None, ratio=None):
    return ModelRunResult(
        model_name=model,
        dataset_name=dataset,
        accuracies=np.asarray(accs),
        train_seconds=np.asarray([0.5, 0.6]),
        inference_seconds_per_query=np.asarray(infer),
        engine_inference_seconds_per_query=(
            None if engine is None else np.asarray(engine)
        ),
        engine_warm_seconds_per_query=None if warm is None else np.asarray(warm),
        engine_cache_hit_ratio=ratio,
        seeds=(0, 1),
    )


@pytest.fixture(scope="module")
def synthetic_suite() -> SuiteResult:
    """Hand-built suite with fixed numbers: rendering is fully deterministic."""
    return SuiteResult(
        results={
            "WESAD": {
                "SVM": _cell("SVM", "WESAD", [0.9123, 0.9321], [2.5e-5, 3.5e-5]),
                "BoostHD": _cell(
                    "BoostHD",
                    "WESAD",
                    [0.9837, 0.9773],
                    [4.0e-5, 6.0e-5],
                    engine=[1.0e-5, 1.5e-5],
                    warm=[0.5e-5, 0.75e-5],
                    ratio=0.875,
                ),
            },
            "Nurse Stress Dataset": {
                "SVM": _cell(
                    "SVM", "Nurse Stress Dataset", [0.8, 0.82], [1.5e-5, 2.5e-5]
                ),
                "BoostHD": _cell(
                    "BoostHD",
                    "Nurse Stress Dataset",
                    [0.9, 0.88],
                    [3.0e-5, 5.0e-5],
                    engine=[2.0e-5, 2.0e-5],
                ),
            },
        }
    )


GOLDEN_TABLE1_SYNTHETIC = (
    "TABLE I — Accuracy (%) vs baselines\n"
    "Dataset              | SVM          | BoostHD     \n"
    "---------------------+--------------+-------------\n"
    "WESAD                | 92.22 ± 0.99 | 98.05 ± 0.32\n"
    "Nurse Stress Dataset | 81.00 ± 1.00 | 89.00 ± 1.00"
)

GOLDEN_TABLE2_SYNTHETIC = (
    "TABLE II — Inference time (1e-5 seconds per query)\n"
    "Dataset              | SVM | BoostHD\n"
    "---------------------+-----+--------\n"
    "WESAD                | 3.0 | 5.0    \n"
    "Nurse Stress Dataset | 2.0 | 4.0    \n"
    "Fused-engine inference (repro.engine):\n"
    "  WESAD / BoostHD: loop 5.0 -> fused 1.2 (1e-5 s/query, 4.0x speedup); "
    "cache-warm 0.6, hit ratio 88%\n"
    "  Nurse Stress Dataset / BoostHD: loop 4.0 -> fused 2.0 "
    "(1e-5 s/query, 2.0x speedup)"
)


class TestFormattingGoldens:
    def test_table1_rendering_pinned(self, synthetic_suite):
        _, text = table1_accuracy(synthetic_suite)
        assert text == GOLDEN_TABLE1_SYNTHETIC

    def test_table2_rendering_pinned(self, synthetic_suite):
        _, text = table2_inference(synthetic_suite)
        assert text == GOLDEN_TABLE2_SYNTHETIC

    def test_format_mean_std_pinned(self):
        assert format_mean_std(0.9837, 0.0032) == "98.37 ± 0.32"
        assert format_mean_std(1.0, 0.0) == "100.00 ± 0.00"
        assert format_mean_std(0.5, 0.25, percent=False) == "0.50 ± 0.25"

    def test_format_table_layout_pinned(self):
        text = format_table(
            [
                {"Model": "BoostHD", "Acc": "98.4"},
                {"Model": "OnlineHD", "Acc": "96.41"},
            ],
            ["Model", "Acc"],
            title="demo",
        )
        assert text == (
            "demo\n"
            "Model    | Acc  \n"
            "---------+------\n"
            "BoostHD  | 98.4 \n"
            "OnlineHD | 96.41"
        )

    def test_format_series_layout_pinned(self):
        text = format_series(
            [100, 200], {"acc": [0.5, 0.75]}, x_label="D", title="sweep"
        )
        assert text == (
            "sweep\n"
            "D   | acc   \n"
            "----+-------\n"
            "100 | 0.5000\n"
            "200 | 0.7500"
        )


#: Rendered Table I of the fixed-seed tiny-scale suite over the shared
#: session datasets (mini WESAD seed 0, mini Nurse seed 1; OnlineHD and
#: BoostHD; legacy per-run seeds 0/1; split_seed 7).  Regenerate with::
#:
#:     suite = run_suite(suite_datasets, ("OnlineHD", "BoostHD"),
#:                       scale=TINY_SCALE, n_runs=2)
#:     print(table1_accuracy(suite)[1])
GOLDEN_TABLE1_REAL = (
    "TABLE I — Accuracy (%) vs baselines\n"
    "Dataset              | OnlineHD     | BoostHD      \n"
    "---------------------+--------------+--------------\n"
    "WESAD                | 96.67 ± 3.33 | 93.33 ± 0.00 \n"
    "Nurse Stress Dataset | 58.33 ± 8.33 | 79.17 ± 12.50"
)


class TestNumericGoldens:
    @pytest.fixture(scope="class")
    def real_suite(self, suite_datasets, tiny_scale):
        return run_suite(
            suite_datasets, ("OnlineHD", "BoostHD"), scale=tiny_scale, n_runs=2
        )

    def test_fixed_seed_table1_pinned(self, real_suite):
        """Numeric drift anywhere in data→split→train→score fails this test."""
        _, text = table1_accuracy(real_suite)
        assert text == GOLDEN_TABLE1_REAL

    def test_fixed_seed_run_is_reproducible_in_parallel(
        self, suite_datasets, tiny_scale, real_suite
    ):
        """The pinned numbers are also what a 2-worker run renders."""
        parallel = run_suite(
            suite_datasets,
            ("OnlineHD", "BoostHD"),
            scale=tiny_scale,
            n_runs=2,
            max_workers=2,
        )
        assert table1_accuracy(parallel)[1] == GOLDEN_TABLE1_REAL
