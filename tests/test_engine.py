"""Equivalence contract of the fused batch-inference engine.

The engine (:mod:`repro.engine`) must reproduce the per-learner loop path of
``BoostHD.decision_function`` / ``OnlineHD.decision_function``: identical
predictions and scores within floating-point tolerance, across dtypes, chunk
sizes, both aggregation modes and both partitioners, with and without the
encoding cache.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoostHD, IndependentPartitioner, SharedPartitioner
from repro.core.boosthd import effective_alphas
from repro.engine import (
    CompiledModel,
    EngineError,
    LRUCache,
    auto_chunk_size,
    compile_model,
    iter_batches,
    resolve_chunk_size,
)
from repro.hdc import LevelIdEncoder, OnlineHD

TOTAL_DIM = 120
N_LEARNERS = 4


def make_boosthd(blobs_split, *, aggregation="score", shared=False, **kwargs):
    X_train, _, y_train, _ = blobs_split
    partitioner = (
        SharedPartitioner(TOTAL_DIM, N_LEARNERS, bandwidth=1.5) if shared else None
    )
    model = BoostHD(
        total_dim=TOTAL_DIM,
        n_learners=N_LEARNERS,
        epochs=2,
        aggregation=aggregation,
        partitioner=partitioner,
        seed=3,
        **kwargs,
    )
    return model.fit(X_train, y_train)


class TestBoostHDEquivalence:
    @pytest.mark.parametrize("aggregation", ["score", "vote"])
    @pytest.mark.parametrize("shared", [False, True])
    @pytest.mark.parametrize("chunk_size", [None, 7, "auto"])
    def test_matches_loop_path_float64(self, blobs_split, aggregation, shared, chunk_size):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split, aggregation=aggregation, shared=shared)
        engine = model.compile(dtype=np.float64, chunk_size=chunk_size)
        np.testing.assert_allclose(
            engine.decision_function(X_test), model.decision_function(X_test), atol=1e-9
        )
        assert np.array_equal(engine.predict(X_test), model.predict(X_test))

    @pytest.mark.parametrize("aggregation", ["score", "vote"])
    @pytest.mark.parametrize("shared", [False, True])
    def test_matches_loop_path_float32(self, blobs_split, aggregation, shared):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split, aggregation=aggregation, shared=shared)
        engine = model.compile(dtype=np.float32)
        np.testing.assert_allclose(
            engine.decision_function(X_test), model.decision_function(X_test), atol=1e-4
        )
        assert np.array_equal(engine.predict(X_test), model.predict(X_test))

    def test_predict_proba_matches(self, blobs_split):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split)
        engine = model.compile(dtype=np.float64)
        np.testing.assert_allclose(
            engine.predict_proba(X_test), model.predict_proba(X_test), atol=1e-9
        )

    def test_encode_matches_per_learner_encoders(self, blobs_split):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split)
        engine = model.compile(dtype=np.float64)
        encoded = engine.encode(X_test)
        start = 0
        for learner in model.learners_:
            stop = start + learner.encoder.dim
            np.testing.assert_allclose(
                encoded[:, start:stop], learner.encoder.encode(X_test), atol=1e-9
            )
            start = stop
        assert stop == engine.total_dim

    def test_shared_projection_detected(self, blobs_split):
        assert make_boosthd(blobs_split, shared=True).compile().shared_projection
        assert not make_boosthd(blobs_split, shared=False).compile().shared_projection

    def test_partitioners_declare_shared_projection(self):
        assert SharedPartitioner(40, 2).shared_projection is True
        assert IndependentPartitioner(40, 2).shared_projection is False

    def test_single_sample_vector_input(self, blobs_split):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split)
        engine = model.compile(dtype=np.float64)
        np.testing.assert_allclose(
            engine.decision_function(X_test[0]),
            model.decision_function(X_test[0]),
            atol=1e-9,
        )

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        seed=st.integers(0, 2**16),
        chunk_size=st.sampled_from([None, 3, 8, "auto"]),
        aggregation=st.sampled_from(["score", "vote"]),
        shared=st.booleans(),
    )
    def test_property_equivalence(self, seed, chunk_size, aggregation, shared):
        rng = np.random.default_rng(seed)
        centers = rng.standard_normal((3, 5)) * 3.0
        X = np.vstack([center + rng.standard_normal((12, 5)) for center in centers])
        y = np.repeat(np.arange(3), 12)
        partitioner = SharedPartitioner(60, 3, bandwidth=1.5) if shared else None
        model = BoostHD(
            total_dim=60,
            n_learners=3,
            epochs=1,
            aggregation=aggregation,
            partitioner=partitioner,
            seed=seed,
        ).fit(X, y)
        engine = model.compile(dtype=np.float64, chunk_size=chunk_size)
        np.testing.assert_allclose(
            engine.decision_function(X), model.decision_function(X), atol=1e-9
        )
        assert np.array_equal(engine.predict(X), model.predict(X))


class TestOnlineHDEquivalence:
    def test_matches_decision_function(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = OnlineHD(dim=100, epochs=2, seed=1).fit(X_train, y_train)
        engine = model.compile(dtype=np.float64)
        np.testing.assert_allclose(
            engine.decision_function(X_test), model.decision_function(X_test), atol=1e-9
        )
        assert np.array_equal(engine.predict(X_test), model.predict(X_test))

    def test_compile_model_function(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = OnlineHD(dim=80, epochs=1, seed=0).fit(X_train, y_train)
        engine = compile_model(model, dtype=np.float32, chunk_size=5)
        assert isinstance(engine, CompiledModel)
        assert np.array_equal(engine.predict(X_test), model.predict(X_test))


class TestDegenerateEnsembleGuard:
    def test_effective_alphas_normal(self):
        alphas = np.array([0.5, 1.5])
        weights, total = effective_alphas(alphas)
        np.testing.assert_allclose(weights, alphas)
        assert total == 2.0

    def test_effective_alphas_degenerate_falls_back_to_uniform(self):
        weights, total = effective_alphas(np.full(4, 1e-10))
        np.testing.assert_allclose(weights, 0.25)
        assert total == 1.0

    def test_all_worse_than_chance_scores_stay_bounded(self, blobs_split):
        """Regression: scores must not be amplified by dividing by ~1e-9.

        When every learner is worse than chance all stored importances are
        the 1e-10 sentinel; the old ``scores / total_alpha`` normalisation
        multiplied the aggregated scores by ~1e9.  The guard now averages the
        learners uniformly, keeping cosine-scale scores in [-1, 1].
        """
        model = make_boosthd(blobs_split)
        model.learner_weights_ = np.full(N_LEARNERS, 1e-10)
        _, X_test, _, _ = blobs_split
        scores = model.decision_function(X_test)
        assert np.all(np.abs(scores) <= 1.0 + 1e-9)
        expected = np.mean(
            [
                learner.decision_function(X_test)[
                    :, np.searchsorted(model.classes_, learner.classes_)
                ]
                for learner in model.learners_
            ],
            axis=0,
        )
        np.testing.assert_allclose(scores, expected, atol=1e-12)

    def test_engine_matches_degenerate_loop_path(self, blobs_split):
        model = make_boosthd(blobs_split)
        model.learner_weights_ = np.full(N_LEARNERS, 1e-10)
        _, X_test, _, _ = blobs_split
        engine = model.compile(dtype=np.float64)
        np.testing.assert_allclose(
            engine.decision_function(X_test), model.decision_function(X_test), atol=1e-9
        )


class TestCache:
    def test_cache_hits_preserve_results(self, blobs_split):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split)
        engine = model.compile(dtype=np.float64, cache_size=8)
        first = engine.decision_function(X_test)
        second = engine.decision_function(X_test)
        assert engine.cache.stats.hits >= 1
        np.testing.assert_allclose(first, second, atol=0)
        np.testing.assert_allclose(first, model.decision_function(X_test), atol=1e-9)

    def test_cache_hits_with_chunking(self, blobs_split):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split)
        engine = model.compile(dtype=np.float64, chunk_size=5, cache_size=32)
        baseline = model.decision_function(X_test)
        for _ in range(3):
            np.testing.assert_allclose(
                engine.decision_function(X_test), baseline, atol=1e-9
            )
        assert engine.cache.stats.hit_rate > 0.5

    def test_distinct_inputs_not_conflated(self, blobs_split):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split)
        engine = model.compile(dtype=np.float64, cache_size=8)
        engine.decision_function(X_test)
        shifted = X_test + 0.1
        np.testing.assert_allclose(
            engine.decision_function(shifted),
            model.decision_function(shifted),
            atol=1e-9,
        )

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.put(b"a", np.zeros(1))
        cache.put(b"b", np.ones(1))
        assert cache.get(b"a") is not None
        cache.put(b"c", np.ones(1) * 2)  # evicts b (least recently used)
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None
        assert cache.get(b"c") is not None
        assert cache.stats.evictions == 1

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestBatching:
    def test_iter_batches_covers_range(self):
        slices = list(iter_batches(10, 3))
        assert [s.start for s in slices] == [0, 3, 6, 9]
        assert slices[-1].stop == 10

    def test_iter_batches_single_chunk(self):
        assert list(iter_batches(5, 100)) == [slice(0, 5)]

    def test_resolve_chunk_size(self):
        assert resolve_chunk_size(None, 42, total_dim=10, itemsize=8) == 42
        assert resolve_chunk_size(7, 42, total_dim=10, itemsize=8) == 7
        auto = resolve_chunk_size("auto", 42, total_dim=10, itemsize=8)
        assert auto == auto_chunk_size(10, 8)

    def test_auto_chunk_size_respects_budget(self):
        assert auto_chunk_size(1000, 4, budget_bytes=4_000_000) == 1000
        assert auto_chunk_size(10**9, 8) == 1  # never returns zero

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            resolve_chunk_size(0, 10, total_dim=10, itemsize=8)
        with pytest.raises(ValueError):
            list(iter_batches(10, 0))


class TestCompileErrors:
    def test_unfitted_boosthd_raises(self):
        with pytest.raises(EngineError, match="unfitted"):
            compile_model(BoostHD(total_dim=40, n_learners=2))

    def test_unfitted_onlinehd_raises(self):
        with pytest.raises(EngineError, match="unfitted"):
            compile_model(OnlineHD(dim=40))

    def test_unsupported_model_raises(self):
        with pytest.raises(EngineError, match="expected BoostHD or OnlineHD"):
            compile_model(object())

    def test_unfusable_encoder_raises(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        encoder = LevelIdEncoder(X_train.shape[1], 50, feature_range=(-5, 5), rng=0)
        model = OnlineHD(dim=50, epochs=1, encoder=encoder, seed=0).fit(X_train, y_train)
        with pytest.raises(EngineError, match="projection parameters"):
            compile_model(model)

    def test_slice_of_unfusable_encoder_raises_engine_error(self, blobs_split):
        """A sliced non-projection root must also surface as EngineError."""
        from repro.hdc import SlicedEncoder

        X_train, _, y_train, _ = blobs_split
        root = LevelIdEncoder(X_train.shape[1], 64, feature_range=(-5, 5), rng=0)
        encoder = SlicedEncoder(root, 0, 32)
        model = OnlineHD(dim=32, epochs=1, encoder=encoder, seed=0).fit(X_train, y_train)
        with pytest.raises(EngineError, match="projection parameters"):
            compile_model(model)

    def test_feature_mismatch_raises(self, blobs_split):
        model = make_boosthd(blobs_split)
        engine = model.compile()
        with pytest.raises(ValueError, match="features"):
            engine.predict(np.zeros((3, 99)))


class TestCacheByteBound:
    def test_max_bytes_evicts_by_size(self):
        cache = LRUCache(None, max_bytes=3 * 80)  # three 10-float64 entries
        for key in (b"a", b"b", b"c"):
            cache.put(key, np.zeros(10))
        assert len(cache) == 3 and cache.current_bytes == 240
        cache.put(b"d", np.zeros(10))  # over budget: evicts LRU (a)
        assert len(cache) == 3
        assert cache.get(b"a") is None
        assert cache.get(b"d") is not None
        assert cache.stats.evictions == 1
        assert cache.current_bytes <= cache.max_bytes

    def test_oversized_value_is_not_stored(self):
        cache = LRUCache(None, max_bytes=100)
        cache.put(b"small", np.zeros(10))
        cache.put(b"huge", np.zeros(1000))  # 8000 bytes > budget: skipped
        assert cache.get(b"huge") is None
        assert cache.get(b"small") is not None  # not displaced by the giant

    def test_count_and_byte_bounds_combine(self):
        cache = LRUCache(2, max_bytes=10_000)
        cache.put(b"a", np.zeros(10))
        cache.put(b"b", np.zeros(10))
        cache.put(b"c", np.zeros(10))
        assert len(cache) == 2  # count bound still applies

    def test_replacement_updates_byte_accounting(self):
        cache = LRUCache(None, max_bytes=1000)
        cache.put(b"a", np.zeros(10))
        cache.put(b"a", np.zeros(50))
        assert len(cache) == 1 and cache.current_bytes == 400

    def test_clear_resets_bytes(self):
        cache = LRUCache(4, max_bytes=1000)
        cache.put(b"a", np.zeros(10))
        cache.clear()
        assert cache.current_bytes == 0 and len(cache) == 0

    def test_hit_ratio_alias(self):
        cache = LRUCache(4)
        cache.put(b"a", np.zeros(2))
        cache.get(b"a")
        cache.get(b"missing")
        assert cache.stats.hit_ratio == cache.stats.hit_rate == 0.5

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            LRUCache(None)
        with pytest.raises(ValueError):
            LRUCache(None, max_bytes=0)

    def test_compile_cache_bytes_option(self, blobs_split):
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split)
        engine = model.compile(dtype=np.float64, chunk_size=5, cache_bytes=1 << 20)
        assert engine.cache is not None
        assert engine.cache.maxsize is None
        assert engine.cache.max_bytes == 1 << 20
        baseline = model.decision_function(X_test)
        for _ in range(2):
            np.testing.assert_allclose(
                engine.decision_function(X_test), baseline, atol=1e-9
            )
        assert engine.cache.stats.hit_ratio > 0.0
        assert engine.cache.current_bytes <= engine.cache.max_bytes

    def test_tiny_byte_budget_stays_correct(self, blobs_split):
        """A budget too small to hold even one chunk must not break scoring."""
        _, X_test, _, _ = blobs_split
        model = make_boosthd(blobs_split)
        engine = model.compile(dtype=np.float64, chunk_size=5, cache_bytes=64)
        np.testing.assert_allclose(
            engine.decision_function(X_test), model.decision_function(X_test), atol=1e-9
        )
        assert len(engine.cache) == 0  # nothing fit, nothing cached
