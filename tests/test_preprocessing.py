"""Unit tests for preprocessing: scalers, label encoding, splits."""

import numpy as np
import pytest

from repro.baselines import (
    LabelEncoder,
    MinMaxScaler,
    StandardScaler,
    subject_train_test_split,
    train_test_split,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, (200, 4))
        transformed = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        transformed = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(transformed))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((3, 2)))

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        np.testing.assert_allclose(scaler.transform(np.array([[5.0]])), [[0.0]])


class TestMinMaxScaler:
    def test_range_is_unit_interval(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 5, (100, 3))
        transformed = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(transformed.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(transformed.max(axis=0), 1.0, atol=1e-12)

    def test_constant_feature_no_nan(self):
        X = np.full((5, 2), 7.0)
        assert np.all(np.isfinite(MinMaxScaler().fit_transform(X)))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))


class TestLabelEncoder:
    def test_roundtrip(self):
        labels = np.array(["stress", "baseline", "amusement", "stress"])
        encoder = LabelEncoder().fit(labels)
        encoded = encoder.transform(labels)
        np.testing.assert_array_equal(encoder.inverse_transform(encoded), labels)

    def test_contiguous_integer_codes(self):
        encoder = LabelEncoder()
        codes = encoder.fit_transform(np.array([10, 30, 20, 10]))
        assert set(codes) == {0, 1, 2}

    def test_unknown_label_raises(self):
        encoder = LabelEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValueError):
            encoder.transform(np.array(["c"]))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(np.array([1]))


class TestTrainTestSplit:
    def test_sizes_sum_to_total(self):
        X = np.arange(100).reshape(50, 2)
        y = np.repeat([0, 1], 25)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_fraction=0.2, rng=0)
        assert len(X_train) + len(X_test) == 50
        assert len(y_train) + len(y_test) == 50

    def test_stratified_keeps_both_classes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.array([0] * 15 + [1] * 5)
        _, _, _, y_test = train_test_split(X, y, test_fraction=0.25, stratify=True, rng=0)
        assert set(np.unique(y_test)) == {0, 1}

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(4), test_fraction=1.5)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(3))


class TestSubjectSplit:
    def test_no_subject_overlap(self):
        rng = np.random.default_rng(0)
        subjects = np.repeat(np.arange(6), 10)
        X = rng.standard_normal((60, 3))
        y = rng.integers(0, 2, 60)
        X_train, X_test, y_train, y_test = subject_train_test_split(
            X, y, subjects, test_fraction=0.3, rng=0
        )
        train_rows = {tuple(row) for row in X_train}
        test_rows = {tuple(row) for row in X_test}
        assert not train_rows & test_rows
        assert len(X_train) + len(X_test) == 60

    def test_at_least_one_subject_each_side(self):
        subjects = np.repeat([0, 1], 5)
        X = np.random.default_rng(0).standard_normal((10, 2))
        y = np.zeros(10)
        X_train, X_test, _, _ = subject_train_test_split(X, y, subjects, test_fraction=0.9, rng=0)
        assert len(X_train) > 0 and len(X_test) > 0

    def test_single_subject_raises(self):
        subjects = np.zeros(10)
        with pytest.raises(ValueError):
            subject_train_test_split(np.ones((10, 2)), np.ones(10), subjects)

    def test_invalid_fraction_raises(self):
        subjects = np.repeat([0, 1], 5)
        with pytest.raises(ValueError):
            subject_train_test_split(np.ones((10, 2)), np.ones(10), subjects, test_fraction=0.0)
