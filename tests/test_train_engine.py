"""Equivalence and property contracts for the fused training engine.

The fast paths in :mod:`repro.engine.train` claim three different strengths
of equivalence, each pinned here:

* **Bit-equality** — the exact trainer (default) and the fused ensemble
  encoding must reproduce the reference implementation (``np.add.at``
  bundling + the per-sample loop on ``OnlineHD._adaptive_pass``, selectable
  with ``trainer="reference"``) byte for byte: same
  ``class_hypervectors_``, same ``learner_weights_``, same predictions,
  across every weighting mode, both entry points and both partitioners.
* **Properties** — the incremental norm cache of
  :class:`~repro.engine.train.ExactPassState` always matches freshly
  computed norms, and the sort-based bundling always matches the
  ``np.add.at`` scatter (hypothesis-driven).
* **Accuracy parity** — the opt-in mini-batch trainer is *not* bit-equal by
  design; it must stay within a small accuracy band of the exact path on
  Table I-style datasets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoostHD
from repro.core.partition import IndependentPartitioner, SharedPartitioner
from repro.engine.train import (
    ExactPassState,
    adaptive_pass_exact,
    adaptive_pass_minibatch,
    bundle_classes,
    encode_ensemble,
)
from repro.hdc import NonlinearEncoder, OnlineHD
from repro.hdc.encoder import LevelIdEncoder


# --------------------------------------------------------------------- helpers
def _weight_modes(n_samples: int):
    """The three weighting modes of the bit-equality matrix."""
    rng = np.random.default_rng(11)
    weights = rng.uniform(0.2, 1.0, n_samples)
    weights /= weights.sum()
    return {
        "unweighted": (None, True),
        "weighted bootstrap": (weights, True),
        "weighted scaled": (weights, False),
    }


def _partitioners(total_dim: int, n_learners: int):
    return {
        "independent": IndependentPartitioner(total_dim, n_learners),
        "shared": SharedPartitioner(total_dim, n_learners),
    }


def _assert_boosthd_identical(fast: BoostHD, reference: BoostHD, X):
    np.testing.assert_array_equal(fast.learner_weights_, reference.learner_weights_)
    np.testing.assert_array_equal(fast.learner_errors_, reference.learner_errors_)
    for fast_learner, ref_learner in zip(fast.learners_, reference.learners_):
        np.testing.assert_array_equal(
            fast_learner.class_hypervectors_, ref_learner.class_hypervectors_
        )
    np.testing.assert_array_equal(fast.predict(X), reference.predict(X))


@pytest.fixture(scope="module")
def train_problem():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((3, 6)) * 2.5
    X = np.vstack([center + rng.standard_normal((30, 6)) for center in centers])
    y = np.repeat(np.arange(3), 30)
    order = rng.permutation(len(y))
    return X[order], y[order]


# --------------------------------------------------- OnlineHD exact bit-equality
class TestOnlineHDExactEquivalence:
    @pytest.mark.parametrize("mode", ["unweighted", "weighted bootstrap", "weighted scaled"])
    def test_fit_bit_identical_to_reference(self, train_problem, mode):
        X, y = train_problem
        weights, bootstrap = _weight_modes(len(y))[mode]
        fast = OnlineHD(dim=90, epochs=3, bootstrap=bootstrap, seed=5)
        reference = OnlineHD(dim=90, epochs=3, bootstrap=bootstrap, seed=5)
        fast.fit(X, y, sample_weight=weights)
        reference.fit(X, y, sample_weight=weights, trainer="reference")
        np.testing.assert_array_equal(
            fast.class_hypervectors_, reference.class_hypervectors_
        )
        np.testing.assert_array_equal(fast.predict(X), reference.predict(X))

    @pytest.mark.parametrize("mode", ["unweighted", "weighted bootstrap", "weighted scaled"])
    def test_partial_fit_bit_identical_to_reference(self, train_problem, mode):
        X, y = train_problem
        weights, bootstrap = _weight_modes(len(y))[mode]
        fast = OnlineHD(dim=90, epochs=2, bootstrap=bootstrap, seed=9)
        reference = OnlineHD(dim=90, epochs=2, bootstrap=bootstrap, seed=9)
        fast.fit(X, y, sample_weight=weights)
        reference.fit(X, y, sample_weight=weights)
        fast.partial_fit(X, y, sample_weight=weights)
        reference.partial_fit(X, y, sample_weight=weights, trainer="reference")
        np.testing.assert_array_equal(
            fast.class_hypervectors_, reference.class_hypervectors_
        )

    def test_fit_then_partial_fit_continuation_unchanged(self, train_problem):
        """fit(epochs=k) + partial_fit still replays fit(epochs=k+1) exactly."""
        X, y = train_problem
        full = OnlineHD(dim=70, epochs=3, seed=2).fit(X, y)
        stepped = OnlineHD(dim=70, epochs=2, seed=2).fit(X, y)
        stepped.partial_fit(X, y)
        np.testing.assert_array_equal(
            stepped.class_hypervectors_, full.class_hypervectors_
        )

    def test_zero_epochs_bundling_only_bit_identical(self, train_problem):
        X, y = train_problem
        fast = OnlineHD(dim=60, epochs=0, seed=1).fit(X, y)
        reference = OnlineHD(dim=60, epochs=0, seed=1).fit(X, y, trainer="reference")
        np.testing.assert_array_equal(
            fast.class_hypervectors_, reference.class_hypervectors_
        )

    def test_invalid_trainer_rejected(self, train_problem):
        X, y = train_problem
        with pytest.raises(ValueError, match="trainer"):
            OnlineHD(dim=40, epochs=1, seed=0).fit(X, y, trainer="warp")

    def test_minibatch_trainer_requires_batch_size(self, train_problem):
        X, y = train_problem
        with pytest.raises(ValueError, match="batch_size"):
            OnlineHD(dim=40, epochs=1, seed=0).fit(X, y, trainer="minibatch")

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            OnlineHD(dim=40, batch_size=0)

    def test_encoded_shape_mismatch_rejected(self, train_problem):
        X, y = train_problem
        model = OnlineHD(dim=40, epochs=1, seed=0)
        with pytest.raises(ValueError, match="encoded"):
            model.fit(X, y, encoded=np.zeros((len(y), 41)))

    def test_explicit_encoded_input_bit_identical(self, train_problem):
        """Pre-encoding with the model's own encoder changes nothing."""
        X, y = train_problem
        plain = OnlineHD(dim=80, epochs=2, seed=4).fit(X, y)
        encoder = NonlinearEncoder(X.shape[1], 80, bandwidth=1.5, rng=4)
        primed = OnlineHD(dim=80, epochs=2, encoder=encoder, seed=4)
        primed.fit(X, y, encoded=encoder.encode(X))
        np.testing.assert_array_equal(
            primed.class_hypervectors_, plain.class_hypervectors_
        )


# ----------------------------------------------------- BoostHD bit-equality grid
class TestBoostHDEquivalence:
    @pytest.mark.parametrize("mode", ["unweighted", "weighted bootstrap", "weighted scaled"])
    @pytest.mark.parametrize("partition", ["independent", "shared"])
    def test_fit_bit_identical_to_reference(self, train_problem, mode, partition):
        X, y = train_problem
        weights, bootstrap = _weight_modes(len(y))[mode]

        def build():
            return BoostHD(
                total_dim=100,
                n_learners=4,
                epochs=2,
                bootstrap=bootstrap,
                partitioner=_partitioners(100, 4)[partition],
                seed=13,
            )

        fast = build().fit(X, y, sample_weight=weights)
        reference = build().fit(X, y, sample_weight=weights, trainer="reference")
        _assert_boosthd_identical(fast, reference, X)

    @pytest.mark.parametrize("mode", ["unweighted", "weighted bootstrap", "weighted scaled"])
    @pytest.mark.parametrize("partition", ["independent", "shared"])
    def test_partial_fit_bit_identical_to_reference(self, train_problem, mode, partition):
        X, y = train_problem
        weights, bootstrap = _weight_modes(40)[mode]

        def build():
            return BoostHD(
                total_dim=100,
                n_learners=4,
                epochs=1,
                bootstrap=bootstrap,
                partitioner=_partitioners(100, 4)[partition],
                seed=21,
            ).fit(X, y)

        fast = build()
        reference = build()
        fast.partial_fit(X[:40], y[:40], sample_weight=weights)
        reference.partial_fit(
            X[:40], y[:40], sample_weight=weights, trainer="reference"
        )
        _assert_boosthd_identical(fast, reference, X)

    def test_uneven_dimension_split_bit_identical(self, train_problem):
        """total_dim not divisible by n_learners: ragged blocks still stack."""
        X, y = train_problem
        fast = BoostHD(total_dim=103, n_learners=4, epochs=1, seed=3).fit(X, y)
        reference = BoostHD(total_dim=103, n_learners=4, epochs=1, seed=3).fit(
            X, y, trainer="reference"
        )
        _assert_boosthd_identical(fast, reference, X)

    def test_memory_gate_falls_back_to_per_learner_encoding(
        self, train_problem, monkeypatch
    ):
        """Over-budget fits skip block retention entirely, same bits."""
        from repro.engine.train import encoding as encoding_module

        X, y = train_problem
        fused = BoostHD(total_dim=100, n_learners=4, epochs=1, seed=17).fit(X, y)
        monkeypatch.setattr(encoding_module, "STACKED_BUDGET_BYTES", 1)

        def exploding_encode_ensemble(*args, **kwargs):
            raise AssertionError("gated fit must not build an ensemble encoding")

        monkeypatch.setattr(
            encoding_module, "encode_ensemble", exploding_encode_ensemble
        )
        gated = BoostHD(total_dim=100, n_learners=4, epochs=1, seed=17).fit(X, y)
        gated.partial_fit(X[:20], y[:20])
        fused.partial_fit(X[:20], y[:20])
        _assert_boosthd_identical(gated, fused, X)

    def test_bad_trainer_rejected_before_encoding(self, train_problem, monkeypatch):
        """Invalid trainer arguments fail before the ensemble encoding runs."""
        from repro.engine.train import encoding as encoding_module

        X, y = train_problem

        def exploding_encode(*args, **kwargs):
            raise AssertionError("encoded before validating trainer")

        monkeypatch.setattr(encoding_module, "encode_ensemble", exploding_encode)
        with pytest.raises(ValueError, match="trainer"):
            BoostHD(total_dim=100, n_learners=4, seed=0).fit(X, y, trainer="warp")
        with pytest.raises(ValueError, match="batch_size"):
            BoostHD(total_dim=100, n_learners=4, seed=0).fit(
                X, y, trainer="minibatch"
            )

    def test_compiled_engine_agrees_after_fused_training(self, train_problem):
        """Fused-trained models compile into the inference engine as before."""
        X, y = train_problem
        model = BoostHD(total_dim=100, n_learners=4, epochs=1, seed=8).fit(X, y)
        engine = model.compile(dtype=np.float64)
        np.testing.assert_array_equal(engine.predict(X), model.predict(X))


# ------------------------------------------------------- fused ensemble encoding
class TestEncodeEnsemble:
    def test_independent_blocks_bit_identical_to_per_encoder(self, train_problem):
        X, _ = train_problem
        encoders = [
            NonlinearEncoder(X.shape[1], dim, bandwidth=1.5, rng=seed)
            for seed, dim in enumerate((25, 25, 30))
        ]
        encoding = encode_ensemble(encoders, X)
        assert encoding.n_projection_matmuls == 1
        assert encoding.strategy == "stacked"
        for encoder, block in zip(encoders, encoding.blocks):
            np.testing.assert_array_equal(block, encoder.encode(X))

    def test_shared_slices_encode_root_once_and_exactly(self, train_problem):
        X, _ = train_problem
        parent = NonlinearEncoder(X.shape[1], 80, bandwidth=1.5, rng=7)
        encoders = [parent.slice(0, 30), parent.slice(30, 60), parent.slice(60, 80)]
        encoding = encode_ensemble(encoders, X)
        assert encoding.n_projection_matmuls == 1
        assert encoding.strategy == "shared"
        for encoder, block in zip(encoders, encoding.blocks):
            np.testing.assert_array_equal(block, encoder.encode(X))

    def test_fallback_encoder_supported(self, train_problem):
        X, _ = train_problem
        encoders = [
            LevelIdEncoder(X.shape[1], 40, rng=0),
            NonlinearEncoder(X.shape[1], 40, rng=1),
        ]
        encoding = encode_ensemble(encoders, X)
        assert encoding.strategy == "mixed"
        for encoder, block in zip(encoders, encoding.blocks):
            np.testing.assert_array_equal(block, encoder.encode(X))

    def test_stacked_budget_falls_back_per_encoder(self, train_problem):
        """An over-budget stacked transient degrades gracefully, same bits."""
        X, _ = train_problem
        encoders = [
            NonlinearEncoder(X.shape[1], 30, bandwidth=1.5, rng=seed)
            for seed in range(3)
        ]
        encoding = encode_ensemble(encoders, X, stacked_budget_bytes=1)
        assert encoding.n_projection_matmuls == len(encoders)
        assert encoding.strategy == "fallback"
        for encoder, block in zip(encoders, encoding.blocks):
            np.testing.assert_array_equal(block, encoder.encode(X))

    def test_mixed_bandwidths_stack_exactly(self, train_problem):
        """Per-encoder scales are applied after the stacked matmul."""
        X, _ = train_problem
        encoders = [
            NonlinearEncoder(X.shape[1], 20, bandwidth=0.7, rng=3),
            NonlinearEncoder(X.shape[1], 35, bandwidth=2.4, rng=4),
        ]
        encoding = encode_ensemble(encoders, X)
        assert encoding.n_projection_matmuls == 1
        for encoder, block in zip(encoders, encoding.blocks):
            np.testing.assert_array_equal(block, encoder.encode(X))


# ------------------------------------------------------------ hypothesis suites
@settings(max_examples=30, deadline=None)
@given(
    n_samples=st.integers(2, 40),
    n_classes=st.integers(1, 5),
    dim=st.integers(1, 48),
    weighted=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
)
def test_bundling_matches_add_at_scatter(n_samples, n_classes, dim, weighted, seed):
    """Sort + segment-reduce bundling == np.add.at, bit for bit."""
    rng = np.random.default_rng(seed)
    encoded = rng.standard_normal((n_samples, dim))
    labels = rng.integers(0, n_classes, n_samples)
    scale = rng.uniform(0.1, 3.0, n_samples) if weighted else None

    expected = np.zeros((n_classes, dim))
    legacy_scale = np.ones(n_samples) if scale is None else scale
    np.add.at(expected, labels, legacy_scale[:, None] * encoded)

    actual = bundle_classes(np.zeros((n_classes, dim)), encoded, labels, scale)
    np.testing.assert_array_equal(actual, expected)


@settings(max_examples=30, deadline=None)
@given(
    n_classes=st.integers(2, 6),
    dim=st.integers(2, 40),
    n_updates=st.integers(1, 30),
    seed=st.integers(0, 2**31 - 1),
)
def test_exact_state_norm_cache_matches_fresh_norms(n_classes, dim, n_updates, seed):
    """After any sequence of rank-1 updates, cached norms == recomputed norms.

    This is the load-bearing invariant of the exact fast path: the cache is
    refreshed with the same per-row reduction ``np.linalg.norm(model,
    axis=1)`` applies, so it must match a fresh full recomputation exactly —
    not approximately — or the scores would drift off the reference loop.
    """
    rng = np.random.default_rng(seed)
    model = rng.standard_normal((n_classes, dim))
    encoded = rng.standard_normal((8, dim))
    state = ExactPassState(model, encoded)
    for _ in range(n_updates):
        target = int(rng.integers(0, n_classes))
        coefficient = float(rng.normal())
        model[target] += coefficient * encoded[int(rng.integers(0, 8))]
        state.refresh_class_norm(model, target)
    np.testing.assert_array_equal(state.class_norms, np.linalg.norm(model, axis=1))
    np.testing.assert_array_equal(
        state.sample_norms, np.linalg.norm(encoded, axis=1)
    )


@settings(max_examples=20, deadline=None)
@given(
    n_samples=st.integers(4, 30),
    n_classes=st.integers(2, 4),
    dim=st.integers(4, 32),
    seed=st.integers(0, 2**31 - 1),
)
def test_exact_pass_matches_reference_pass_property(n_samples, n_classes, dim, seed):
    """adaptive_pass_exact == the reference loop for arbitrary inputs."""
    rng = np.random.default_rng(seed)
    encoded = rng.standard_normal((n_samples, dim))
    labels = rng.integers(0, n_classes, n_samples)
    order = rng.permutation(n_samples)
    update_scale = rng.uniform(0.2, 2.0, n_samples)
    base = rng.standard_normal((n_classes, dim))

    fast = base.copy()
    adaptive_pass_exact(fast, encoded, labels, order, update_scale, lr=0.05)

    reference = base.copy()
    OnlineHD(dim=dim, lr=0.05)._adaptive_pass(
        reference, encoded, labels, order, update_scale
    )
    np.testing.assert_array_equal(fast, reference)


# --------------------------------------------------------- mini-batch trainer
class TestMinibatchTrainer:
    def test_batch_size_one_matches_exact_model_closely(self, train_problem):
        """B=1 keeps per-sample sequencing; only the scoring kernel differs."""
        X, y = train_problem
        exact = OnlineHD(dim=80, epochs=2, seed=6).fit(X, y)
        chunked = OnlineHD(dim=80, epochs=2, seed=6, batch_size=1).fit(X, y)
        np.testing.assert_allclose(
            chunked.class_hypervectors_, exact.class_hypervectors_, rtol=1e-8
        )

    def test_invalid_batch_size_rejected_by_pass(self):
        with pytest.raises(ValueError, match="batch_size"):
            adaptive_pass_minibatch(
                np.zeros((2, 4)), np.zeros((3, 4)), np.zeros(3, dtype=int),
                np.arange(3), np.ones(3), 0.05, batch_size=0,
            )

    def test_accuracy_parity_on_table1_datasets(self, suite_datasets):
        """Mini-batch training stays within 0.1 accuracy of the exact path.

        Runs the paper's model on the shared miniature Table I datasets
        (WESAD + Nurse Stress); this is the gate that lets ``batch_size``
        trade bit-equality for throughput.
        """
        for name, dataset in suite_datasets.items():
            X_train, X_test, y_train, y_test = dataset.split(test_fraction=0.3, rng=3)
            exact = BoostHD(total_dim=200, n_learners=4, epochs=4, seed=0)
            exact.fit(X_train, y_train)
            chunked = BoostHD(
                total_dim=200, n_learners=4, epochs=4, seed=0, batch_size=16
            )
            chunked.fit(X_train, y_train)
            exact_accuracy = exact.score(X_test, y_test)
            chunked_accuracy = chunked.score(X_test, y_test)
            assert abs(exact_accuracy - chunked_accuracy) <= 0.1, (
                f"{name}: exact {exact_accuracy:.3f} vs "
                f"mini-batch {chunked_accuracy:.3f}"
            )

    def test_partial_fit_uses_minibatch_when_configured(self, train_problem):
        """batch_size models adapt with the mini-batch pass (still learn)."""
        X, y = train_problem
        model = OnlineHD(dim=80, epochs=1, seed=0, batch_size=8).fit(X, y)
        baseline = model.score(X, y)
        for _ in range(2):
            model.partial_fit(X, y)
        assert model.score(X, y) >= baseline - 0.1

    def test_clone_round_trips_batch_size(self):
        from repro.baselines.base import clone

        model = BoostHD(total_dim=100, n_learners=4, batch_size=32)
        assert clone(model).batch_size == 32
        learner = OnlineHD(dim=50, batch_size=16)
        assert clone(learner).batch_size == 16

    def test_registry_round_trips_batch_size(self, train_problem, tmp_path):
        """Restored models keep their mini-batch training mode."""
        from repro.serving import ModelRegistry

        X, y = train_problem
        registry = ModelRegistry(tmp_path)
        ensemble = BoostHD(
            total_dim=100, n_learners=4, epochs=1, seed=0, batch_size=32
        ).fit(X, y)
        registry.save("ensemble", ensemble)
        restored = registry.load("ensemble")
        assert restored.batch_size == 32
        assert all(learner.batch_size == 32 for learner in restored.learners_)

        single = OnlineHD(dim=60, epochs=1, seed=0, batch_size=8).fit(X, y)
        registry.save("single", single)
        assert registry.load("single").batch_size == 8


# ------------------------------------------------------------ encoded scoring
class TestEncodedScoring:
    def test_predict_encoded_matches_predict(self, train_problem):
        X, y = train_problem
        model = OnlineHD(dim=80, epochs=1, seed=0).fit(X, y)
        encoded = model.encoder.encode(X)
        np.testing.assert_array_equal(model.predict_encoded(encoded), model.predict(X))
        np.testing.assert_array_equal(
            model.decision_function_encoded(encoded), model.decision_function(X)
        )

    def test_predict_encoded_requires_fit(self):
        from repro.baselines.base import NotFittedError

        with pytest.raises(NotFittedError):
            OnlineHD(dim=20).predict_encoded(np.zeros((2, 20)))
