"""Tests for repro.obs: metrics, tracing, export, and the no-op guarantee.

The load-bearing properties, each tested below:

* **Percentile error bound** — log-bucket histogram percentiles are within
  the advertised ``sqrt(growth)`` multiplicative factor of the exact
  nearest-rank statistic for any in-range sample (hypothesis).
* **Merge algebra** — snapshot merging is associative and commutative with
  the empty snapshot as identity, which is what makes worker fold-in
  order-independent (hypothesis).
* **Span invariants** — close-order recording, correct parent/depth
  bookkeeping, bounded ring buffer, valid Chrome trace-event JSON.
* **No-op equivalence** — with observability off (the default) the
  instrumented scoring paths produce bit-identical predictions to the
  observed paths, and the null instruments record nothing.
* **Suite telemetry parity** — merged per-worker snapshots from a
  4-worker ``run_suite`` equal the serial run's registry for all counters.
"""

from __future__ import annotations

import json
import math
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boosthd import BoostHD
from repro.engine import compile_model
from repro.engine.cache import CacheStats
from repro.engine.cascade import CascadeStats
from repro.experiments import run_suite
from repro.obs import (
    NULL_RECORDER,
    NULL_REGISTRY,
    OBS,
    Histogram,
    MetricsRegistry,
    SpanRecorder,
    capture,
    disable,
    empty_snapshot,
    enable,
    log_bucket_bounds,
    merge_snapshots,
    parse_snapshot_json,
    prometheus_text,
    sanitize_metric_name,
    scoped_registry,
    snapshot_json,
    write_chrome_trace,
)
from repro.obs.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.runtime import RunReport, merge_reports
from repro.runtime.report import CellStats
from repro.serving.scheduler import MicroBatchScheduler, SchedulerStats

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _obs_off_between_tests():
    """Every test starts and ends with observability disabled."""
    disable()
    yield
    disable()


@pytest.fixture(scope="module")
def fitted_model(request):
    blobs_split = request.getfixturevalue("blobs_split")
    X_train, _, y_train, _ = blobs_split
    return BoostHD(total_dim=96, n_learners=4, epochs=2, seed=0).fit(
        X_train, y_train
    )


# --------------------------------------------------------------------------
# Histogram: bucket exactness and the percentile error bound.
# --------------------------------------------------------------------------

#: Binary-fraction observations: sums of a few of these are exact in float64,
#: which keeps merge associativity testable to the last bit.
exact_values = st.integers(min_value=1, max_value=64).map(lambda n: n / 16.0)

in_range_values = st.floats(
    min_value=2e-6, max_value=9.0, allow_nan=False, allow_infinity=False
)


def true_percentile(values: list[float], percentile: float) -> float:
    """The exact nearest-rank statistic :meth:`Histogram.percentile` estimates."""
    ordered = sorted(values)
    rank = max(1, math.ceil(percentile / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestHistogram:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(in_range_values, min_size=1, max_size=200),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_within_relative_error_bound(self, values, percentile):
        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        estimate = histogram.percentile(percentile)
        truth = true_percentile(values, percentile)
        factor = math.sqrt(histogram.growth) * (1 + 1e-9)
        assert truth / factor <= estimate <= truth * factor

    @settings(max_examples=50, deadline=None)
    @given(st.lists(in_range_values, min_size=1, max_size=100))
    def test_exact_moments_ride_alongside(self, values):
        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        assert histogram.count == len(values)
        assert histogram.min == min(values)
        assert histogram.max == max(values)
        assert histogram.sum == pytest.approx(sum(values))
        assert sum(histogram.counts) == len(values)

    def test_percentile_clamped_to_observed_range(self):
        histogram = Histogram()
        for value in (1e-9, 0.0, 100.0, 3.0):  # under- and overflow included
            histogram.observe(value)
        for percentile in (0, 50, 99, 100):
            assert 0.0 <= histogram.percentile(percentile) <= 100.0

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(50) == 0.0

    def test_memory_is_bounded_by_bucket_count(self):
        histogram = Histogram()
        buckets = len(histogram.counts)
        for index in range(10_000):
            histogram.observe((index % 100 + 1) * 1e-4)
        assert len(histogram.counts) == buckets
        assert histogram.count == 10_000

    def test_relative_error_bound_value(self):
        histogram = Histogram(per_decade=10)
        assert histogram.relative_error_bound == pytest.approx(
            math.sqrt(10 ** 0.1) - 1.0
        )
        assert histogram.relative_error_bound < 0.13

    def test_bucket_bounds_cover_range(self):
        bounds = log_bucket_bounds(1e-6, 10.0, 10)
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] >= 10.0
        ratios = [b2 / b1 for b1, b2 in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(10 ** 0.1) for r in ratios)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            log_bucket_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            log_bucket_bounds(1.0, 0.5)
        with pytest.raises(ValueError):
            Histogram().percentile(101)


# --------------------------------------------------------------------------
# Snapshot merge algebra.
# --------------------------------------------------------------------------

metric_names = st.sampled_from(["alpha_total", "beta_total", "gamma_seconds"])
label_values = st.sampled_from([{}, {"tier": "packed"}, {"tier": "rerank"}])

counter_ops = st.tuples(
    st.just("counter"), metric_names, label_values, st.integers(0, 5)
)
gauge_ops = st.tuples(
    st.just("gauge"), metric_names, label_values, st.integers(0, 100)
)
histogram_ops = st.tuples(
    st.just("histogram"), metric_names, label_values, exact_values
)
op_lists = st.lists(
    st.one_of(counter_ops, gauge_ops, histogram_ops), max_size=20
)


def build_snapshot(ops) -> dict:
    registry = MetricsRegistry()
    for kind, name, labels, value in ops:
        if kind == "counter":
            registry.counter(name + "_c", **labels).inc(value)
        elif kind == "gauge":
            registry.gauge(name + "_g", **labels).set(value)
        else:
            registry.histogram(name + "_h", **labels).observe(value)
    return registry.snapshot()


def canon(snapshot: dict) -> dict:
    """Order-independent form of a snapshot (merge order permutes the lists)."""
    return {
        kind: {
            (entry["name"], tuple(sorted(entry["labels"].items()))): {
                key: value
                for key, value in entry.items()
                if key not in ("name", "labels")
            }
            for entry in snapshot[kind]
        }
        for kind in ("counters", "gauges", "histograms")
    }


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(op_lists, op_lists, op_lists)
    def test_merge_is_associative(self, ops_a, ops_b, ops_c):
        a, b, c = build_snapshot(ops_a), build_snapshot(ops_b), build_snapshot(ops_c)
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert canon(left) == canon(right)

    @settings(max_examples=60, deadline=None)
    @given(op_lists, op_lists)
    def test_merge_is_commutative(self, ops_a, ops_b):
        a, b = build_snapshot(ops_a), build_snapshot(ops_b)
        assert canon(merge_snapshots([a, b])) == canon(merge_snapshots([b, a]))

    @settings(max_examples=60, deadline=None)
    @given(op_lists)
    def test_empty_snapshot_is_identity(self, ops):
        snapshot = build_snapshot(ops)
        merged = merge_snapshots([snapshot, empty_snapshot()])
        assert canon(merged) == canon(snapshot)

    def test_counter_integers_survive_merge(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(3)
        merged = merge_snapshots([registry.snapshot(), registry.snapshot()])
        (entry,) = merged["counters"]
        assert entry["value"] == 6
        assert isinstance(entry["value"], int)

    def test_gauges_merge_to_maximum(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("depth").set(3)
        second.gauge("depth").set(7)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        (entry,) = merged["gauges"]
        assert entry["value"] == 7

    def test_histogram_layout_mismatch_raises(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("lat").observe(0.1)
        second.histogram("lat", per_decade=5).observe(0.1)
        registry = MetricsRegistry()
        registry.merge(first.snapshot())
        with pytest.raises(ValueError, match="bucket layout"):
            registry.merge(second.snapshot())

    def test_delta_snapshots_sum_to_total(self):
        registry = MetricsRegistry()
        deltas = []
        for _ in range(4):
            registry.counter("rows_total").inc(5)
            registry.histogram("lat").observe(0.25)
            deltas.append(registry.snapshot(reset=True))
        total = merge_snapshots(deltas)
        (entry,) = total["counters"]
        assert entry["value"] == 20
        (histogram,) = total["histograms"]
        assert histogram["count"] == 4

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_snapshot_is_picklable_and_json_roundtrips(self):
        registry = MetricsRegistry()
        registry.counter("a_total", tier="packed").inc(2)
        registry.histogram("lat").observe(0.003)
        snapshot = registry.snapshot()
        assert parse_snapshot_json(snapshot_json(snapshot)) == snapshot
        import pickle

        assert pickle.loads(pickle.dumps(snapshot)) == snapshot


# --------------------------------------------------------------------------
# Span tracing.
# --------------------------------------------------------------------------


def fake_clock():
    state = {"t": 0.0}

    def tick() -> float:
        state["t"] += 1.0
        return state["t"]

    return tick


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        recorder = SpanRecorder(clock=fake_clock())
        with recorder.span("outer", rows=3):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.spans
        assert (inner.name, inner.parent, inner.depth) == ("inner", "outer", 1)
        assert (outer.name, outer.parent, outer.depth) == ("outer", None, 0)
        assert outer.attrs == {"rows": 3}
        assert outer.start < inner.start < inner.end < outer.end

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=6))
    def test_close_order_is_postorder(self, widths):
        """Recorded order equals post-order of the span tree at any shape."""
        recorder = SpanRecorder(clock=fake_clock())
        expected: list[tuple[str, str | None, int]] = []

        def open_level(level: int, parent: str | None) -> None:
            if level >= len(widths):
                return
            for index in range(widths[level]):
                name = f"s{level}.{index}"
                with recorder.span(name):
                    open_level(level + 1, name)
                expected.append((name, parent, level))

        with recorder.span("root"):
            open_level(0, "root")
        expected.append(("root", None, 0))
        # Spans under the artificial root sit one level deeper than the
        # construction level; strip that offset for comparison.
        observed = [
            (
                record.name,
                record.parent,
                record.depth if record.name == "root" else record.depth - 1,
            )
            for record in recorder.spans
        ]
        assert observed == expected

    def test_ring_buffer_keeps_most_recent(self):
        recorder = SpanRecorder(capacity=4, clock=fake_clock())
        for index in range(10):
            with recorder.span(f"s{index}"):
                pass
        assert [record.name for record in recorder.spans] == [
            "s6", "s7", "s8", "s9",
        ]

    def test_exception_annotates_and_unwinds(self):
        recorder = SpanRecorder(clock=fake_clock())
        with pytest.raises(RuntimeError):
            with recorder.span("boom"):
                raise RuntimeError("nope")
        (record,) = recorder.spans
        assert record.attrs["error"] == "RuntimeError"
        with recorder.span("after"):
            pass
        assert recorder.spans[-1].depth == 0  # stack unwound by the failure

    def test_drain_and_extend_ship_records(self):
        recorder = SpanRecorder(clock=fake_clock())
        with recorder.span("work"):
            pass
        records = recorder.drain()
        assert len(records) == 1 and len(recorder) == 0
        other = SpanRecorder()
        other.extend(records)
        assert other.spans == tuple(records)

    def test_chrome_trace_is_valid_trace_event_json(self, tmp_path):
        recorder = SpanRecorder(clock=fake_clock())
        with recorder.span("outer"):
            with recorder.span("inner", rows=2):
                pass
        path = write_chrome_trace(recorder, tmp_path / "trace.json")
        with open(path, encoding="utf-8") as stream:
            trace = json.load(stream)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X"}
        for event in events:
            if event["ph"] != "X":
                continue
            assert event["ts"] >= 0 and event["dur"] > 0
            assert {"name", "pid", "tid", "args"} <= set(event)
        assert {e["name"] for e in events if e["ph"] == "X"} == {"outer", "inner"}

    def test_summary_lists_every_span_name(self):
        recorder = SpanRecorder(clock=fake_clock())
        with recorder.span("engine.score"):
            pass
        with recorder.span("scheduler.batch"):
            pass
        text = recorder.summary()
        assert "engine.score" in text and "scheduler.batch" in text
        assert SpanRecorder().summary() == "no spans recorded"

    def test_mid_span_attribute_set(self):
        recorder = SpanRecorder(clock=fake_clock())
        with recorder.span("work") as span:
            span.set(released=7)
        assert recorder.spans[0].attrs == {"released": 7}


# --------------------------------------------------------------------------
# The switchboard and the null path.
# --------------------------------------------------------------------------


class TestSwitchboard:
    def test_disabled_by_default_with_null_instruments(self):
        assert OBS.enabled is False
        assert OBS.metrics is NULL_REGISTRY
        assert OBS.recorder is NULL_RECORDER
        assert OBS.metrics.counter("x") is NULL_COUNTER
        assert OBS.metrics.gauge("x") is NULL_GAUGE
        assert OBS.metrics.histogram("x") is NULL_HISTOGRAM

    def test_null_instruments_record_nothing(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(3)
        NULL_HISTOGRAM.observe(0.5)
        with NULL_RECORDER.span("nothing", rows=1) as span:
            span.set(more=2)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value is None
        assert NULL_HISTOGRAM.count == 0
        assert NULL_RECORDER.spans == ()
        assert NULL_REGISTRY.snapshot() == empty_snapshot()

    def test_enable_disable_roundtrip(self):
        state = enable()
        assert state.enabled and isinstance(state.metrics, MetricsRegistry)
        state.metrics.counter("kept_total").inc()
        enable()  # re-enable keeps the live registry
        assert OBS.metrics.counter("kept_total").value == 1
        disable()
        assert OBS.enabled is False and OBS.metrics is NULL_REGISTRY

    def test_capture_restores_previous_state(self):
        with capture() as (registry, recorder):
            assert OBS.enabled and OBS.metrics is registry
            OBS.metrics.counter("inner_total").inc()
            with OBS.recorder.span("inner"):
                pass
            assert recorder.spans[0].name == "inner"
        assert OBS.enabled is False
        assert OBS.metrics is NULL_REGISTRY

    def test_scoped_registry_swaps_sink(self):
        with capture() as (outer_registry, _):
            scoped = MetricsRegistry()
            with scoped_registry(scoped):
                OBS.metrics.counter("routed_total").inc()
            assert scoped.counter("routed_total").value == 1
            assert outer_registry.counter("routed_total").value == 0

    def test_scoped_registry_noop_when_disabled(self):
        scoped = MetricsRegistry()
        with scoped_registry(scoped):
            assert OBS.metrics is NULL_REGISTRY

    @pytest.mark.parametrize(
        "value, expected", [("1", "True"), ("0", "False"), ("", "False")]
    )
    def test_env_switch(self, value, expected):
        code = "from repro.obs import OBS; print(OBS.enabled)"
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_OBS": value, "PATH": "/usr/bin:/bin"},
            cwd=".",
            check=True,
        )
        assert result.stdout.strip() == expected


class TestNoOpEquivalence:
    """Instrumented paths are bit-identical with observability on or off."""

    @pytest.mark.parametrize(
        "precision", ["float64", "bipolar-packed", "fixed16", "cascade-fixed16"]
    )
    def test_engine_scores_bit_identical(self, fitted_model, blobs_split, precision):
        _, X_test, _, _ = blobs_split
        engine_off = compile_model(fitted_model, precision=precision, cache_size=4)
        scores_off = engine_off.decision_function(X_test)
        with capture():
            engine_on = compile_model(fitted_model, precision=precision, cache_size=4)
            scores_on = engine_on.decision_function(X_test)
        assert np.array_equal(scores_off, scores_on)
        assert scores_off.dtype == scores_on.dtype

    def test_scheduler_predictions_bit_identical(self, fitted_model, blobs_split):
        _, X_test, _, _ = blobs_split

        def run_batch():
            engine = compile_model(fitted_model, precision="fixed16")
            scheduler = MicroBatchScheduler(engine, max_batch=8)
            for index, row in enumerate(X_test):
                scheduler.submit("s", index, row)
            return scheduler.flush()

        predictions_off = run_batch()
        with capture():
            predictions_on = run_batch()
        assert len(predictions_off) == len(predictions_on)
        for off, on in zip(predictions_off, predictions_on):
            assert off.label == on.label
            assert np.array_equal(off.scores, on.scores)

    def test_enabled_run_populates_metrics_and_spans(self, fitted_model, blobs_split):
        _, X_test, _, _ = blobs_split
        with capture() as (registry, recorder):
            engine = compile_model(fitted_model, precision="cascade-fixed16")
            engine.decision_function(X_test)
            snapshot = registry.snapshot()
        names = {entry["name"] for entry in snapshot["counters"]}
        assert "repro_engine_rows_scored_total" in names
        assert "repro_cascade_rows_total" in names
        span_names = {record.name for record in recorder.spans}
        assert {"engine.compile", "engine.score"} <= span_names


# --------------------------------------------------------------------------
# Stats classes re-based on obs primitives (byte-compatible surface).
# --------------------------------------------------------------------------


class TestStatsCompat:
    def test_cache_stats_surface(self):
        stats = CacheStats()
        stats.record_hit()
        stats.record_miss()
        stats.record_miss()
        stats.record_eviction()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 2, 1)
        assert stats.requests == 3
        assert isinstance(stats.hits, int)
        assert "hits=1" in repr(stats)
        stats.reset()
        assert stats.requests == 0

    def test_cascade_stats_surface(self):
        stats = CascadeStats(rows_scored=10, rows_reranked=4)
        assert repr(stats) == "CascadeStats(rows_scored=10, rows_reranked=4)"
        assert stats == CascadeStats(rows_scored=10, rows_reranked=4)
        assert stats != CascadeStats(rows_scored=10, rows_reranked=5)
        assert stats.rerank_fraction == pytest.approx(0.4)
        stats.record(10, 1)
        assert stats.rows_scored == 20 and stats.rows_reranked == 5

    def test_scheduler_stats_surface(self):
        stats = SchedulerStats()
        stats.record_batch(4, 0.002)
        stats.record_latency(0.002)
        assert stats.windows_scored == 4 and stats.batches == 1
        assert isinstance(stats.windows_scored, int)
        assert stats.latency_histogram.count == 1
        p50, p99 = stats.latency_percentile(50), stats.latency_percentile(99)
        assert 0 < p50 <= p99
        assert repr(stats).startswith("SchedulerStats(windows=4, batches=1")


# --------------------------------------------------------------------------
# RunReport serialization and suite telemetry parity.
# --------------------------------------------------------------------------


def sample_report(metrics=None) -> RunReport:
    cells = (
        CellStats("WESAD", "BoostHD", 0, 0.25, 41, False),
        CellStats("WESAD", "BoostHD", 1, 0.125, 42, True),
    )
    return RunReport(
        total_seconds=0.5, max_workers=2, cells=cells, metrics=metrics
    )


class TestRunReportJson:
    def test_roundtrip_without_metrics(self):
        report = sample_report()
        assert RunReport.from_json(report.to_json()) == report

    def test_roundtrip_with_metrics(self):
        registry = MetricsRegistry()
        registry.counter("repro_runtime_cells_total", model="BoostHD").inc(2)
        registry.histogram("repro_runtime_cell_seconds").observe(0.25)
        report = sample_report(metrics=registry.snapshot())
        rebuilt = RunReport.from_json(report.to_json())
        assert rebuilt == report
        assert rebuilt.metrics == report.metrics

    def test_merge_reports_folds_metrics(self):
        first_registry, second_registry = MetricsRegistry(), MetricsRegistry()
        first_registry.counter("cells_total").inc(2)
        second_registry.counter("cells_total").inc(3)
        merged = merge_reports(
            [
                sample_report(metrics=first_registry.snapshot()),
                sample_report(metrics=second_registry.snapshot()),
            ]
        )
        (entry,) = merged.metrics["counters"]
        assert entry["value"] == 5
        assert merged.n_cells == 4

    def test_merge_reports_without_metrics_stays_none(self):
        merged = merge_reports([sample_report(), sample_report()])
        assert merged.metrics is None


class TestSuiteTelemetry:
    """Acceptance: 4-worker merged snapshots equal the serial registry."""

    @staticmethod
    def counters_of(snapshot: dict) -> dict:
        return {
            (entry["name"], tuple(sorted(entry["labels"].items()))): entry["value"]
            for entry in snapshot["counters"]
        }

    @staticmethod
    def histogram_counts_of(snapshot: dict) -> dict:
        return {
            (entry["name"], tuple(sorted(entry["labels"].items()))): entry["count"]
            for entry in snapshot["histograms"]
        }

    @pytest.mark.slow
    def test_four_worker_merge_equals_serial(self, suite_datasets, tiny_scale):
        with capture():
            serial = run_suite(
                suite_datasets, ("OnlineHD", "BoostHD"), scale=tiny_scale,
                n_runs=2, max_workers=1,
            )
        with capture():
            parallel = run_suite(
                suite_datasets, ("OnlineHD", "BoostHD"), scale=tiny_scale,
                n_runs=2, max_workers=4,
            )
        serial_metrics = serial.report.metrics
        parallel_metrics = parallel.report.metrics
        assert serial_metrics is not None and parallel_metrics is not None
        assert self.counters_of(parallel_metrics) == self.counters_of(serial_metrics)
        # Histogram observation counts match too; only the timings differ.
        assert self.histogram_counts_of(parallel_metrics) == (
            self.histogram_counts_of(serial_metrics)
        )
        cells = self.counters_of(serial_metrics)[
            ("repro_runtime_cells_total", (("model", "BoostHD"),))
        ]
        assert cells == len(suite_datasets) * 2

    def test_serial_suite_attaches_metrics_and_folds_into_parent(
        self, suite_datasets, tiny_scale
    ):
        with capture() as (registry, recorder):
            suite = run_suite(
                suite_datasets, ("OnlineHD",), scale=tiny_scale, n_runs=1,
            )
            parent_counters = self.counters_of(registry.snapshot())
        report_counters = self.counters_of(suite.report.metrics)
        key = ("repro_runtime_cells_total", (("model", "OnlineHD"),))
        assert report_counters[key] == len(suite_datasets)
        assert parent_counters[key] == len(suite_datasets)
        assert any(r.name == "runtime.cell" for r in recorder.spans)

    def test_disabled_suite_has_no_metrics(self, suite_datasets, tiny_scale):
        suite = run_suite(
            suite_datasets, ("OnlineHD",), scale=tiny_scale, n_runs=1
        )
        assert suite.report.metrics is None


# --------------------------------------------------------------------------
# Exporters.
# --------------------------------------------------------------------------


class TestExport:
    def test_prometheus_text_renders_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("rows_total", "Rows scored.", tier="packed").inc(7)
        registry.gauge("open_sessions", "Open sessions.").set(3)
        registry.histogram("latency_seconds", "Latency.").observe(0.004)
        text = prometheus_text(registry.snapshot())
        assert '# TYPE rows_total counter' in text
        assert 'rows_total{tier="packed"} 7' in text
        assert "# HELP rows_total Rows scored." in text
        assert "# TYPE open_sessions gauge" in text
        assert "open_sessions 3" in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text

    def test_prometheus_buckets_are_cumulative_and_close_at_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (1e-5, 1e-3, 0.1, 50.0):  # includes one overflow
            histogram.observe(value)
        lines = prometheus_text(registry.snapshot()).splitlines()
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("lat_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 4  # le="+Inf" equals _count
        assert bucket_counts[-2] == 3  # the overflow value is beyond every le

    def test_prometheus_grammar(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-total", kind="a b").inc()
        text = prometheus_text(registry.snapshot())
        name_ok = __import__("re").compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
        )
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert name_ok.match(line), line

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("ok_name") == "ok_name"
        assert sanitize_metric_name("engine.score") == "engine_score"
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_parse_snapshot_json_validates(self):
        with pytest.raises(ValueError):
            parse_snapshot_json("[]")
        with pytest.raises(ValueError):
            parse_snapshot_json('{"counters": {}}')
        parsed = parse_snapshot_json("{}")
        assert parsed == empty_snapshot()
