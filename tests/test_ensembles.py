"""Unit tests for the classical ensemble baselines (RF, AdaBoost, XGBoost-style)."""

import numpy as np
import pytest

from repro.baselines import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)


class TestRandomForest:
    def test_fits_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X_train, y_train)
        assert forest.score(X_test, y_test) > 0.85

    def test_number_of_trees(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(n_estimators=7, seed=0).fit(X, y)
        assert len(forest.trees_) == 7

    def test_predict_proba_normalised(self, blobs):
        X, y = blobs
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        probabilities = forest.predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_deterministic_with_seed(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        first = RandomForestClassifier(n_estimators=5, seed=3).fit(X_train, y_train)
        second = RandomForestClassifier(n_estimators=5, seed=3).fit(X_train, y_train)
        np.testing.assert_array_equal(first.predict(X_test), second.predict(X_test))

    def test_without_bootstrap(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        forest = RandomForestClassifier(n_estimators=5, bootstrap=False, seed=0).fit(
            X_train, y_train
        )
        assert forest.score(X_test, y_test) > 0.8

    def test_invalid_estimator_count_raises(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)


class TestAdaBoost:
    def test_fits_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        boost = AdaBoostClassifier(n_estimators=10, max_depth=2, seed=0).fit(X_train, y_train)
        assert boost.score(X_test, y_test) > 0.85

    def test_boosting_beats_single_stump_on_hard_problem(self):
        # XOR-like structure that a single stump cannot solve.
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        stump = DecisionTreeClassifier(max_depth=1, seed=0).fit(X, y)
        boost = AdaBoostClassifier(n_estimators=25, max_depth=2, seed=0).fit(X, y)
        assert boost.score(X, y) > stump.score(X, y) + 0.1

    def test_estimator_weights_positive(self, blobs):
        X, y = blobs
        boost = AdaBoostClassifier(n_estimators=5, max_depth=2, seed=0).fit(X, y)
        assert np.all(boost.estimator_weights_ > 0)

    def test_early_stop_on_perfect_learner(self, blobs):
        X, y = blobs
        boost = AdaBoostClassifier(n_estimators=10, max_depth=None, seed=0).fit(X, y)
        # A full-depth tree is perfect on blobs, so boosting stops after it.
        assert len(boost.estimators_) == 1

    def test_decision_function_shape(self, blobs):
        X, y = blobs
        boost = AdaBoostClassifier(n_estimators=5, max_depth=1, seed=0).fit(X, y)
        assert boost.decision_function(X).shape == (len(X), 3)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0.0)


class TestGradientBoosting:
    def test_fits_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        booster = GradientBoostingClassifier(n_estimators=10, seed=0).fit(X_train, y_train)
        assert booster.score(X_test, y_test) > 0.85

    def test_training_accuracy_improves_with_rounds(self, blobs):
        X, y = blobs
        few = GradientBoostingClassifier(n_estimators=1, learning_rate=0.3, seed=0).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=15, learning_rate=0.3, seed=0).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_predict_proba_normalised(self, blobs):
        X, y = blobs
        booster = GradientBoostingClassifier(n_estimators=3, seed=0).fit(X, y)
        probabilities = booster.predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_one_tree_per_class_per_round(self, blobs):
        X, y = blobs
        booster = GradientBoostingClassifier(n_estimators=4, seed=0).fit(X, y)
        assert len(booster.rounds_) == 4
        assert all(len(round_trees) == 3 for round_trees in booster.rounds_)

    def test_subsampling_path(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        booster = GradientBoostingClassifier(n_estimators=5, subsample=0.7, seed=0).fit(
            X_train, y_train
        )
        assert booster.score(X_test, y_test) > 0.8

    def test_binary_problem(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-1, 1, (40, 3)), rng.normal(1, 1, (40, 3))])
        y = np.repeat([0, 1], 40)
        booster = GradientBoostingClassifier(n_estimators=10, seed=0).fit(X, y)
        assert booster.score(X, y) > 0.9

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=2.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)
