"""Contracts of the early-exit cascade engine.

Because the cascade makes accuracy a *routing* property, the suite pins
routing down exactly rather than statistically:

* **Degenerate-threshold exactness** — at ``threshold=-inf`` the cascade is
  bitwise the packed first tier; at ``threshold=+inf`` it is bitwise the
  second tier, for every second-tier precision including float64 (whose
  BLAS matmul is only subset-invariant because the all-rows rerank hands it
  the original chunk).
* **Margin-routing properties** (hypothesis) — the rerank set is exactly
  the rows whose packed top-2 margin is strictly below the threshold:
  non-reranked rows score bitwise as the packed tier, reranked rows bitwise
  as the fixed-point second tier (whose scores are batch-composition
  invariant, so subset rescoring is provably exact), and the routing is
  invariant to batch composition and chunking.
* **Calibration** — the chosen threshold meets the requested parity /
  relative-accuracy target on the calibration data, is monotone
  nondecreasing in the target, and its reported rerank fraction matches
  what the threshold actually routes.
* **Registry round-trip** — ``load(name, precision="cascade-...")`` builds
  both tiers byte-for-byte from stored codes with float64 dequantization
  provably never invoked, and the loaded cascade scores bitwise like one
  compiled from the original model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boosthd import BoostHD
from repro.engine import (
    CASCADE_PRECISIONS,
    CascadeModel,
    EngineError,
    FixedPointModel,
    PackedBipolarModel,
    compile_model,
    top2_margin,
    topk_indices,
)
from repro.hdc import pack_signs
from repro.serving import ModelRegistry

from test_quant_engine import _blob_problem, _forbid_dequantization

pytestmark = pytest.mark.cascade

SECOND_TIERS = ("fixed16", "fixed8", "float64")


@pytest.fixture(scope="module")
def problem():
    return _blob_problem(seed=11, n_features=10)


@pytest.fixture(scope="module")
def fitted(problem):
    X, y, _, _ = problem
    return BoostHD(total_dim=480, n_learners=4, epochs=3, seed=1).fit(X, y)


@pytest.fixture(scope="module")
def engines(fitted):
    """One cascade per second tier plus its reference tiers, all float64."""
    built = {}
    for second in SECOND_TIERS:
        built[second] = compile_model(
            fitted, dtype=np.float64, precision=f"cascade-{second}"
        )
    built["packed"] = compile_model(
        fitted, dtype=np.float64, precision="bipolar-packed"
    )
    return built


# -------------------------------------------------- degenerate-threshold exactness
@pytest.mark.parametrize("second", SECOND_TIERS)
def test_threshold_inf_is_bitwise_second_tier(engines, problem, second):
    _, _, X_test, _ = problem
    cascade = engines[second]
    cascade.threshold = np.inf
    np.testing.assert_array_equal(
        cascade.decision_function(X_test),
        cascade.second.decision_function(X_test),
    )


@pytest.mark.parametrize("second", SECOND_TIERS)
def test_threshold_neg_inf_is_bitwise_packed_tier(engines, problem, second):
    _, _, X_test, _ = problem
    cascade = engines[second]
    cascade.threshold = -np.inf
    cascade.stats.reset()
    np.testing.assert_array_equal(
        cascade.decision_function(X_test),
        engines["packed"].decision_function(X_test),
    )
    assert cascade.stats.rows_reranked == 0
    assert cascade.stats.rows_scored == len(X_test)


def test_cascade_alias_and_dispatch(fitted):
    cascade = compile_model(fitted, precision="cascade")
    assert isinstance(cascade, CascadeModel)
    assert cascade.precision == "cascade-fixed16"
    assert isinstance(cascade.first, PackedBipolarModel)
    assert isinstance(cascade.second, FixedPointModel)
    assert "cascade" in repr(cascade)
    assert cascade.class_memory_bytes() == (
        cascade.first.class_memory_bytes() + cascade.second.class_memory_bytes()
    )
    with pytest.raises(EngineError, match="cascade precision"):
        compile_model(fitted, precision="cascade-int4")
    with pytest.raises(EngineError, match="threshold"):
        compile_model(fitted, precision="fixed16", threshold=0.1)


def test_mismatched_tiers_are_rejected(fitted):
    X, y, _, _ = _blob_problem(seed=12, n_features=10)
    other = BoostHD(total_dim=480, n_learners=4, epochs=3, seed=9).fit(X, y)
    first = compile_model(fitted, precision="bipolar-packed")
    with pytest.raises(EngineError, match="different models"):
        CascadeModel(first=first, second=compile_model(other))
    with pytest.raises(EngineError, match="first tier"):
        CascadeModel(first=compile_model(fitted), second=compile_model(fitted))
    with pytest.raises(EngineError, match="second tier"):
        CascadeModel(first=first, second=first)


# ----------------------------------------------------------- margin routing
@settings(max_examples=25, deadline=None)
@given(threshold=st.floats(0.0, 0.2), chunk=st.integers(3, 40))
def test_rerank_set_is_exactly_below_threshold_rows(threshold, chunk):
    """Row-for-row routing: >= threshold keeps packed scores bitwise,
    < threshold gets the fixed second tier's scores bitwise."""
    X, y, X_test, _ = _blob_problem(seed=13, n_features=10)
    model = BoostHD(total_dim=480, n_learners=4, epochs=3, seed=1).fit(X, y)
    cascade = compile_model(
        model,
        dtype=np.float64,
        precision="cascade-fixed16",
        threshold=threshold,
        chunk_size=chunk,
    )
    packed_scores = cascade.first.decision_function(X_test)
    second_scores = cascade.second.decision_function(X_test)
    margins = top2_margin(packed_scores)
    rerank = margins < threshold

    cascade.stats.reset()
    produced = cascade.decision_function(X_test)
    np.testing.assert_array_equal(produced[~rerank], packed_scores[~rerank])
    np.testing.assert_array_equal(produced[rerank], second_scores[rerank])
    assert cascade.stats.rows_reranked == int(rerank.sum())
    assert cascade.stats.rows_scored == len(X_test)
    assert cascade.stats.rerank_fraction == pytest.approx(rerank.mean())


@settings(max_examples=20, deadline=None)
@given(chunk=st.integers(2, 19), single=st.integers(0, 35))
def test_cascade_scoring_is_batch_composition_invariant(chunk, single):
    """A row's cascade scores are identical alone, in any batch, any chunking."""
    X, y, X_test, _ = _blob_problem(seed=14, n_features=10)
    model = BoostHD(total_dim=480, n_learners=4, epochs=3, seed=1).fit(X, y)
    whole = compile_model(model, dtype=np.float64, precision="cascade-fixed16")
    chunked = compile_model(
        model, dtype=np.float64, precision="cascade-fixed16", chunk_size=chunk
    )
    encoded = whole.encode(X_test)
    batch_scores = whole.score_encoded(encoded)
    np.testing.assert_array_equal(chunked.score_encoded(encoded), batch_scores)
    single %= len(X_test)
    np.testing.assert_array_equal(
        whole.score_encoded(encoded[single][None])[0], batch_scores[single]
    )


def test_predictions_match_tiers_rowwise(engines, problem):
    _, _, X_test, _ = problem
    cascade = engines["fixed16"]
    cascade.threshold = 0.05
    packed_pred = engines["packed"].predict(X_test)
    second_pred = cascade.second.predict(X_test)
    margins = top2_margin(engines["packed"].decision_function(X_test))
    rerank = margins < cascade.threshold
    produced = cascade.predict(X_test)
    np.testing.assert_array_equal(produced[~rerank], packed_pred[~rerank])
    np.testing.assert_array_equal(produced[rerank], second_pred[rerank])


# -------------------------------------------------------------- calibration
def test_calibration_meets_parity_target(engines, problem):
    _, _, X_test, _ = problem
    cascade = engines["fixed16"]
    result = cascade.calibrate_threshold(X_test, target=0.95)
    assert result.mode == "parity"
    assert result.achieved >= 0.95 - 1e-9
    assert cascade.threshold == result.threshold
    # The reported fraction is what the threshold actually routes.
    margins = top2_margin(cascade.first.decision_function(X_test))
    assert result.rerank_fraction == pytest.approx(
        np.mean(margins < result.threshold)
    )
    # And the achieved parity is real: rescore and compare predictions.
    agreement = np.mean(cascade.predict(X_test) == cascade.second.predict(X_test))
    assert agreement >= result.achieved - 1e-9


def test_calibration_meets_relative_accuracy_target(engines, problem):
    _, _, X_test, y_test = problem
    cascade = engines["float64"]
    result = cascade.calibrate_threshold(X_test, y_test, target=0.99)
    assert result.mode == "accuracy"
    second_acc = np.mean(cascade.second.predict(X_test) == y_test)
    cascade_acc = np.mean(cascade.predict(X_test) == y_test)
    assert cascade_acc >= 0.99 * second_acc - 1e-9
    assert result.achieved == pytest.approx(cascade_acc)


def test_calibration_is_monotone_in_target(engines, problem):
    _, _, X_test, _ = problem
    cascade = engines["fixed16"]
    thresholds = [
        cascade.calibrate_threshold(
            X_test, target=target, set_threshold=False
        ).threshold
        for target in (0.0, 0.5, 0.9, 0.99, 1.0)
    ]
    assert thresholds == sorted(thresholds)
    # target=0 never needs reranking; target=1 demands exact parity.
    assert thresholds[0] == -np.inf


def test_calibration_extreme_targets(engines, problem):
    _, _, X_test, _ = problem
    cascade = engines["fixed16"]
    zero = cascade.calibrate_threshold(X_test, target=0.0, set_threshold=False)
    assert zero.threshold == -np.inf
    assert zero.rerank_fraction == 0.0
    full = cascade.calibrate_threshold(X_test, target=1.0, set_threshold=False)
    assert full.achieved >= 1.0 - 1e-9
    with pytest.raises(ValueError, match="target"):
        cascade.calibrate_threshold(X_test, target=1.5)
    with pytest.raises(ValueError, match="empty"):
        cascade.calibrate_threshold(X_test[:0])


def test_calibration_rejects_unknown_labels(engines, problem):
    _, _, X_test, y_test = problem
    with pytest.raises(ValueError, match="not trained"):
        engines["fixed16"].calibrate_threshold(X_test, np.full(len(X_test), 99))
    with pytest.raises(ValueError, match="shape"):
        engines["fixed16"].calibrate_threshold(X_test, y_test[:3])


# ------------------------------------------------------------------- top-k
def test_score_topk_matches_decision_function(engines, problem):
    _, _, X_test, _ = problem
    for engine in (engines["packed"], engines["fixed16"]):
        scores = engine.decision_function(X_test)
        top_scores, top_labels = engine.score_topk(X_test, k=2)
        assert top_scores.shape == top_labels.shape == (len(X_test), 2)
        np.testing.assert_array_equal(top_labels[:, 0], engine.predict(X_test))
        np.testing.assert_array_equal(top_scores[:, 0], scores.max(axis=1))
        np.testing.assert_array_equal(
            top_scores[:, 0] - top_scores[:, 1], top2_margin(scores)
        )
        # k = n_classes is a full per-row ranking: every class appears once.
        full = engine.predict_topk(X_test, k=scores.shape[1])
        np.testing.assert_array_equal(
            np.sort(full, axis=1), np.tile(np.sort(engine.classes_), (len(full), 1))
        )


def test_topk_indices_validates():
    scores = np.array([[0.1, 0.5, 0.2]])
    np.testing.assert_array_equal(topk_indices(scores, 3)[0], [1, 2, 0])
    with pytest.raises(ValueError, match="k must be"):
        topk_indices(scores, 0)
    with pytest.raises(ValueError, match="k must be"):
        topk_indices(scores, 4)
    with pytest.raises(ValueError, match="2-D"):
        topk_indices(scores[0], 1)
    # Stable ties: equal scores break toward the lower column.
    np.testing.assert_array_equal(topk_indices(np.zeros((2, 3)), 2), [[0, 1], [0, 1]])


def test_top2_margin_single_class_is_infinite():
    assert np.all(np.isinf(top2_margin(np.ones((3, 1)))))
    with pytest.raises(ValueError, match="2-D"):
        top2_margin(np.ones(3))


# ----------------------------------------------------------------- registry
@pytest.fixture(scope="module")
def cascade_registry(tmp_path_factory, fitted, problem):
    registry = ModelRegistry(tmp_path_factory.mktemp("cascade-registry"))
    registry.save("float-artifact", fitted)
    registry.save("fixed16-artifact", fitted, quantize="fixed16")
    return registry


def test_registry_cascade_load_without_dequantize(
    cascade_registry, problem, monkeypatch
):
    """Both tiers come byte-for-byte from the stored fixed16 codes."""
    _, _, X_test, _ = problem
    _forbid_dequantization(monkeypatch)
    engine = cascade_registry.load(
        "fixed16-artifact", precision="cascade-fixed16", threshold=0.04
    )
    assert isinstance(engine, CascadeModel)
    assert engine.threshold == 0.04
    record = cascade_registry.describe("fixed16-artifact")
    with np.load(record.path / "model.npz") as archive:
        for index, (packed, fixed) in enumerate(
            zip(engine.first.blocks, engine.second.blocks)
        ):
            stored = archive[f"learner_{index}_codes"]
            np.testing.assert_array_equal(packed.packed, pack_signs(stored))
            assert fixed.codes.dtype == np.int16
            np.testing.assert_array_equal(fixed.codes.T, stored)
            assert fixed.scale == float(archive[f"learner_{index}_scale"])
    assert len(engine.predict(X_test)) == len(X_test)


def test_registry_cascade_round_trip_is_bitwise(cascade_registry, fitted, problem):
    """A float artifact's cascade scores bitwise like a directly compiled one."""
    _, _, X_test, _ = problem
    for precision in ("cascade-fixed16", "cascade-float64"):
        loaded = cascade_registry.load_compiled(
            "float-artifact", precision=precision, dtype=np.float64, threshold=0.05
        )
        reference = compile_model(
            fitted, dtype=np.float64, precision=precision, threshold=0.05
        )
        np.testing.assert_array_equal(
            loaded.decision_function(X_test), reference.decision_function(X_test)
        )


def test_registry_cascade_unknown_precision(cascade_registry):
    from repro.serving import RegistryError

    with pytest.raises(RegistryError, match="cascade"):
        cascade_registry.load("float-artifact", precision="cascade-int4")
    assert set(CASCADE_PRECISIONS) == {
        "cascade-fixed16", "cascade-fixed8", "cascade-float64"
    }


# ------------------------------------------------------------------ serving
def test_streaming_service_serves_cascade(problem, fitted):
    from repro.serving import StreamingService

    service = StreamingService(
        fitted, n_channels=2, window_samples=32, precision="cascade-fixed16"
    )
    assert isinstance(service.scheduler.scorer, CascadeModel)
    # Re-using an already-compiled cascade under the bare alias is fine.
    compiled = compile_model(fitted, precision="cascade")
    again = StreamingService(
        compiled, n_channels=2, window_samples=32, precision="cascade"
    )
    assert again.scheduler.scorer is compiled
    with pytest.raises(ValueError, match="requantize"):
        StreamingService(
            compiled, n_channels=2, window_samples=32, precision="cascade-fixed8"
        )


def test_micro_batch_scheduler_scores_cascade(problem, fitted):
    from repro.serving import MicroBatchScheduler

    _, _, X_test, _ = problem
    cascade = compile_model(fitted, dtype=np.float64, precision="cascade-fixed16")
    scheduler = MicroBatchScheduler(cascade, max_batch=8)
    direct = cascade.predict(X_test)
    for index, row in enumerate(X_test):
        scheduler.submit("s", index, row)
    predictions = scheduler.flush()
    assert len(predictions) == len(X_test)
    for prediction in predictions:
        assert prediction.label == direct[prediction.window_index]
