"""Contract tests for the streaming serving layer (:mod:`repro.serving`).

The load-bearing guarantees:

* **Incremental featurization** — ``StreamSession`` equals batch
  ``extract_features`` to <= 1e-9 for *arbitrary* window/step/smoothing
  configurations (property-based, hypothesis).
* **Micro-batching** — the scheduler's coalesced fused calls produce the
  same predictions as scoring every window alone, while batching per its
  ``max_batch`` / ``max_wait`` policy.
* **Registry** — save -> load -> (compile) reproduces predictions
  byte-identically; quantized artifacts round-trip deterministically.
* **Adaptation** — ``partial_fit``-based feedback updates the served model
  and invalidates/recompiles the engine; the drift monitor flags margin
  collapse.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BoostHD, SharedPartitioner
from repro.data import CHANNELS, SignalSimulator, WESAD_STATES
from repro.data.features import extract_features
from repro.hdc import OnlineHD
from repro.serving import (
    AdaptiveModel,
    DriftMonitor,
    MicroBatchScheduler,
    ModelRegistry,
    RegistryError,
    StreamingService,
    StreamSession,
)

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def fitted_models(blobs_split):
    X_train, _, y_train, _ = blobs_split
    boost = BoostHD(total_dim=120, n_learners=4, epochs=1, seed=3).fit(X_train, y_train)
    online = OnlineHD(dim=90, epochs=1, seed=5).fit(X_train, y_train)
    return boost, online


# --------------------------------------------------------------------- session
class TestStreamSessionEquivalence:
    def _batch_reference(self, stream, window, step, smoothing):
        n = stream.shape[1]
        starts = range(0, n - window + 1, step)
        windows = np.stack([stream[:, s : s + window] for s in starts])
        return extract_features(windows, smoothing_window=smoothing)

    @settings(max_examples=40, deadline=None)
    @given(
        window=st.integers(2, 48),
        step=st.integers(1, 60),
        smoothing=st.integers(1, 40),
        channels=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    def test_incremental_matches_batch_features(
        self, window, step, smoothing, channels, seed
    ):
        """Property: per-sample featurization == batch pipeline, any geometry."""
        rng = np.random.default_rng(seed)
        n = window + 3 * step + 7
        # High offset + drift: the regime where naive accumulators lose digits.
        stream = 33.0 + rng.standard_normal((channels, n)) * 2.0
        session = StreamSession(
            "subject",
            n_channels=channels,
            window_samples=window,
            step_samples=step,
            smoothing_window=smoothing,
        )
        ready = session.push(stream)
        expected = self._batch_reference(stream, window, step, smoothing)
        assert len(ready) == len(expected)
        assert [r.window_index for r in ready] == list(range(len(expected)))
        if len(ready):
            produced = np.stack([r.features for r in ready])
            np.testing.assert_allclose(produced, expected, atol=1e-9, rtol=0)

    def test_sample_by_sample_equals_chunked_push(self):
        rng = np.random.default_rng(0)
        stream = rng.standard_normal((3, 200))
        one = StreamSession("a", n_channels=3, window_samples=50, step_samples=20)
        two = StreamSession("b", n_channels=3, window_samples=50, step_samples=20)
        ready_chunked = one.push(stream)
        ready_single = []
        for column in stream.T:
            ready_single.extend(two.push(column))
        assert len(ready_chunked) == len(ready_single)
        for lhs, rhs in zip(ready_chunked, ready_single):
            np.testing.assert_array_equal(lhs.features, rhs.features)
            assert lhs.end_sample == rhs.end_sample

    @pytest.mark.slow
    def test_long_stream_stays_exact_past_resync(self):
        """The rolling sum re-sync keeps drift bounded on long streams."""
        from repro.serving import session as session_module

        rng = np.random.default_rng(1)
        n = 3 * session_module._RESYNC_INTERVAL + 137
        stream = 1e6 + rng.standard_normal((1, n))
        window, step = 64, 64
        session = StreamSession("s", n_channels=1, window_samples=window, step_samples=step)
        ready = session.push(stream)
        expected = self._batch_reference(stream, window, step, 30)
        produced = np.stack([r.features for r in ready])
        np.testing.assert_allclose(produced, expected, atol=1e-9, rtol=0)

    def test_statistics_subset_and_metadata(self):
        rng = np.random.default_rng(2)
        session = StreamSession(
            "s", n_channels=2, window_samples=10, statistics=("mean", "std")
        )
        assert session.feature_width == 4
        ready = session.push(rng.standard_normal((2, 25)))
        assert len(ready) == 2
        assert ready[0].session_id == "s"
        assert ready[0].end_sample == 9 and ready[1].end_sample == 19
        assert session.windows_emitted == 2 and session.samples_seen == 25

    def test_overlap_bounds_open_windows(self):
        session = StreamSession("s", n_channels=1, window_samples=40, step_samples=10)
        session.push(np.zeros((1, 500)))
        assert session.open_windows <= 4

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError):
            StreamSession("s", n_channels=0, window_samples=10)
        with pytest.raises(ValueError):
            StreamSession("s", n_channels=1, window_samples=0)
        with pytest.raises(ValueError):
            StreamSession("s", n_channels=1, window_samples=10, step_samples=0)
        with pytest.raises(ValueError):
            StreamSession("s", n_channels=1, window_samples=10, statistics=("median",))

    def test_invalid_samples_raise(self):
        session = StreamSession("s", n_channels=3, window_samples=10)
        with pytest.raises(ValueError):
            session.push(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            session.push(np.full((3, 2), np.nan))


# ------------------------------------------------------------------- scheduler
class TestMicroBatchScheduler:
    def test_batched_predictions_match_individual_scoring(self, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        engine = boost.compile(dtype=np.float64)
        scheduler = MicroBatchScheduler(engine, max_batch=8, max_wait=0.0)
        for row, features in enumerate(X_test):
            scheduler.submit(f"session-{row % 3}", row, features)
        predictions = scheduler.flush()
        assert len(predictions) == len(X_test)
        expected = engine.predict(X_test)
        for row, prediction in enumerate(predictions):
            assert prediction.label == expected[row]
            assert prediction.session_id == f"session-{row % 3}"
            assert prediction.window_index == row
            assert 1 <= prediction.batch_size <= 8

    def test_max_batch_triggers_release(self, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        _, online = fitted_models
        scheduler = MicroBatchScheduler(
            online.compile(dtype=np.float64), max_batch=4, max_wait=1e9
        )
        released = []
        for row in range(11):
            scheduler.submit("s", row, X_test[row % len(X_test)])
            released.extend(scheduler.pump())
        assert len(released) == 8  # two full batches of 4; 3 still pending
        assert scheduler.pending == 3
        assert all(p.batch_size == 4 for p in released)
        released.extend(scheduler.flush())
        assert len(released) == 11 and scheduler.pending == 0

    def test_max_wait_releases_partial_batch(self, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        _, online = fitted_models
        now = [0.0]
        scheduler = MicroBatchScheduler(
            online.compile(dtype=np.float64),
            max_batch=64,
            max_wait=0.5,
            clock=lambda: now[0],
        )
        scheduler.submit("s", 0, X_test[0])
        assert scheduler.pump() == []  # too fresh
        now[0] = 0.6
        released = scheduler.pump()
        assert len(released) == 1
        assert released[0].batch_size == 1
        assert released[0].queue_seconds == pytest.approx(0.6)

    def test_stats_accumulate(self, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        scheduler = MicroBatchScheduler(boost.compile(dtype=np.float64), max_batch=8)
        for row, features in enumerate(X_test):
            scheduler.submit("s", row, features)
        scheduler.flush()
        stats = scheduler.stats
        assert stats.windows_scored == len(X_test)
        assert stats.batches == int(np.ceil(len(X_test) / 8))
        assert 0 < stats.latency_percentile(50) <= stats.latency_percentile(99)
        assert stats.mean_batch_size > 1

    def test_loop_path_model_is_a_valid_scorer(self, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        scheduler = MicroBatchScheduler(boost, max_batch=16)
        for row, features in enumerate(X_test[:5]):
            scheduler.submit("s", row, features)
        predictions = scheduler.flush()
        assert [p.label for p in predictions] == list(boost.predict(X_test[:5]))

    def test_invalid_arguments_raise(self, fitted_models):
        boost, _ = fitted_models
        with pytest.raises(ValueError):
            MicroBatchScheduler(boost, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(boost, max_wait=-1.0)
        with pytest.raises(TypeError):
            MicroBatchScheduler(object())
        scheduler = MicroBatchScheduler(boost)
        with pytest.raises(ValueError):
            scheduler.submit("s", 0, np.zeros((2, 2)))

    def test_scorer_failure_requeues_batch(self, blobs_split, fitted_models):
        """Regression: a raising scorer must not silently drop the batch."""
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        engine = boost.compile(dtype=np.float64)

        class Flaky:
            classes_ = engine.classes_

            def __init__(self):
                self.fail = False

            def decision_function(self, X):
                if self.fail:
                    raise RuntimeError("transient scorer outage")
                return engine.decision_function(X)

        scorer = Flaky()
        scheduler = MicroBatchScheduler(scorer, max_batch=4, max_wait=0.0)
        for row in range(6):
            scheduler.submit("s", row, X_test[row])
        scorer.fail = True
        with pytest.raises(RuntimeError, match="transient scorer outage"):
            scheduler.flush()
        # Every window survived the failure, in order, and it was counted.
        assert scheduler.pending == 6
        assert scheduler.stats.score_failures == 1
        assert scheduler.stats.windows_scored == 0
        scorer.fail = False
        predictions = scheduler.flush()
        assert [p.window_index for p in predictions] == list(range(6))
        expected = engine.predict(X_test[:6])
        assert [p.label for p in predictions] == list(expected)
        assert scheduler.pending == 0

    def test_requeued_windows_keep_enqueue_time(self, blobs_split, fitted_models):
        """Failed windows keep their original enqueue time for latency stats."""
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        engine = boost.compile(dtype=np.float64)
        calls = {"n": 0}

        class FailsOnce:
            classes_ = engine.classes_

            def decision_function(self, X):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("boom")
                return engine.decision_function(X)

        now = [10.0]
        scheduler = MicroBatchScheduler(
            FailsOnce(), max_batch=8, max_wait=0.0, clock=lambda: now[0]
        )
        scheduler.submit("s", 0, X_test[0])
        with pytest.raises(RuntimeError):
            scheduler.flush()
        now[0] = 12.5
        (prediction,) = scheduler.flush()
        assert prediction.queue_seconds == pytest.approx(2.5)

    def test_prediction_scores_are_detached_copies(self, blobs_split, fitted_models):
        """Regression: scores must not alias the shared (B, k) batch array."""
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        engine = boost.compile(dtype=np.float64)
        scheduler = MicroBatchScheduler(engine, max_batch=8, max_wait=0.0)
        for row in range(5):
            scheduler.submit("s", row, X_test[row])
        predictions = scheduler.flush()
        assert all(p.scores.base is None for p in predictions)  # own memory
        assert all(not p.scores.flags.writeable for p in predictions)
        with pytest.raises(ValueError):
            predictions[0].scores[0] = 123.0

    def test_prediction_equality_and_hash(self, blobs_split, fitted_models):
        """Regression: comparing predictions must not raise for k > 1 scores."""
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        engine = boost.compile(dtype=np.float64)

        import dataclasses

        scheduler = MicroBatchScheduler(engine, max_batch=4, max_wait=0.0)
        for row in range(3):
            scheduler.submit("s", row, X_test[row])
        first = scheduler.flush()
        # The auto-generated dataclass __eq__ compared the k>1 ndarray with
        # `==` and raised "truth value of an array is ambiguous"; these
        # comparisons must all simply work.
        twin = dataclasses.replace(first[0], scores=first[0].scores.copy())
        assert first[0] == twin
        assert first[0] != first[1]
        assert first[0] != dataclasses.replace(first[0], label=-999)
        assert first[0] != "not a prediction"
        assert hash(first[0]) == hash(twin)
        assert len(set(first) | {twin}) == len(first)  # usable in sets


# -------------------------------------------------------------------- registry
class TestModelRegistry:
    def test_boosthd_round_trip_is_byte_identical(self, tmp_path, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        registry = ModelRegistry(tmp_path)
        version = registry.save("stress", boost, metadata={"dataset": "blobs"})
        loaded = registry.load("stress", version)
        np.testing.assert_array_equal(
            loaded.decision_function(X_test), boost.decision_function(X_test)
        )
        np.testing.assert_array_equal(loaded.predict(X_test), boost.predict(X_test))

    def test_compiled_round_trip_is_byte_identical(self, tmp_path, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        registry = ModelRegistry(tmp_path)
        registry.save("stress", boost)
        original = boost.compile(dtype=np.float32, chunk_size=7)
        restored = registry.load_compiled("stress", dtype=np.float32, chunk_size=7)
        np.testing.assert_array_equal(
            restored.decision_function(X_test), original.decision_function(X_test)
        )

    def test_shared_projection_layout_survives(self, tmp_path, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = BoostHD(
            total_dim=120,
            n_learners=4,
            epochs=1,
            partitioner=SharedPartitioner(120, 4, bandwidth=1.5),
            seed=3,
        ).fit(X_train, y_train)
        registry = ModelRegistry(tmp_path)
        registry.save("shared", model)
        assert registry.describe("shared").shared_projection
        restored = registry.load_compiled("shared", dtype=np.float64)
        assert restored.shared_projection
        np.testing.assert_array_equal(
            restored.decision_function(X_test),
            model.compile(dtype=np.float64).decision_function(X_test),
        )

    def test_onlinehd_round_trip_and_partial_fit(self, tmp_path, blobs_split, fitted_models):
        X_train, X_test, y_train, _ = blobs_split
        _, online = fitted_models
        registry = ModelRegistry(tmp_path)
        registry.save("single", online)
        loaded = registry.load("single")
        np.testing.assert_array_equal(
            loaded.decision_function(X_test), online.decision_function(X_test)
        )
        # A registry-loaded model must be adaptable without retraining.
        loaded.partial_fit(X_train[:10], y_train[:10])

    def test_versioning_and_inventory(self, tmp_path, fitted_models):
        boost, online = fitted_models
        registry = ModelRegistry(tmp_path)
        assert registry.models() == []
        assert registry.versions("stress") == []
        assert registry.save("stress", boost) == 1
        assert registry.save("stress", boost) == 2
        assert registry.save("other", online) == 1
        assert registry.versions("stress") == [1, 2]
        assert registry.latest("stress") == 2
        assert registry.models() == ["other", "stress"]
        record = registry.describe("stress")
        assert record.version == 2 and record.kind == "boosthd"

    @pytest.mark.parametrize("scheme", ["fixed16", "fixed8"])
    def test_quantized_artifacts_round_trip_deterministically(
        self, tmp_path, blobs_split, fitted_models, scheme
    ):
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        registry = ModelRegistry(tmp_path)
        registry.save("quantized", boost, quantize=scheme)
        first = registry.load("quantized")
        # Quantisation changes the model once; re-publishing the dequantised
        # model must be a fixed point (stable codes, identical predictions).
        registry.save("requantized", first, quantize=scheme)
        second = registry.load("requantized")
        np.testing.assert_array_equal(
            first.decision_function(X_test), second.decision_function(X_test)
        )
        assert registry.describe("quantized").quantize == scheme

    def test_errors(self, tmp_path, fitted_models):
        boost, _ = fitted_models
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError, match="no versions"):
            registry.load("missing")
        with pytest.raises(RegistryError, match="unfitted"):
            registry.save("unfit", BoostHD(total_dim=40, n_learners=2))
        with pytest.raises(RegistryError, match="expected BoostHD or OnlineHD"):
            registry.save("bad", object())
        with pytest.raises(RegistryError, match="quantize"):
            registry.save("bad", boost, quantize="fixed4")
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.save("../escape", boost)
        registry.save("stress", boost)
        with pytest.raises(RegistryError, match="v9"):
            registry.load("stress", 9)


# ------------------------------------------------------------------ adaptation
class TestDriftMonitor:
    def test_margins(self):
        scores = np.array([[0.9, 0.1, 0.3], [0.2, 0.6, 0.5]])
        np.testing.assert_allclose(DriftMonitor.margins(scores), [0.6, 0.1])

    def test_drift_flagged_on_margin_collapse(self):
        monitor = DriftMonitor(window=10, baseline_window=10, ratio=0.5)
        confident = np.tile([0.9, 0.1], (10, 1))
        monitor.update(confident)
        assert monitor.baseline_margin == pytest.approx(0.8)
        assert not monitor.drifted
        collapsed = np.tile([0.52, 0.48], (10, 1))
        monitor.update(collapsed)
        assert monitor.rolling_margin == pytest.approx(0.04)
        assert monitor.drifted

    def test_absolute_floor(self):
        monitor = DriftMonitor(window=4, baseline_window=100, min_margin=0.05)
        monitor.update(np.tile([0.51, 0.49], (4, 1)))
        assert monitor.baseline_margin is None  # baseline not yet established
        assert monitor.drifted  # but the absolute floor already fired

    def test_reset_baseline(self):
        monitor = DriftMonitor(window=4, baseline_window=4)
        monitor.update(np.tile([0.9, 0.1], (4, 1)))
        assert monitor.baseline_margin is not None
        monitor.reset_baseline()
        assert monitor.baseline_margin is None

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DriftMonitor(window=0)
        with pytest.raises(ValueError):
            DriftMonitor(ratio=0.0)
        with pytest.raises(ValueError):
            DriftMonitor.margins(np.ones((3, 1)))


class TestAdaptiveModel:
    def test_scores_match_plain_engine_and_feed_monitor(self, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        served = AdaptiveModel(boost, compile_options={"dtype": np.float64})
        labels, scores = served.score(X_test)
        np.testing.assert_array_equal(labels, boost.predict(X_test))
        np.testing.assert_allclose(
            scores, boost.compile(dtype=np.float64).decision_function(X_test)
        )
        assert served.monitor.observed == len(X_test)

    def test_feedback_updates_model_and_recompiles(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = OnlineHD(dim=90, epochs=1, seed=5).fit(X_train, y_train)
        served = AdaptiveModel(model, compile_options={"dtype": np.float64})
        before = served.compiled
        baseline_scores = served.compiled.decision_function(X_test).copy()
        served.feedback(X_test, y_test)
        assert served.stale and served.feedback_samples == len(X_test)
        after = served.compiled
        assert after is not before
        assert served.recompiles == 2
        # The engine serves the *adapted* hypervectors.
        np.testing.assert_allclose(
            after.decision_function(X_test),
            model.compile(dtype=np.float64).decision_function(X_test),
        )
        assert not np.array_equal(
            after.decision_function(X_test), baseline_scores
        )

    def test_boosthd_feedback_reaches_every_learner(self, blobs_split, fitted_models):
        X_train, _, y_train, _ = blobs_split
        boost = BoostHD(total_dim=120, n_learners=4, epochs=1, seed=9).fit(
            X_train, y_train
        )
        served = AdaptiveModel(boost, compile_options={"dtype": np.float64})
        snapshots = [learner.class_hypervectors_.copy() for learner in boost.learners_]
        served.feedback(X_train[:15], y_train[:15])
        for learner, snapshot in zip(boost.learners_, snapshots):
            assert not np.array_equal(learner.class_hypervectors_, snapshot)

    def test_scheduler_accepts_adaptive_model(self, blobs_split, fitted_models):
        _, X_test, _, _ = blobs_split
        boost, _ = fitted_models
        served = AdaptiveModel(boost, compile_options={"dtype": np.float64})
        scheduler = MicroBatchScheduler(served, max_batch=8)
        for row, features in enumerate(X_test[:6]):
            scheduler.submit("s", row, features)
        predictions = scheduler.flush()
        assert [p.label for p in predictions] == list(boost.predict(X_test[:6]))

    def test_rejects_unsupported_model(self):
        with pytest.raises(TypeError):
            AdaptiveModel(object())


# --------------------------------------------------------------------- service
class TestStreamingService:
    def test_end_to_end_stream_matches_offline_pipeline(self, blobs_split):
        """Simulator -> sessions -> scheduler == extract_features -> engine."""
        rng = np.random.default_rng(0)
        n_features = len(CHANNELS) * 4
        centers = rng.standard_normal((2, n_features)) * 3.0
        X_train = np.vstack([c + rng.standard_normal((30, n_features)) for c in centers])
        y_train = np.repeat(np.arange(2), 30)
        model = OnlineHD(dim=120, epochs=1, seed=0).fit(X_train, y_train)
        engine = model.compile(dtype=np.float64)

        simulator = SignalSimulator(sampling_rate=8, window_seconds=4, rng=7)
        window = simulator.samples_per_window
        service = StreamingService(
            engine,
            n_channels=len(CHANNELS),
            window_samples=window,
            max_batch=4,
            max_wait=1e9,
        )
        subjects = ["s0", "s1", "s2"]
        for subject in subjects:
            service.open_session(subject)

        streams = {
            subject: np.concatenate(
                list(
                    simulator.stream_chunks(
                        WESAD_STATES[index % 3],
                        chunk_samples=window // 2,
                        n_chunks=6,
                    )
                ),
                axis=1,
            )
            for index, subject in enumerate(subjects)
        }
        predictions = []
        for subject, stream in streams.items():
            predictions.extend(service.push(subject, stream))
        predictions.extend(service.drain())

        assert len(predictions) == 3 * 3  # 3 windows per subject
        for prediction in predictions:
            stream = streams[prediction.session_id]
            start = prediction.window_index * window
            reference = extract_features(
                stream[None, :, start : start + window]
            )
            expected = engine.predict(reference)[0]
            assert prediction.label == expected

    def test_session_management(self, fitted_models):
        boost, _ = fitted_models
        service = StreamingService(
            boost.compile(dtype=np.float64), n_channels=2, window_samples=10
        )
        service.open_session("a")
        with pytest.raises(ValueError, match="already open"):
            service.open_session("a")
        with pytest.raises(KeyError, match="no open session"):
            service.push("ghost", np.zeros(2))
        service.close_session("a")
        with pytest.raises(KeyError, match="no open session"):
            service.close_session("a")

    def test_transform_applies_training_scaler(self, mini_wesad):
        """Serving must score *scaled* features, like the training pipeline."""
        X_train, X_test, y_train, _ = mini_wesad.split(test_fraction=0.3, rng=0)
        model = OnlineHD(dim=150, epochs=2, seed=0).fit(X_train, y_train)
        engine = model.compile(dtype=np.float64)

        simulator = SignalSimulator(sampling_rate=8, window_seconds=8, rng=11)
        window = simulator.samples_per_window
        assert mini_wesad.scaler is not None  # generated datasets keep it
        service = StreamingService(
            engine,
            n_channels=len(CHANNELS),
            window_samples=window,
            max_batch=4,
            max_wait=1e9,
            transform=mini_wesad.scaler.transform,
        )
        service.open_session("s")
        stream = np.concatenate(
            list(simulator.stream_chunks(WESAD_STATES[0], chunk_samples=window, n_chunks=2)),
            axis=1,
        )
        predictions = service.push("s", stream) + service.drain()
        assert len(predictions) == 2
        for prediction in predictions:
            start = prediction.window_index * window
            raw = extract_features(stream[None, :, start : start + window])
            expected = engine.predict(mini_wesad.scaler.transform(raw))[0]
            assert prediction.label == expected
