"""Unit tests for hypervector primitives."""

import numpy as np
import pytest

from repro.hdc import (
    binarize,
    bind,
    bipolarize,
    bundle,
    cosine_similarity,
    hard_quantize,
    normalize,
    permute,
    random_hypervector,
)
from repro.hdc.hypervector import as_batch


class TestRandomHypervector:
    def test_single_vector_shape(self):
        assert random_hypervector(100, rng=0).shape == (100,)

    def test_batch_shape(self):
        assert random_hypervector(50, 7, rng=0).shape == (7, 50)

    def test_bipolar_values(self):
        hv = random_hypervector(200, flavour="bipolar", rng=0)
        assert set(np.unique(hv)) <= {-1.0, 1.0}

    def test_binary_values(self):
        hv = random_hypervector(200, flavour="binary", rng=0)
        assert set(np.unique(hv)) <= {0.0, 1.0}

    def test_gaussian_statistics(self):
        hv = random_hypervector(20000, rng=0)
        assert abs(hv.mean()) < 0.05
        assert abs(hv.std() - 1.0) < 0.05

    def test_reproducible_with_seed(self):
        np.testing.assert_array_equal(
            random_hypervector(64, rng=42), random_hypervector(64, rng=42)
        )

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            random_hypervector(0)

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            random_hypervector(10, 0)

    def test_invalid_flavour_raises(self):
        with pytest.raises(ValueError):
            random_hypervector(10, flavour="ternary")

    def test_random_hypervectors_quasi_orthogonal(self):
        batch = random_hypervector(5000, 2, flavour="bipolar", rng=3)
        assert abs(cosine_similarity(batch[0], batch[1])) < 0.1


class TestBundle:
    def test_bundle_is_sum(self):
        vectors = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(bundle(vectors), [4.0, 6.0])

    def test_bundle_preserves_similarity(self):
        components = random_hypervector(4000, 3, flavour="bipolar", rng=0)
        bundled = bundle(components)
        for component in components:
            assert cosine_similarity(bundled, component) > 0.3

    def test_weighted_bundle(self):
        vectors = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(bundle(vectors, weights=[2.0, 3.0]), [2.0, 3.0])

    def test_bundle_single_vector(self):
        vector = np.array([1.0, -1.0, 2.0])
        np.testing.assert_allclose(bundle(vector), vector)

    def test_bundle_empty_raises(self):
        with pytest.raises(ValueError):
            bundle(np.empty((0, 5)))

    def test_weight_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bundle(np.ones((3, 4)), weights=[1.0, 2.0])


class TestBind:
    def test_bind_is_elementwise_product(self):
        np.testing.assert_allclose(
            bind(np.array([1.0, 2.0]), np.array([3.0, -1.0])), [3.0, -2.0]
        )

    def test_bound_vector_orthogonal_to_inputs(self):
        first = random_hypervector(5000, flavour="bipolar", rng=0)
        second = random_hypervector(5000, flavour="bipolar", rng=1)
        bound = bind(first, second)
        assert abs(cosine_similarity(bound, first)) < 0.1
        assert abs(cosine_similarity(bound, second)) < 0.1

    def test_bind_is_invertible_for_bipolar(self):
        first = random_hypervector(1000, flavour="bipolar", rng=0)
        second = random_hypervector(1000, flavour="bipolar", rng=1)
        recovered = bind(bind(first, second), second)
        np.testing.assert_allclose(recovered, first)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            bind(np.ones(4), np.ones(5))


class TestPermuteNormalizeQuantize:
    def test_permute_rolls_elements(self):
        np.testing.assert_allclose(permute(np.array([1.0, 2.0, 3.0])), [3.0, 1.0, 2.0])

    def test_permute_inverse(self):
        vector = random_hypervector(128, rng=0)
        np.testing.assert_allclose(permute(permute(vector, 5), -5), vector)

    def test_normalize_unit_norm(self):
        vector = np.array([3.0, 4.0])
        assert np.linalg.norm(normalize(vector)) == pytest.approx(1.0)

    def test_normalize_zero_vector_unchanged(self):
        np.testing.assert_allclose(normalize(np.zeros(5)), np.zeros(5))

    def test_bipolarize_values(self):
        result = bipolarize(np.array([-0.5, 0.0, 2.0]))
        np.testing.assert_allclose(result, [-1.0, 1.0, 1.0])

    def test_binarize_values(self):
        result = binarize(np.array([-0.5, 0.0, 2.0]))
        np.testing.assert_allclose(result, [0.0, 1.0, 1.0])

    def test_hard_quantize_dispatch(self):
        vector = np.array([-1.5, 0.5])
        np.testing.assert_allclose(hard_quantize(vector, scheme="bipolar"), [-1.0, 1.0])
        np.testing.assert_allclose(hard_quantize(vector, scheme="binary"), [0.0, 1.0])

    def test_hard_quantize_unknown_scheme(self):
        with pytest.raises(ValueError):
            hard_quantize(np.ones(3), scheme="octal")

    def test_as_batch_promotes_vector(self):
        assert as_batch(np.ones(4)).shape == (1, 4)

    def test_as_batch_rejects_3d(self):
        with pytest.raises(ValueError):
            as_batch(np.ones((2, 3, 4)))
