"""Unit tests for the shared estimator API."""

import numpy as np
import pytest

from repro.baselines import DecisionTreeClassifier, clone
from repro.baselines.base import BaseClassifier, NotFittedError
from repro.core import BoostHD
from repro.hdc import OnlineHD


class TestParameterIntrospection:
    def test_get_params_roundtrip(self):
        model = DecisionTreeClassifier(max_depth=4, criterion="entropy", seed=3)
        params = model.get_params()
        assert params["max_depth"] == 4
        assert params["criterion"] == "entropy"
        assert params["seed"] == 3

    def test_set_params_updates(self):
        model = DecisionTreeClassifier(max_depth=4)
        model.set_params(max_depth=7)
        assert model.max_depth == 7

    def test_set_params_invalid_name_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().set_params(bogus=1)

    def test_clone_is_unfitted_copy(self, blobs):
        X, y = blobs
        model = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        copy = clone(model)
        assert copy is not model
        assert copy.max_depth == 3
        assert copy.root_ is None

    def test_clone_boosthd_preserves_configuration(self):
        model = BoostHD(total_dim=500, n_learners=5, aggregation="vote", seed=2)
        copy = clone(model)
        assert copy.total_dim == 500
        assert copy.n_learners == 5
        assert copy.aggregation == "vote"

    def test_clone_onlinehd(self):
        copy = clone(OnlineHD(dim=256, lr=0.05, epochs=7, seed=1))
        assert copy.dim == 256 and copy.lr == 0.05 and copy.epochs == 7


class TestValidation:
    def test_validate_fit_rejects_1d_X(self):
        with pytest.raises(ValueError):
            BaseClassifier._validate_fit_args(np.ones(5), np.ones(5))

    def test_validate_fit_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            BaseClassifier._validate_fit_args(np.ones((5, 2)), np.ones(4))

    def test_validate_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            BaseClassifier._validate_fit_args(np.empty((0, 2)), np.empty(0))

    def test_validate_fit_rejects_nan(self):
        X = np.ones((3, 2))
        X[1, 1] = np.inf
        with pytest.raises(ValueError):
            BaseClassifier._validate_fit_args(X, np.ones(3))

    def test_validate_predict_promotes_vector(self):
        assert BaseClassifier._validate_predict_args(np.ones(4)).shape == (1, 4)

    def test_sample_weight_default_uniform(self):
        weights = BaseClassifier._validate_sample_weight(None, 4)
        np.testing.assert_allclose(weights, 0.25)

    def test_sample_weight_normalised(self):
        weights = BaseClassifier._validate_sample_weight(np.array([1.0, 3.0]), 2)
        np.testing.assert_allclose(weights, [0.25, 0.75])

    def test_sample_weight_negative_raises(self):
        with pytest.raises(ValueError):
            BaseClassifier._validate_sample_weight(np.array([1.0, -1.0]), 2)

    def test_sample_weight_zero_sum_raises(self):
        with pytest.raises(ValueError):
            BaseClassifier._validate_sample_weight(np.zeros(3), 3)

    def test_sample_weight_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            BaseClassifier._validate_sample_weight(np.ones(3), 4)

    def test_not_fitted_error(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.ones((2, 3)))


class TestScore:
    def test_score_is_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = DecisionTreeClassifier(max_depth=5, seed=0).fit(X_train, y_train)
        predictions = model.predict(X_test)
        assert model.score(X_test, y_test) == pytest.approx(np.mean(predictions == y_test))
