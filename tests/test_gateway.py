"""Gateway edge tests: wire protocol properties, admission, lifecycle.

Three layers, matching the package layout:

* **hypothesis property suites** over the pure pieces — the token bucket
  (the admitted rate can never exceed ``burst + elapsed * rate``, and the
  bucket is a deterministic function of its call sequence under an
  injected clock) and the HTTP/WebSocket parsers (encode/parse round-trip,
  and *no* input may raise anything but :class:`ProtocolError`);
* **end-to-end asyncio tests** against a real listening gateway — session
  lifecycle, explicit 429/503/504 refusals, shed/dead-letter wire format
  (strict JSON: no NaN ever), dead-letter replay, WebSocket streaming and
  malformed-frame survival;
* **lifecycle contracts** — graceful drain loses no accepted window, and
  predictions served through the gateway are bit-identical to in-process
  serving.

Everything runs on the stdlib loop via ``asyncio.run`` (tier-1 stays
hermetic; no async test plugin needed).
"""

from __future__ import annotations

import asyncio
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway import (
    Gateway,
    GatewayClient,
    GatewayWebSocket,
    ProtocolError,
    RateLimiter,
    TokenBucket,
)
from repro.gateway.http import (
    BINARY,
    TEXT,
    encode_frame,
    parse_frame,
    parse_request_head,
)
from repro.gateway.limits import ConcurrencyLimiter
from repro.resilience import FaultInjected, FaultPlan, FaultSpec, inject
from repro.serving import MicroBatchScheduler, StreamingService

pytestmark = pytest.mark.gateway

N_CHANNELS = 4
WINDOW = 32
N_FEATURES = N_CHANNELS * 4  # min/max/mean/std per channel


class StubScorer:
    """Deterministic, instant scorer: gateway tests don't need a real model."""

    classes_ = np.array([0, 1, 2])

    def decision_function(self, X):
        X = np.asarray(X)
        return np.stack([X.sum(axis=1), X.mean(axis=1), X.max(axis=1)], axis=1)


class FlakyScorer(StubScorer):
    """Raises until ``healed`` — drives windows into the dead-letter queue."""

    def __init__(self):
        self.healed = False

    def decision_function(self, X):
        if not self.healed:
            raise RuntimeError("scorer down")
        return super().decision_function(X)


def make_service(scorer=None, **overrides) -> StreamingService:
    options = {
        "n_channels": N_CHANNELS,
        "window_samples": WINDOW,
        "step_samples": WINDOW,
        "smoothing_window": 1,
        "max_batch": 4,
        "max_wait": 1e9,  # release on full batches / flush only: deterministic
    }
    options.update(overrides)
    return StreamingService(scorer or StubScorer(), **options)


def chunk(n_windows: int = 1, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(N_CHANNELS, WINDOW * n_windows)).tolist()


def run(coro):
    return asyncio.run(coro)


async def start_gateway(service=None, **kw) -> Gateway:
    gateway = Gateway(service or make_service(), **kw)
    await gateway.start()
    return gateway


# ---------------------------------------------------------------- token bucket
class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


bucket_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # clock advance
        st.floats(min_value=0.1, max_value=4.0, allow_nan=False),  # tokens wanted
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    burst=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    ops=bucket_ops,
)
def test_token_bucket_never_exceeds_rate(rate, burst, ops):
    """Granted tokens over any prefix never exceed ``burst + elapsed*rate``."""
    clock = FakeClock()
    bucket = TokenBucket(rate, burst, clock=clock)
    granted = 0.0
    elapsed = 0.0
    for advance, want in ops:
        clock.advance(advance)
        elapsed += advance
        want = min(want, burst)
        if bucket.try_acquire(want) == 0.0:
            granted += want
        assert granted <= burst + elapsed * rate + 1e-6


@settings(max_examples=60, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    burst=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    ops=bucket_ops,
)
def test_token_bucket_deterministic_under_injected_clock(rate, burst, ops):
    """Two buckets fed the identical op sequence agree exactly, call by call."""
    first_clock, second_clock = FakeClock(), FakeClock()
    first = TokenBucket(rate, burst, clock=first_clock)
    second = TokenBucket(rate, burst, clock=second_clock)
    for advance, want in ops:
        first_clock.advance(advance)
        second_clock.advance(advance)
        want = min(want, burst)
        assert first.try_acquire(want) == second.try_acquire(want)
        assert first.tokens == second.tokens


@settings(max_examples=60, deadline=None)
@given(
    rate=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
    burst=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    drain=st.integers(min_value=1, max_value=40),
)
def test_token_bucket_retry_after_is_sufficient(rate, burst, drain):
    """Waiting the advertised ``Retry-After`` always earns admission."""
    clock = FakeClock()
    bucket = TokenBucket(rate, burst, clock=clock)
    for _ in range(drain):
        if bucket.try_acquire(1.0) > 0.0:
            break
    retry_after = bucket.try_acquire(1.0)
    if retry_after > 0.0:
        clock.advance(retry_after + 1e-9)
        assert bucket.try_acquire(1.0) == 0.0


def test_rate_limiter_lru_eviction_is_bounded():
    clock = FakeClock()
    limiter = RateLimiter(10.0, 5.0, max_clients=4, clock=clock)
    for index in range(10):
        limiter.try_acquire(f"client-{index}")
    assert len(limiter) == 4
    assert limiter.evictions == 6


def test_concurrency_limiter_rejects_never_queues():
    limiter = ConcurrencyLimiter(2)
    assert limiter.acquire() and limiter.acquire()
    assert not limiter.acquire()
    assert limiter.rejections == 1
    limiter.release()
    assert limiter.acquire()
    assert limiter.high_watermark == 2
    limiter.release()
    limiter.release()
    with pytest.raises(RuntimeError):
        limiter.release()


# ------------------------------------------------------------- parser properties
header_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12
).filter(lambda s: not s.startswith("-"))
header_values = st.text(
    alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E, exclude_characters=","),
    min_size=0,
    max_size=24,
)


@settings(max_examples=100, deadline=None)
@given(
    method=st.sampled_from(["GET", "POST", "DELETE", "PUT", "PATCH"]),
    path=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789/-_", min_size=1, max_size=32
    ),
    headers=st.dictionaries(header_names, header_values, max_size=6),
)
def test_request_head_round_trip(method, path, headers):
    target = "/" + path.lstrip("/")
    lines = [f"{method} {target} HTTP/1.1"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = "\r\n".join(lines).encode("ascii")
    parsed_method, parsed_target, parsed_headers = parse_request_head(head)
    assert parsed_method == method
    assert parsed_target == target
    for name, value in headers.items():
        assert parsed_headers[name.lower()] == value.strip()


@settings(max_examples=200, deadline=None)
@given(head=st.binary(max_size=256))
def test_request_head_malformed_never_crashes(head):
    """Arbitrary bytes: parse or ProtocolError — never any other exception."""
    try:
        method, target, headers = parse_request_head(head)
    except ProtocolError:
        return
    assert isinstance(method, str) and isinstance(headers, dict)


@settings(max_examples=150, deadline=None)
@given(
    opcode=st.sampled_from([TEXT, BINARY]),
    payload=st.binary(max_size=300),
    masked=st.booleans(),
    trailing=st.binary(max_size=8),
)
def test_ws_frame_round_trip(opcode, payload, masked, trailing):
    mask = bytes([1, 2, 3, 4]) if masked else None
    raw = encode_frame(opcode, payload, mask=mask)
    frame, consumed = parse_frame(raw + trailing, require_mask=masked)
    assert consumed == len(raw)
    assert frame.opcode == opcode
    assert frame.payload == payload
    assert frame.fin
    # every strict prefix is "incomplete", never an error
    for cut in (1, len(raw) // 2, len(raw) - 1):
        if 0 < cut < len(raw):
            assert parse_frame(raw[:cut], require_mask=masked) is None


@settings(max_examples=250, deadline=None)
@given(data=st.binary(max_size=128))
def test_ws_frame_malformed_never_crashes(data):
    """Arbitrary bytes: a frame, incomplete, or ProtocolError — nothing else."""
    try:
        parsed = parse_frame(data, max_payload=1024)
    except ProtocolError:
        return
    if parsed is not None:
        frame, consumed = parsed
        assert 0 < consumed <= len(data)
        assert len(frame.payload) <= 1024


def test_oversized_frame_is_rejected_not_allocated():
    raw = encode_frame(BINARY, b"x" * 200, mask=bytes(4))
    with pytest.raises(ProtocolError):
        parse_frame(raw, max_payload=100)


# ------------------------------------------------------------------ HTTP e2e
def test_http_session_lifecycle_and_wire_format():
    async def scenario():
        gateway = await start_gateway()
        try:
            async with GatewayClient(gateway.host, gateway.port) as client:
                status, _ = await client.open_session("s1")
                assert status == 201
                status, body = await client.open_session("s1")
                assert status == 409  # duplicate
                status, body = await client.feed("s1", chunk(4))
                assert status == 200
                predictions = body["predictions"]
                assert len(predictions) == 4  # max_batch=4 released in-request
                for wire in predictions:
                    assert wire["status"] == "scored"
                    assert wire["session_id"] == "s1"
                    assert isinstance(wire["label"], int)
                    assert all(isinstance(s, float) for s in wire["scores"])
                status, body = await client.feed("nope", chunk(1))
                assert status == 404
                status, body = await client.close_session("s1")
                assert status == 200
                status, body = await client.close_session("s1")
                assert status == 404
        finally:
            await gateway.shutdown(2.0)

    run(scenario())


def test_rate_limit_refuses_with_429_and_retry_after():
    async def scenario():
        clock = FakeClock()
        gateway = await start_gateway(rate=1.0, burst=2, clock=clock)
        try:
            async with GatewayClient(
                gateway.host, gateway.port, client_id="greedy"
            ) as client:
                codes = [(await client.open_session(f"s{i}"))[0] for i in range(4)]
                assert codes[:2] == [201, 201]
                assert codes[2:] == [429, 429]  # frozen clock: no refill
                status, body = await client.request("GET", "/v1/sessions")
                assert status == 429 and body["retry_after"] > 0.0
                # a different client has its own bucket
                async with GatewayClient(
                    gateway.host, gateway.port, client_id="other"
                ) as other:
                    status, _ = await other.request("GET", "/v1/sessions")
                    assert status == 200
                # probes are never rate limited
                assert (await client.healthz())[0] == 200
        finally:
            await gateway.shutdown(2.0)
        assert gateway.stats.rejected_rate_limited >= 3

    run(scenario())


def test_concurrency_limit_refuses_with_503():
    class SlowScorer(StubScorer):
        def decision_function(self, X):
            import time

            time.sleep(0.15)
            return super().decision_function(X)

    async def scenario():
        gateway = await start_gateway(
            make_service(SlowScorer(), max_batch=1), max_concurrent=1
        )
        try:

            async with GatewayClient(gateway.host, gateway.port) as opener:
                for index in range(4):
                    status, _ = await opener.open_session(f"c{index}")
                    assert status == 201

            async def one_feed(index):
                async with GatewayClient(gateway.host, gateway.port) as client:
                    status, _ = await client.feed(f"c{index}", chunk(1))
                    return status

            codes = await asyncio.gather(*(one_feed(i) for i in range(4)))
            assert 200 in codes and 503 in codes
        finally:
            await gateway.shutdown(2.0)
        assert gateway.stats.rejected_saturated >= 1

    run(scenario())


def test_expired_deadline_rejected_before_admission():
    async def scenario():
        gateway = await start_gateway()
        try:
            async with GatewayClient(gateway.host, gateway.port) as client:
                await client.open_session("s1")
                status, body = await client.feed("s1", chunk(1), deadline_ms=0)
                assert status == 504
                assert body["accepted"] is False
                status, body = await client.request(
                    "POST",
                    "/v1/sessions/s1/windows",
                    {"samples": chunk(1)},
                    headers={"x-repro-deadline-ms": "banana"},
                )
                assert status == 400
                # a generous deadline sails through
                status, _ = await client.feed("s1", chunk(1), deadline_ms=30_000)
                assert status == 200
        finally:
            await gateway.shutdown(2.0)
        assert gateway.stats.rejected_deadline >= 1

    run(scenario())


def test_shed_predictions_serialize_as_strict_json():
    """SHED sentinels (NaN scores in-process) must hit the wire as null."""

    async def scenario():
        gateway = await start_gateway(
            make_service(max_batch=64, max_pending=2)
        )
        try:
            async with GatewayClient(gateway.host, gateway.port) as client:
                await client.open_session("s1")
                _, feed_body = await client.feed("s1", chunk(6))
                status, body = await client.score("s1")
                assert status == 200
                by_status = {"scored": 0, "shed": 0}
                for wire in feed_body["predictions"] + body["predictions"]:
                    by_status[wire["status"]] += 1
                    if wire["status"] == "shed":
                        assert wire["label"] is None
                        assert wire["scores"] is None
                    else:
                        assert all(math.isfinite(s) for s in wire["scores"])
                assert by_status["shed"] >= 1  # max_pending=2 forced shedding
                assert by_status["scored"] >= 1
                # the ledger closes: answered + shed == submitted
                stats = (await client.stats())[1]["backend"][0]
                assert (
                    stats["windows_submitted"]
                    == stats["windows_scored"] + stats["windows_shed"]
                )
        finally:
            await gateway.shutdown(2.0)

    run(scenario())


def test_dead_letter_replay_endpoint():
    async def scenario():
        scorer = FlakyScorer()
        gateway = await start_gateway(
            make_service(scorer, max_batch=2, max_retries=0)
        )
        try:
            async with GatewayClient(gateway.host, gateway.port) as client:
                await client.open_session("s1")
                status, body = await client.feed("s1", chunk(2))
                assert status == 500  # scorer down; windows dead-lettered
                status, body = await client.dead_letters()
                assert status == 200
                assert len(body["dead_letters"]) == 2
                for wire in body["dead_letters"]:
                    assert wire["status"] == "dead"
                    assert wire["attempts"] >= 1
                    assert "error" in wire
                scorer.healed = True
                status, body = await client.replay_dead_letters()
                assert status == 200
                assert body["replayed"] == 2
                assert len(body["predictions"]) == 2
                assert all(w["status"] == "scored" for w in body["predictions"])
        finally:
            await gateway.shutdown(2.0)
        assert gateway.stats.dead_letters_replayed == 2

    run(scenario())


def test_malformed_http_gets_400_and_server_survives():
    async def scenario():
        gateway = await start_gateway()
        try:
            reader, writer = await asyncio.open_connection(
                gateway.host, gateway.port
            )
            writer.write(b"NOT A REQUEST\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"400" in head.split(b"\r\n", 1)[0]
            writer.close()
            # the listener is still healthy
            async with GatewayClient(gateway.host, gateway.port) as client:
                assert (await client.healthz())[0] == 200
        finally:
            await gateway.shutdown(2.0)
        assert gateway.stats.protocol_errors >= 1

    run(scenario())


# ------------------------------------------------------------------- WebSocket
def test_websocket_stream_and_malformed_frame_survival():
    async def scenario():
        gateway = await start_gateway()
        try:
            ws = await GatewayWebSocket.connect(gateway.host, gateway.port)
            await ws.send({"op": "open", "session_id": "w1"})
            ack = await ws.recv()
            assert ack == {"type": "ack", "op": "open", "session_id": "w1"}
            await ws.send({"op": "feed", "session_id": "w1", "samples": chunk(4)})
            messages = [await ws.recv() for _ in range(5)]
            predictions = [m for m in messages if m["type"] == "prediction"]
            assert len(predictions) == 4
            assert all(p["status"] == "scored" for p in predictions)
            # malformed JSON in a valid frame: error message, socket stays up
            await ws.send_raw(
                encode_frame(TEXT, b"{not json", mask=bytes([9, 9, 9, 9]))
            )
            error = await ws.recv()
            assert error["type"] == "error"
            # an unmasked client frame is a protocol violation: server closes
            await ws.send_raw(encode_frame(TEXT, b"{}"))
            while True:
                message = await ws.recv()
                if message is None:
                    break
                assert message["type"] == "error"
            await ws.close()
            # and a fresh connection still works: one bad client, no crash
            fresh = await GatewayWebSocket.connect(gateway.host, gateway.port)
            await fresh.send({"op": "open", "session_id": "w2"})
            assert (await fresh.recv())["type"] == "ack"
            await fresh.close()
        finally:
            await gateway.shutdown(2.0)
        assert gateway.stats.protocol_errors >= 1

    run(scenario())


def test_websocket_disconnect_orphans_predictions_not_loses_them():
    async def scenario():
        gateway = await start_gateway()
        answered_before = 0
        try:
            ws = await GatewayWebSocket.connect(gateway.host, gateway.port)
            await ws.send({"op": "open", "session_id": "w1"})
            await ws.recv()
            # two windows buffered (max_batch=4: nothing released yet)
            await ws.send({"op": "feed", "session_id": "w1", "samples": chunk(2)})
            await ws.recv()  # feed ack
            answered_before = gateway.stats.windows_answered
            # tear the connection down without a close handshake
            ws._writer.close()
            await asyncio.sleep(0.1)
        finally:
            report = await gateway.shutdown(2.0)
        # drain flushed the two buffered windows; the owner is gone, so they
        # were answered into the orphan mailbox — accounted, not lost
        assert gateway.stats.windows_answered == answered_before + 2
        assert report["undelivered"] == 2

    run(scenario())


# ------------------------------------------------------------------- lifecycle
def test_graceful_drain_answers_every_accepted_window():
    async def scenario():
        gateway = await start_gateway(make_service(max_batch=16))
        async with GatewayClient(gateway.host, gateway.port) as client:
            await client.open_session("s1")
            status, body = await client.feed("s1", chunk(5))
            assert status == 200
            assert body["predictions"] == []  # buffered: batch not full
            report = await gateway.shutdown(2.0)
            assert report["clean"] is True
            assert report["flushed_predictions"] == 5
            # after the drain, the listener is gone: new connections refuse
            with pytest.raises((ConnectionError, asyncio.IncompleteReadError)):
                await client.request("GET", "/v1/sessions")
        service_stats = gateway.backend.stats()[0]
        assert service_stats["windows_submitted"] == 5
        assert service_stats["windows_scored"] == 5
        assert service_stats["pending"] == 0
        assert (
            gateway.stats.windows_answered + gateway.stats.windows_shed
            == service_stats["windows_scored"] + service_stats["windows_shed"]
        )

    run(scenario())


def test_readyz_reflects_draining_state():
    async def scenario():
        gateway = await start_gateway()
        try:
            async with GatewayClient(gateway.host, gateway.port) as client:
                status, body = await client.readyz()
                assert status == 200
                assert body["ready"] is True
                assert body["draining"] is False
                assert "brownout" in body and "breakers" in body
                gateway._draining = True  # simulate: SIGTERM received
                status, body = await client.readyz()
                assert status == 503
                assert body["draining"] is True
                gateway._draining = False
        finally:
            await gateway.shutdown(2.0)

    run(scenario())


def test_gateway_predictions_bit_identical_to_in_process():
    """The wire adds serialization, never numerics: scores match exactly."""

    async def scenario():
        streams = {
            f"s{i}": chunk(6, seed=100 + i) for i in range(3)
        }
        # in-process reference: same scorer, same batching policy
        reference = make_service()
        collected: dict[tuple, list] = {}
        for session_id in streams:
            reference.open_session(session_id)
        for session_id, samples in streams.items():
            for prediction in reference.push(session_id, np.asarray(samples)):
                collected[(prediction.session_id, prediction.window_index)] = [
                    float(v) for v in prediction.scores.tolist()
                ]
        for prediction in reference.drain():
            collected[(prediction.session_id, prediction.window_index)] = [
                float(v) for v in prediction.scores.tolist()
            ]

        gateway = await start_gateway(make_service())
        served: dict[tuple, list] = {}
        try:
            async with GatewayClient(gateway.host, gateway.port) as client:
                for session_id in streams:
                    await client.open_session(session_id)
                for session_id, samples in streams.items():
                    _, body = await client.feed(session_id, samples)
                    for wire in body["predictions"]:
                        served[(wire["session_id"], wire["window_index"])] = wire[
                            "scores"
                        ]
                for session_id in streams:
                    _, body = await client.score(session_id)
                    for wire in body["predictions"]:
                        served[(wire["session_id"], wire["window_index"])] = wire[
                            "scores"
                        ]
        finally:
            await gateway.shutdown(2.0)
        assert served.keys() == collected.keys()
        for key, scores in collected.items():
            assert served[key] == scores  # bit-identical: json floats round-trip

    run(scenario())


# ----------------------------------------------------------------------- chaos
def test_chaos_gateway_request_fault_yields_500_not_crash():
    async def scenario():
        gateway = await start_gateway()
        plan = FaultPlan(
            seed=7,
            faults=(FaultSpec(point="gateway.request", kind="exception", at=(1,)),),
        )
        try:
            with inject(plan):
                async with GatewayClient(gateway.host, gateway.port) as client:
                    status, body = await client.open_session("s1")
                    assert status == 500
                    assert "chaos" in body["error"]
                    # next hit doesn't match `at`: the edge recovered
                    status, _ = await client.open_session("s1")
                    assert status == 201
        finally:
            await gateway.shutdown(2.0)
        assert gateway.stats.handler_errors >= 1

    run(scenario())


def test_chaos_frame_corruption_is_rejected_without_crash():
    async def scenario():
        gateway = await start_gateway()
        plan = FaultPlan(
            seed=3,
            faults=(FaultSpec(point="gateway.frame", kind="corrupt", at=(1,)),),
        )
        try:
            with inject(plan):
                ws = await GatewayWebSocket.connect(gateway.host, gateway.port)
                await ws.send({"op": "open", "session_id": "w1"})
                first = await ws.recv()
                # the corrupted payload must surface as an explicit error
                # (or, improbably, still parse) — never kill the connection
                assert first["type"] in ("error", "ack")
                await ws.send({"op": "open", "session_id": "w2"})
                second = await ws.recv()
                assert second["type"] in ("ack", "error")
                await ws.close()
        finally:
            await gateway.shutdown(2.0)

    run(scenario())


def test_slow_loris_client_is_bounded_by_request_timeout():
    async def scenario():
        gateway = await start_gateway(request_timeout=1.0)
        try:
            client = GatewayClient(
                gateway.host, gateway.port, trickle=(8, 0.02)
            )
            # a trickled request that fits inside the budget still succeeds
            status, _ = await client.healthz()
            assert status == 200
            await client.close()
            # one that stalls forever is cut off with 408
            reader, writer = await asyncio.open_connection(
                gateway.host, gateway.port
            )
            writer.write(b"GET /healthz HT")  # ...and never finishes
            await writer.drain()
            head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=2.0)
            assert b"408" in head.split(b"\r\n", 1)[0]
            writer.close()
        finally:
            await gateway.shutdown(2.0)

    run(scenario())


def test_mid_stream_disconnect_does_not_leak_or_crash():
    async def scenario():
        gateway = await start_gateway()
        try:
            aborter = GatewayClient(gateway.host, gateway.port)
            await aborter.abort_mid_request()
            await asyncio.sleep(0.05)
            async with GatewayClient(gateway.host, gateway.port) as client:
                assert (await client.healthz())[0] == 200
        finally:
            await gateway.shutdown(2.0)
        assert gateway.stats.disconnects >= 1

    run(scenario())


def test_prediction_wire_is_strict_json():
    """Every wire dict the gateway emits survives allow_nan=False dumps."""
    scheduler = MicroBatchScheduler(
        StubScorer(), max_batch=8, max_wait=1e9, max_pending=2
    )
    rng = np.random.default_rng(0)
    for index in range(6):
        scheduler.submit("s", index, rng.normal(size=N_FEATURES))
    predictions = scheduler.flush()
    assert any(p.shed for p in predictions)
    for prediction in predictions:
        text = json.dumps(prediction.to_wire(), allow_nan=False)
        decoded = json.loads(text)
        assert decoded["status"] == prediction.status
