"""Thread-parallel scoring is bit-identical to serial at any thread count.

Determinism here is *structural*: the integer-domain kernels compute each
row's scores with exact arithmetic independent of every other row, so the
contract is not "close enough under threading" but literal bit equality for
any thread count, any row-block partition and any dim (including dims not
divisible by the 64-bit packing or the 8-element byte packing).  The suite
pins:

* hypothesis bit-identity of packed and fixed-point scoring at 1/2/4
  threads against the single-thread reference, over random batch sizes and
  deliberately ragged dims;
* ``REPRO_SCORE_THREADS`` / ``"auto"`` resolution mirroring
  ``REPRO_MAX_WORKERS``;
* the serial fallback paths — explicit single thread, empty batches, pool
  creation failure and pool submit failure — all of which must still score
  every row exactly once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.boosthd import BoostHD
from repro.engine import compile_model, resolve_score_threads, run_row_blocks
from repro.engine import threads as threads_module
from repro.engine.threads import SCORE_THREADS_ENV, row_blocks
from repro.hdc import OnlineHD

pytestmark = pytest.mark.cascade

THREAD_COUNTS = (1, 2, 4)


def _problem(seed=21, n_features=8):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((3, n_features)) * 2.5
    X = np.vstack([c + rng.standard_normal((30, n_features)) for c in centers])
    y = np.repeat(np.arange(3), 30)
    return X, y


@pytest.fixture(scope="module")
def fitted():
    X, y = _problem()
    return {
        # dims deliberately not divisible by 64 (packed words) or 8 (bytes):
        # 71-dim learner blocks stress the pad-bit path under every blocking.
        "boosthd": BoostHD(total_dim=426, n_learners=6, epochs=3, seed=0).fit(X, y),
        "onlinehd": OnlineHD(dim=333, epochs=3, seed=0).fit(X, y),
    }


# ------------------------------------------------------------ bit identity
@pytest.mark.parametrize("kind", ("boosthd", "onlinehd"))
@pytest.mark.parametrize("precision", ("bipolar-packed", "fixed16", "fixed8"))
@pytest.mark.parametrize("threads", THREAD_COUNTS)
def test_threaded_scoring_bit_identical(fitted, kind, precision, threads):
    X, _ = _problem()
    model = fitted[kind]
    serial = compile_model(model, dtype=np.float64, precision=precision,
                           score_threads=1)
    threaded = compile_model(model, dtype=np.float64, precision=precision,
                             score_threads=threads)
    encoded = serial.encode(X)
    np.testing.assert_array_equal(
        threaded.score_encoded(encoded), serial.score_encoded(encoded)
    )
    np.testing.assert_array_equal(threaded.predict(X), serial.predict(X))


@pytest.mark.parametrize("threads", (2, 4))
def test_threaded_vote_aggregation_bit_identical(threads):
    X, y = _problem(seed=22)
    model = BoostHD(
        total_dim=426, n_learners=6, epochs=3, seed=0, aggregation="vote"
    ).fit(X, y)
    for precision in ("bipolar-packed", "fixed16"):
        serial = compile_model(model, dtype=np.float64, precision=precision,
                               score_threads=1)
        threaded = compile_model(model, dtype=np.float64, precision=precision,
                                 score_threads=threads)
        encoded = serial.encode(X)
        np.testing.assert_array_equal(
            threaded.score_encoded(encoded), serial.score_encoded(encoded)
        )


@settings(max_examples=20, deadline=None)
@given(
    n_rows=st.integers(1, 23),
    threads=st.integers(1, 8),
)
def test_random_shapes_bit_identical(fitted, n_rows, threads):
    """Batches smaller/larger than the thread count, odd splits, one row."""
    rng = np.random.default_rng(n_rows * 31 + threads)
    X = rng.standard_normal((n_rows, 8))
    model = fitted["boosthd"]
    serial = compile_model(model, dtype=np.float64, precision="bipolar-packed",
                           score_threads=1)
    threaded = compile_model(model, dtype=np.float64, precision="bipolar-packed",
                             score_threads=threads)
    encoded = serial.encode(X)
    np.testing.assert_array_equal(
        threaded.score_encoded(encoded), serial.score_encoded(encoded)
    )


def test_threaded_cascade_bit_identical(fitted):
    X, _ = _problem()
    model = fitted["boosthd"]
    serial = compile_model(model, dtype=np.float64, precision="cascade-fixed16",
                           threshold=0.05, score_threads=1)
    threaded = compile_model(model, dtype=np.float64, precision="cascade-fixed16",
                             threshold=0.05, score_threads=4)
    assert threaded.first.score_threads == 4
    assert threaded.second.score_threads == 4
    np.testing.assert_array_equal(
        threaded.decision_function(X), serial.decision_function(X)
    )


# ------------------------------------------------------------- resolution
def test_resolve_score_threads_mirrors_max_workers(monkeypatch):
    monkeypatch.delenv(SCORE_THREADS_ENV, raising=False)
    assert resolve_score_threads(None) == 1      # unset env -> serial
    assert resolve_score_threads(3) == 3
    assert resolve_score_threads("5") == 5
    assert resolve_score_threads(0) == 1         # clamped
    assert resolve_score_threads(-2) == 1
    assert resolve_score_threads("auto") >= 1
    monkeypatch.setenv(SCORE_THREADS_ENV, "6")
    assert resolve_score_threads(None) == 6
    assert resolve_score_threads(2) == 2         # explicit beats env
    monkeypatch.setenv(SCORE_THREADS_ENV, "auto")
    assert resolve_score_threads(None) == threads_module.available_cpus()
    monkeypatch.setenv(SCORE_THREADS_ENV, "  ")
    assert resolve_score_threads(None) == 1      # blank -> serial
    with pytest.raises(ValueError):
        resolve_score_threads("not-a-number")


def test_env_controls_engine_scoring(fitted, monkeypatch):
    """score_threads=None engines re-read the env on every scoring call."""
    X, _ = _problem()
    model = fitted["boosthd"]
    engine = compile_model(model, dtype=np.float64, precision="bipolar-packed")
    assert engine.score_threads is None
    monkeypatch.setenv(SCORE_THREADS_ENV, "1")
    serial_scores = engine.decision_function(X)
    monkeypatch.setenv(SCORE_THREADS_ENV, "4")
    np.testing.assert_array_equal(engine.decision_function(X), serial_scores)


# -------------------------------------------------------------- row blocks
@settings(max_examples=50, deadline=None)
@given(n_rows=st.integers(0, 200), n_blocks=st.integers(1, 32))
def test_row_blocks_partition_every_row_exactly_once(n_rows, n_blocks):
    blocks = row_blocks(n_rows, n_blocks)
    assert len(blocks) == (min(n_blocks, n_rows) if n_rows else 0)
    covered = np.concatenate(
        [np.arange(b.start, b.stop) for b in blocks]
    ) if blocks else np.empty(0, dtype=int)
    np.testing.assert_array_equal(covered, np.arange(n_rows))
    sizes = [b.stop - b.start for b in blocks]
    if sizes:
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)


def test_row_blocks_rejects_negative_rows():
    with pytest.raises(ValueError, match="n_rows"):
        row_blocks(-1, 2)


# ---------------------------------------------------------- fallback paths
def _record_kernel(n_rows):
    seen = []

    def kernel(rows):
        seen.append((rows.start, rows.stop))

    return kernel, seen


def test_run_row_blocks_serial_when_one_thread():
    kernel, seen = _record_kernel(10)
    assert run_row_blocks(kernel, 10, threads=1) == 1
    assert seen == [(0, 10)]


def test_run_row_blocks_empty_batch_never_calls_kernel():
    kernel, seen = _record_kernel(0)
    assert run_row_blocks(kernel, 0, threads=4) == 1
    assert seen == []


def test_run_row_blocks_caps_threads_at_rows():
    kernel, seen = _record_kernel(3)
    assert run_row_blocks(kernel, 3, threads=16) == 3
    assert sorted(seen) == [(0, 1), (1, 2), (2, 3)]


def test_run_row_blocks_serial_fallback_when_pool_unavailable(monkeypatch):
    """Pool creation failure degrades to serial — same rows, same order."""
    monkeypatch.setattr(threads_module, "_score_pool", lambda threads: None)
    kernel, seen = _record_kernel(10)
    assert run_row_blocks(kernel, 10, threads=4) == 1
    assert seen == [(0, 3), (3, 6), (6, 8), (8, 10)]


def test_run_row_blocks_serial_fallback_on_submit_failure(monkeypatch):
    """A pool that refuses work mid-submission still runs every block once."""

    class RefusingPool:
        def __init__(self):
            self.accepted = 0

        def submit(self, kernel, rows):
            if self.accepted >= 2:
                raise RuntimeError("cannot schedule new futures")
            self.accepted += 1
            from concurrent.futures import Future

            future = Future()
            kernel(rows)
            future.set_result(None)
            return future

    monkeypatch.setattr(
        threads_module, "_score_pool", lambda threads: RefusingPool()
    )
    kernel, seen = _record_kernel(12)
    assert run_row_blocks(kernel, 12, threads=4) == 1
    assert sorted(seen) == [(0, 3), (3, 6), (6, 9), (9, 12)]


def test_pool_failure_scores_bit_identically(fitted, monkeypatch):
    X, _ = _problem()
    model = fitted["boosthd"]
    engine = compile_model(model, dtype=np.float64, precision="fixed16",
                           score_threads=4)
    encoded = engine.encode(X)
    expected = engine.score_encoded(encoded)
    monkeypatch.setattr(threads_module, "_score_pool", lambda threads: None)
    np.testing.assert_array_equal(engine.score_encoded(encoded), expected)
