"""Unit tests for the linear SVM and MLP (DNN) baselines."""

import numpy as np
import pytest

from repro.baselines import LinearSVM, MLPClassifier


class TestLinearSVM:
    def test_separates_linear_problem(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 0.5, (50, 3)), rng.normal(2, 0.5, (50, 3))])
        y = np.repeat([0, 1], 50)
        svm = LinearSVM(regularization=1e-3, epochs=20, seed=0).fit(X, y)
        assert svm.score(X, y) > 0.95

    def test_multiclass_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        svm = LinearSVM(regularization=1e-3, epochs=30, seed=0).fit(X_train, y_train)
        assert svm.score(X_test, y_test) > 0.8

    def test_decision_function_shape(self, blobs):
        X, y = blobs
        svm = LinearSVM(epochs=5, seed=0).fit(X, y)
        assert svm.decision_function(X).shape == (len(X), 3)

    def test_weight_matrix_shape_with_intercept(self, blobs):
        X, y = blobs
        svm = LinearSVM(epochs=5, fit_intercept=True, seed=0).fit(X, y)
        assert svm.weights_.shape == (3, X.shape[1] + 1)

    def test_weight_matrix_shape_without_intercept(self, blobs):
        X, y = blobs
        svm = LinearSVM(epochs=5, fit_intercept=False, seed=0).fit(X, y)
        assert svm.weights_.shape == (3, X.shape[1])

    def test_deterministic_with_seed(self, blobs):
        X, y = blobs
        first = LinearSVM(epochs=5, seed=1).fit(X, y)
        second = LinearSVM(epochs=5, seed=1).fit(X, y)
        np.testing.assert_allclose(first.weights_, second.weights_)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            LinearSVM(regularization=0.0)
        with pytest.raises(ValueError):
            LinearSVM(epochs=0)
        with pytest.raises(ValueError):
            LinearSVM(batch_size=0)


class TestMLPClassifier:
    def test_fits_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        mlp = MLPClassifier(hidden_layers=(32, 16), epochs=40, dropout=0.0, seed=0)
        mlp.fit(X_train, y_train)
        assert mlp.score(X_test, y_test) > 0.85

    def test_layer_shapes_match_architecture(self, blobs):
        X, y = blobs
        mlp = MLPClassifier(hidden_layers=(16, 8), epochs=2, seed=0).fit(X, y)
        shapes = [weight.shape for weight in mlp.weights_]
        assert shapes == [(X.shape[1], 16), (16, 8), (8, 3)]

    def test_dropout_path_trains(self, blobs):
        X, y = blobs
        mlp = MLPClassifier(hidden_layers=(16,), lr=1e-2, epochs=40, dropout=0.3, seed=0).fit(X, y)
        assert mlp.score(X, y) > 0.6

    def test_predict_proba_normalised(self, blobs):
        X, y = blobs
        mlp = MLPClassifier(hidden_layers=(16,), epochs=5, seed=0).fit(X, y)
        probabilities = mlp.predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_deterministic_with_seed(self, blobs):
        X, y = blobs
        first = MLPClassifier(hidden_layers=(16,), epochs=3, seed=7).fit(X, y)
        second = MLPClassifier(hidden_layers=(16,), epochs=3, seed=7).fit(X, y)
        np.testing.assert_allclose(first.weights_[0], second.weights_[0])

    def test_training_reduces_error(self, blobs):
        X, y = blobs
        untrained = MLPClassifier(hidden_layers=(32,), epochs=1, dropout=0.0, seed=0).fit(X, y)
        trained = MLPClassifier(hidden_layers=(32,), epochs=60, dropout=0.0, seed=0).fit(X, y)
        assert trained.score(X, y) >= untrained.score(X, y)

    def test_weight_decay_path(self, blobs):
        X, y = blobs
        mlp = MLPClassifier(hidden_layers=(16,), epochs=5, weight_decay=1e-3, seed=0).fit(X, y)
        assert np.all(np.isfinite(mlp.weights_[0]))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            MLPClassifier(lr=0.0)
        with pytest.raises(ValueError):
            MLPClassifier(epochs=0)
        with pytest.raises(ValueError):
            MLPClassifier(dropout=1.0)
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layers=(0,))
