"""Unit tests for dataset generation and the TabularDataset container."""

import numpy as np
import pytest

from repro.data import (
    SubjectRecord,
    load_nurse_stress,
    load_stress_predict,
    load_wesad,
    make_wesad_subjects,
)


class TestTabularDataset:
    def test_shapes_consistent(self, mini_wesad):
        dataset = mini_wesad
        assert dataset.X.shape == (dataset.n_samples, dataset.n_features)
        assert dataset.y.shape == (dataset.n_samples,)
        assert dataset.subjects.shape == (dataset.n_samples,)

    def test_three_classes(self, mini_wesad):
        assert mini_wesad.n_classes == 3
        assert set(np.unique(mini_wesad.y)) == {0, 1, 2}

    def test_class_counts_balanced(self, mini_wesad):
        counts = mini_wesad.class_counts()
        assert len(set(counts.values())) == 1

    def test_subject_records_cover_subject_ids(self, mini_wesad):
        assert set(mini_wesad.subject_ids) == set(mini_wesad.subject_records.keys())

    def test_features_standardised(self, mini_wesad):
        np.testing.assert_allclose(mini_wesad.X.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(mini_wesad.X.std(axis=0), 1.0, atol=1e-6)

    def test_split_has_no_subject_leakage(self, mini_wesad):
        X_train, X_test, y_train, y_test = mini_wesad.split(test_fraction=0.3, rng=0)
        assert len(X_train) + len(X_test) == mini_wesad.n_samples
        train_rows = {tuple(np.round(row, 6)) for row in X_train}
        test_rows = {tuple(np.round(row, 6)) for row in X_test}
        assert not train_rows & test_rows

    def test_subset_by_mask(self, mini_wesad):
        mask = mini_wesad.y == 0
        subset = mini_wesad.subset(mask, name="class-0 only")
        assert subset.n_samples == int(mask.sum())
        assert set(np.unique(subset.y)) == {0}
        assert subset.name == "class-0 only"

    def test_subset_wrong_mask_shape_raises(self, mini_wesad):
        with pytest.raises(ValueError):
            mini_wesad.subset(np.ones(3, dtype=bool))

    def test_filter_subjects(self, mini_wesad):
        some_subject = int(mini_wesad.subject_ids[0])
        filtered = mini_wesad.filter_subjects(lambda record: record.subject_id == some_subject)
        assert set(np.unique(filtered.subjects)) == {some_subject}

    def test_filter_subjects_empty_raises(self, mini_wesad):
        with pytest.raises(ValueError):
            mini_wesad.filter_subjects(lambda record: record.age > 1000)

    def test_feature_names_length(self, mini_wesad):
        assert len(mini_wesad.feature_names) == mini_wesad.n_features


class TestSubjectRecord:
    def test_matches_exact_attribute(self):
        record = SubjectRecord(subject_id=1, hand="left", gender="female", age=24, height=168)
        assert record.matches(hand="left", gender="female")
        assert not record.matches(hand="right")

    def test_matches_callable_predicate(self):
        record = SubjectRecord(subject_id=2, age=31)
        assert record.matches(age=lambda value: value >= 30)
        assert not record.matches(age=lambda value: value <= 25)


class TestWesadGenerator:
    def test_requested_subject_count(self):
        assert len(make_wesad_subjects(5, rng=0)) == 5

    def test_subjects_reproducible(self):
        first = make_wesad_subjects(4, rng=3)
        second = make_wesad_subjects(4, rng=3)
        assert [record.age for record in first] == [record.age for record in second]

    def test_demographics_in_plausible_ranges(self):
        for record in make_wesad_subjects(10, rng=0):
            assert 21 <= record.age <= 40
            assert 150 <= record.height <= 200
            assert record.hand in ("left", "right")
            assert record.gender in ("male", "female")

    def test_too_few_subjects_raises(self):
        with pytest.raises(ValueError):
            make_wesad_subjects(1)

    def test_dataset_reproducible_with_seed(self):
        first = load_wesad(n_subjects=3, windows_per_state=3, window_seconds=6, seed=5)
        second = load_wesad(n_subjects=3, windows_per_state=3, window_seconds=6, seed=5)
        np.testing.assert_allclose(first.X, second.X)
        np.testing.assert_array_equal(first.y, second.y)

    def test_classes_are_learnable(self, mini_wesad):
        # A depth-limited tree should comfortably beat chance on the
        # synthetic WESAD features, confirming the class signal is real.
        from repro.baselines import DecisionTreeClassifier

        X_train, X_test, y_train, y_test = mini_wesad.split(test_fraction=0.3, rng=1)
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(X_train, y_train)
        assert tree.score(X_test, y_test) > 0.6


class TestOtherDatasets:
    @pytest.mark.parametrize(
        "loader, expected_name",
        [
            (load_nurse_stress, "Nurse Stress (synthetic)"),
            (load_stress_predict, "Stress-Predict (synthetic)"),
        ],
    )
    def test_small_generation(self, loader, expected_name):
        dataset = loader(n_subjects=3, windows_per_state=3, window_seconds=6)
        assert dataset.name == expected_name
        assert dataset.n_classes == 3
        assert dataset.n_samples == 3 * 3 * 3
        assert dataset.class_names == ["good", "common", "stress"]

    def test_nurse_dataset_is_harder_than_wesad(self):
        # The nurse field study uses much larger class overlap, so its
        # class-separability (between-class spread over within-class spread
        # in feature space) must be clearly lower than WESAD's.
        def separability(dataset) -> float:
            class_means = np.vstack(
                [dataset.X[dataset.y == label].mean(axis=0) for label in range(dataset.n_classes)]
            )
            between = np.linalg.norm(class_means - class_means.mean(axis=0), axis=1).mean()
            within = np.mean(
                [
                    dataset.X[dataset.y == label].std(axis=0).mean()
                    for label in range(dataset.n_classes)
                ]
            )
            return between / within

        wesad = load_wesad(n_subjects=4, windows_per_state=6, window_seconds=8, seed=0)
        nurse = load_nurse_stress(n_subjects=6, windows_per_state=5, window_seconds=8, seed=0)
        assert separability(nurse) < separability(wesad)
