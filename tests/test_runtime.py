"""Tests for the parallel, resumable experiment runtime (:mod:`repro.runtime`).

The load-bearing guarantees:

* **Equivalence** — ``run_suite`` produces bit-identical accuracies and seeds
  at 1, 2 and 4 workers, with legacy and derived seed roots, and with both
  data sources (shipped splits and per-worker dataset loading).
* **Resume** — an interrupted suite checkpoints every completed cell into the
  :class:`~repro.runtime.store.ArtifactStore` and a rerun replays them
  without recomputation, landing on the same numbers.
* **Store integrity** — artifacts round-trip bit-exactly; corruption, layout
  changes and key collisions all read as cache misses, never as wrong data.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import run_suite
from repro.runtime import (
    ArtifactStore,
    CellResult,
    CellTask,
    GridPlan,
    LoaderSource,
    ParallelExecutor,
    RunReport,
    SplitSource,
    canonical_spec,
    cell_seed,
    dataset_seeds,
    derive_seed,
    merge_reports,
    parallel_map,
    resolve_max_workers,
    spec_key,
)
from repro.runtime.report import CellStats

pytestmark = pytest.mark.runtime

SUITE_MODELS = ("OnlineHD", "BoostHD")


def suite_accuracies(suite):
    return {
        (dataset, model): suite.results[dataset][model].accuracies
        for dataset in suite.datasets()
        for model in suite.models()
    }


def suite_seeds(suite):
    return {
        (dataset, model): suite.results[dataset][model].seeds
        for dataset in suite.datasets()
        for model in suite.models()
    }


def assert_suites_identical(first, second):
    assert first.datasets() == second.datasets()
    assert first.models() == second.models()
    first_acc, second_acc = suite_accuracies(first), suite_accuracies(second)
    for key in first_acc:
        assert np.array_equal(first_acc[key], second_acc[key]), key
    assert suite_seeds(first) == suite_seeds(second)


# ---------------------------------------------------------------------------
# Seeding
# ---------------------------------------------------------------------------


class TestSeeding:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(0, 1, 2, 3) == derive_seed(0, 1, 2, 3)

    def test_derive_seed_depends_on_every_coordinate(self):
        base = derive_seed(7, 1, 2, 3)
        assert derive_seed(8, 1, 2, 3) != base
        assert derive_seed(7, 0, 2, 3) != base
        assert derive_seed(7, 1, 0, 3) != base
        assert derive_seed(7, 1, 2, 0) != base

    def test_derive_seed_fits_in_int64(self):
        for path in [(0,), (1, 2), (3, 4, 5)]:
            seed = derive_seed(123, *path)
            assert 0 <= seed < 2**63

    def test_legacy_cell_seed_is_run_index(self):
        assert cell_seed(None, "WESAD", "BoostHD", 4) == 4

    def test_derived_cell_seeds_distinct_across_grid(self):
        datasets = ("WESAD", "Nurse Stress Dataset", "Stress-Predict Dataset")
        models = ("AdaBoost", "RF", "XGBoost", "SVM", "DNN", "OnlineHD", "BoostHD")
        seeds = {
            cell_seed(11, d, m, r) for d in datasets for m in models for r in range(5)
        }
        assert len(seeds) == 3 * 7 * 5

    def test_cell_seed_is_subset_invariant(self, tiny_scale):
        """A cell draws the same seed however the suite around it is shaped."""
        full = GridPlan.for_suite(("A", "B"), ("m1", "m2"), 2, scale=tiny_scale, seed=9)
        only_b = GridPlan.for_suite(("B",), ("m2", "m1"), 2, scale=tiny_scale, seed=9)
        full_seeds = {
            (c.dataset, c.model, c.run_index): c.seed for c in full
        }
        for cell in only_b:
            assert cell.seed == full_seeds[(cell.dataset, cell.model, cell.run_index)]

    def test_legacy_dataset_seeds_are_canonical_positions(self):
        canonical = ("WESAD", "Nurse Stress Dataset", "Stress-Predict Dataset")
        seeds = dataset_seeds(canonical, canonical, None)
        assert seeds == {canonical[0]: 0, canonical[1]: 1, canonical[2]: 2}
        # A subset keeps its canonical position, not its enumeration index.
        assert dataset_seeds(canonical[2:], canonical, None) == {canonical[2]: 2}

    def test_derived_dataset_seeds_differ_per_dataset(self):
        canonical = ("A", "B", "C")
        seeds = dataset_seeds(canonical, canonical, 3)
        assert len(set(seeds.values())) == 3

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            dataset_seeds(["nope"], ("A", "B"), 0)


# ---------------------------------------------------------------------------
# GridPlan
# ---------------------------------------------------------------------------


class TestGridPlan:
    def test_expands_full_grid_in_order(self, tiny_scale):
        plan = GridPlan.for_suite(("A", "B"), ("m1", "m2"), 3, scale=tiny_scale)
        assert len(plan) == 2 * 2 * 3
        first = plan.cells[0]
        assert (first.dataset, first.model, first.run_index) == ("A", "m1", 0)
        # datasets vary slowest, runs fastest
        assert [c.run_index for c in plan.cells[:3]] == [0, 1, 2]
        assert plan.cells[6].dataset == "B"

    def test_seeds_match_derivation(self, tiny_scale):
        plan = GridPlan.for_suite(("A",), ("m1", "m2"), 2, scale=tiny_scale, seed=9)
        for cell in plan:
            assert cell.seed == cell_seed(9, cell.dataset, cell.model, cell.run_index)

    def test_subset_and_head_preserve_seeds(self, tiny_scale):
        plan = GridPlan.for_suite(("A", "B"), ("m1",), 2, scale=tiny_scale, seed=4)
        subset = plan.subset(lambda cell: cell.dataset == "B")
        assert all(cell.dataset == "B" for cell in subset)
        full_seeds = {(c.dataset, c.run_index): c.seed for c in plan}
        for cell in subset:
            assert cell.seed == full_seeds[(cell.dataset, cell.run_index)]
        assert plan.head(3).cells == plan.cells[:3]

    def test_invalid_plans_raise(self, tiny_scale):
        with pytest.raises(ValueError):
            GridPlan.for_suite(("A",), ("m",), 0, scale=tiny_scale)
        with pytest.raises(ValueError):
            GridPlan.for_suite((), ("m",), 1, scale=tiny_scale)
        with pytest.raises(ValueError):
            GridPlan.for_suite(("A",), (), 1, scale=tiny_scale)

    def test_cells_for_pair(self, tiny_scale):
        plan = GridPlan.for_suite(("A", "B"), ("m1", "m2"), 2, scale=tiny_scale)
        cells = plan.cells_for("B", "m2")
        assert [c.run_index for c in cells] == [0, 1]
        assert all(c.dataset == "B" and c.model == "m2" for c in cells)


# ---------------------------------------------------------------------------
# Equivalence: serial vs parallel, legacy and derived seeds, both sources
# ---------------------------------------------------------------------------


class TestEquivalence:
    @pytest.fixture(scope="class")
    def serial_suite(self, suite_datasets, tiny_scale):
        return run_suite(
            suite_datasets, SUITE_MODELS, scale=tiny_scale, n_runs=3, max_workers=1
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_does_not_change_results(
        self, suite_datasets, tiny_scale, serial_suite, workers
    ):
        parallel = run_suite(
            suite_datasets,
            SUITE_MODELS,
            scale=tiny_scale,
            n_runs=3,
            max_workers=workers,
        )
        assert_suites_identical(serial_suite, parallel)
        assert parallel.report.n_cells == len(suite_datasets) * len(SUITE_MODELS) * 3

    def test_legacy_seeds_match_run_indices(self, serial_suite):
        for seeds in suite_seeds(serial_suite).values():
            assert seeds == (0, 1, 2)

    def test_derived_root_seed_equivalence(self, suite_datasets, tiny_scale):
        serial = run_suite(
            suite_datasets, SUITE_MODELS, scale=tiny_scale, n_runs=2, seed=123
        )
        parallel = run_suite(
            suite_datasets,
            SUITE_MODELS,
            scale=tiny_scale,
            n_runs=2,
            seed=123,
            max_workers=2,
        )
        assert_suites_identical(serial, parallel)
        # Derived seeds are not the run indices and are distinct per cell.
        all_seeds = [s for seeds in suite_seeds(serial).values() for s in seeds]
        assert len(set(all_seeds)) == len(all_seeds)

    def test_different_roots_give_different_seeds(self, suite_datasets, tiny_scale):
        first = run_suite(suite_datasets, ("OnlineHD",), scale=tiny_scale, n_runs=2, seed=1)
        second = run_suite(suite_datasets, ("OnlineHD",), scale=tiny_scale, n_runs=2, seed=2)
        assert suite_seeds(first) != suite_seeds(second)

    @pytest.mark.slow
    def test_loader_source_equivalence(self, tiny_scale):
        """datasets=None: workers regenerate datasets locally from seeds."""
        serial = run_suite(None, SUITE_MODELS, scale=tiny_scale, n_runs=2, seed=7)
        parallel = run_suite(
            None, SUITE_MODELS, scale=tiny_scale, n_runs=2, seed=7, max_workers=2
        )
        assert_suites_identical(serial, parallel)

    def test_report_reflects_workers(self, suite_datasets, tiny_scale):
        suite = run_suite(
            suite_datasets, ("OnlineHD",), scale=tiny_scale, n_runs=4, max_workers=2
        )
        assert suite.report.max_workers == 2
        assert suite.report.n_computed == suite.report.n_cells
        assert suite.report.busy_seconds > 0
        assert 0 < suite.report.utilization
        assert suite.report.n_workers_used <= 2


# ---------------------------------------------------------------------------
# Resume after interrupt
# ---------------------------------------------------------------------------


class _Bomb(RuntimeError):
    pass


class TestResume:
    def test_serial_interrupt_then_resume(
        self, suite_datasets, tiny_scale, tmp_path, monkeypatch
    ):
        """A crash mid-suite loses only the in-flight cell; resume replays the rest."""
        import repro.runtime.cells as cells_module

        baseline = run_suite(suite_datasets, SUITE_MODELS, scale=tiny_scale, n_runs=2)
        total = baseline.report.n_cells

        real_execute = cells_module.execute_cell
        calls = {"n": 0}

        def dying_execute(*args, **kwargs):
            if calls["n"] >= 3:
                raise _Bomb("simulated crash")
            calls["n"] += 1
            return real_execute(*args, **kwargs)

        # max_workers=1 keeps the monkeypatched crash in-process: a pool
        # worker would fork its own copy of the call counter.
        monkeypatch.setattr(cells_module, "execute_cell", dying_execute)
        store = ArtifactStore(tmp_path)
        with pytest.raises(_Bomb):
            run_suite(
                suite_datasets,
                SUITE_MODELS,
                scale=tiny_scale,
                n_runs=2,
                store=store,
                max_workers=1,
            )
        monkeypatch.setattr(cells_module, "execute_cell", real_execute)
        assert len(store) == 3  # every completed cell was checkpointed

        resumed = run_suite(
            suite_datasets, SUITE_MODELS, scale=tiny_scale, n_runs=2, store=store
        )
        assert resumed.report.n_cached == 3
        assert resumed.report.n_computed == total - 3
        assert_suites_identical(baseline, resumed)

    def test_parallel_resume_skips_completed_cells(
        self, suite_datasets, tiny_scale, tmp_path
    ):
        """Cells computed by an earlier partial run are not recomputed."""
        store = ArtifactStore(tmp_path)
        plan = GridPlan.for_suite(
            tuple(suite_datasets), SUITE_MODELS, 2, scale=tiny_scale
        )
        splits = SplitSource(
            splits={
                name: dataset.split(test_fraction=0.3, rng=7)
                for name, dataset in suite_datasets.items()
            }
        )
        partial_plan = plan.head(5)
        ParallelExecutor(max_workers=1).run(partial_plan, splits, store=store)
        assert len(store) == 5

        results, report = ParallelExecutor(max_workers=2).run(plan, splits, store=store)
        assert report.n_cached == 5
        assert report.n_computed == len(plan) - 5
        assert [r.cached for r in results[:5]] == [True] * 5

    def test_store_hits_require_identical_spec(
        self, suite_datasets, tiny_scale, tmp_path
    ):
        store = ArtifactStore(tmp_path)
        run_suite(suite_datasets, ("OnlineHD",), scale=tiny_scale, n_runs=2, store=store)
        # Different root seed => different cells => no replays.
        other = run_suite(
            suite_datasets, ("OnlineHD",), scale=tiny_scale, n_runs=2, seed=5, store=store
        )
        assert other.report.n_cached == 0


# ---------------------------------------------------------------------------
# ArtifactStore round-trip and integrity
# ---------------------------------------------------------------------------


def make_result(**overrides) -> CellResult:
    defaults = dict(
        dataset="WESAD",
        model="BoostHD",
        run_index=1,
        seed=42,
        accuracy=0.875,
        train_seconds=0.25,
        inference_seconds_per_query=1.5e-5,
        engine_seconds_per_query=0.5e-5,
        engine_warm_seconds_per_query=0.25e-5,
        cache_hits=10,
        cache_requests=12,
        wall_seconds=0.3,
        worker=1234,
    )
    defaults.update(overrides)
    return CellResult(**defaults)


SPEC = {"version": 1, "dataset": "WESAD", "model": "BoostHD", "run_index": 1, "seed": 42}


class TestArtifactStore:
    def test_round_trip_is_bit_exact(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = make_result()
        key = store.save(SPEC, result)
        assert key == spec_key(SPEC)
        assert key in store and len(store) == 1
        loaded = store.load(SPEC)
        assert loaded is not None and loaded.cached
        for field in (
            "dataset",
            "model",
            "run_index",
            "seed",
            "accuracy",
            "train_seconds",
            "inference_seconds_per_query",
            "engine_seconds_per_query",
            "engine_warm_seconds_per_query",
            "cache_hits",
            "cache_requests",
            "wall_seconds",
            "worker",
        ):
            assert getattr(loaded, field) == getattr(result, field), field

    def test_none_engine_fields_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(SPEC, make_result(engine_seconds_per_query=None,
                                     engine_warm_seconds_per_query=None))
        loaded = store.load(SPEC)
        assert loaded.engine_seconds_per_query is None
        assert loaded.engine_warm_seconds_per_query is None

    def test_missing_spec_is_a_miss(self, tmp_path):
        assert ArtifactStore(tmp_path).load(SPEC) is None

    def test_corrupted_payload_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save(SPEC, make_result())
        npz_path = tmp_path / f"{key}.npz"
        payload = bytearray(npz_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        npz_path.write_bytes(bytes(payload))
        assert store.load(SPEC) is None

    def test_hash_collision_reads_as_miss(self, tmp_path):
        """Two specs landing on one key must never replay each other.

        Real SHA-256 collisions are unconstructible, so simulate one: tamper
        with the manifest so its recorded spec differs from the requested
        one while the file still sits under the requested key.
        """
        store = ArtifactStore(tmp_path)
        key = store.save(SPEC, make_result())
        manifest_path = tmp_path / f"{key}.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["spec"] = {**SPEC, "seed": 43}  # the "colliding" spec
        manifest_path.write_text(json.dumps(manifest))
        assert store.load(SPEC) is None

    def test_layout_version_mismatch_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save(SPEC, make_result())
        manifest_path = tmp_path / f"{key}.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["store_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        assert store.load(SPEC) is None

    def test_clear_empties_the_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(SPEC, make_result())
        store.save({**SPEC, "seed": 43}, make_result(seed=43))
        assert store.clear() == 2
        assert len(store) == 0 and store.load(SPEC) is None

    def test_spec_key_is_order_insensitive(self):
        assert spec_key({"a": 1, "b": 2}) == spec_key({"b": 2, "a": 1})
        assert canonical_spec({"b": 2, "a": 1}) == '{"a":1,"b":2}'


# --------------------------------------------------------------- hypothesis


spec_values = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
specs = st.dictionaries(st.text(min_size=1, max_size=10), spec_values, max_size=6)


@pytest.mark.slow
@given(first=specs, second=specs)
@settings(max_examples=60, deadline=None)
def test_property_distinct_specs_get_distinct_keys(first, second):
    if canonical_spec(first) == canonical_spec(second):
        assert spec_key(first) == spec_key(second)
    else:
        assert spec_key(first) != spec_key(second)


@pytest.mark.slow
@given(
    accuracy=st.floats(0.0, 1.0, allow_nan=False),
    train_seconds=st.floats(0.0, 1e6, allow_nan=False),
    inference=st.floats(0.0, 1.0, allow_nan=False),
    engine=st.one_of(st.none(), st.floats(0.0, 1.0, allow_nan=False)),
    run_index=st.integers(0, 1000),
    seed=st.integers(0, 2**63 - 1),
    hits=st.integers(0, 10**9),
)
@settings(max_examples=40, deadline=None)
def test_property_store_round_trip_bit_exact(
    tmp_path_factory, accuracy, train_seconds, inference, engine, run_index, seed, hits
):
    store = ArtifactStore(tmp_path_factory.mktemp("store"))
    result = make_result(
        accuracy=accuracy,
        train_seconds=train_seconds,
        inference_seconds_per_query=inference,
        engine_seconds_per_query=engine,
        run_index=run_index,
        seed=seed,
        cache_hits=hits,
    )
    spec = {"seed": seed, "run_index": run_index}
    store.save(spec, result)
    loaded = store.load(spec)
    assert loaded.accuracy == accuracy
    assert loaded.train_seconds == train_seconds
    assert loaded.inference_seconds_per_query == inference
    assert loaded.engine_seconds_per_query == engine
    assert loaded.run_index == run_index and loaded.seed == seed
    assert loaded.cache_hits == hits


# ---------------------------------------------------------------------------
# parallel_map, worker resolution, reports
# ---------------------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_and_parallel_agree_in_order(self):
        items = list(range(20))
        assert parallel_map(_square, items) == [x * x for x in items]
        assert parallel_map(_square, items, max_workers=2) == [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(_square, [], max_workers=4) == []

    def test_serial_fallback_restores_previous_shared(self):
        from repro.runtime.executor import _set_shared, get_shared

        _set_shared("outer")
        try:
            parallel_map(_square, [1, 2], shared="inner")
            assert get_shared() == "outer"
        finally:
            _set_shared(None)

    def test_resolve_max_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert resolve_max_workers(None) == 1
        assert resolve_max_workers(0) == 1
        assert resolve_max_workers(3) == 3
        assert resolve_max_workers("auto") >= 1
        monkeypatch.setenv("REPRO_MAX_WORKERS", "5")
        assert resolve_max_workers(None) == 5


class TestRunReport:
    def make_report(self):
        cells = (
            CellStats("A", "m", 0, wall_seconds=1.0, worker=10, cached=False),
            CellStats("A", "m", 1, wall_seconds=3.0, worker=11, cached=False),
            CellStats("A", "m", 2, wall_seconds=9.9, worker=12, cached=True),
        )
        return RunReport(total_seconds=2.0, max_workers=2, cells=cells)

    def test_statistics(self):
        report = self.make_report()
        assert report.n_cells == 3
        assert report.n_cached == 1 and report.n_computed == 2
        assert report.busy_seconds == pytest.approx(4.0)
        assert report.utilization == pytest.approx(4.0 / (2.0 * 2))
        assert report.n_workers_used == 2
        assert [c.run_index for c in report.slowest(1)] == [1]
        assert report.per_worker_seconds() == {10: 1.0, 11: 3.0}

    def test_summary_text(self):
        text = self.make_report().summary()
        assert "3 cells" in text and "1 cached" in text and "A/m#1" in text

    def test_merge_reports(self):
        merged = merge_reports([self.make_report(), self.make_report()])
        assert merged.n_cells == 6
        assert merged.total_seconds == pytest.approx(4.0)
        assert merge_reports([]).n_cells == 0


class TestCellTask:
    def test_label(self):
        task = CellTask("WESAD", "BoostHD", 2, seed=9, dataset_index=0, model_index=1)
        assert task.label == "WESAD/BoostHD#2"


class TestLoaderSource:
    def test_fingerprint_distinguishes_seeds(self, tiny_scale):
        canonical = ("WESAD", "Nurse Stress Dataset", "Stress-Predict Dataset")
        legacy = LoaderSource(canonical, tiny_scale, None, 0.3, 7)
        derived = LoaderSource(canonical, tiny_scale, 5, 0.3, 7)
        assert legacy.fingerprint("WESAD") != derived.fingerprint("WESAD")
        assert legacy.fingerprint("WESAD") == LoaderSource(
            canonical, tiny_scale, None, 0.3, 7
        ).fingerprint("WESAD")
