"""Unit tests for the BoostHD ensemble, partitioning and BaggedHD."""

import numpy as np
import pytest

from repro.baselines.base import NotFittedError
from repro.core import (
    BaggedHD,
    BoostHD,
    IndependentPartitioner,
    SharedPartitioner,
    split_dimensions,
)


class TestSplitDimensions:
    def test_even_split(self):
        assert split_dimensions(1000, 10) == [100] * 10

    def test_uneven_split_sums_to_total(self):
        chunks = split_dimensions(1003, 10)
        assert sum(chunks) == 1003
        assert max(chunks) - min(chunks) <= 1

    def test_single_learner(self):
        assert split_dimensions(512, 1) == [512]

    def test_more_learners_than_dims_raises(self):
        with pytest.raises(ValueError):
            split_dimensions(5, 10)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            split_dimensions(0, 1)
        with pytest.raises(ValueError):
            split_dimensions(10, 0)


class TestPartitioners:
    def test_independent_factory_dims(self):
        partitioner = IndependentPartitioner(300, 3)
        factories = partitioner.encoder_factories(5, np.random.default_rng(0))
        assert [factory().dim for factory in factories] == [100, 100, 100]

    def test_independent_encoders_differ(self):
        partitioner = IndependentPartitioner(200, 2)
        factories = partitioner.encoder_factories(4, np.random.default_rng(0))
        first, second = factories[0](), factories[1]()
        assert not np.allclose(first.basis, second.basis)

    def test_shared_slices_cover_parent(self):
        partitioner = SharedPartitioner(90, 3)
        factories = partitioner.encoder_factories(4, np.random.default_rng(0))
        encoders = [factory() for factory in factories]
        sample = np.array([0.1, 0.2, 0.3, 0.4])
        concatenated = np.concatenate([encoder.encode(sample) for encoder in encoders])
        assert concatenated.shape == (90,)
        np.testing.assert_allclose(concatenated, encoders[0].parent.encode(sample))

    def test_bandwidth_forwarded(self):
        partitioner = IndependentPartitioner(100, 2, bandwidth=2.5)
        factories = partitioner.encoder_factories(4, np.random.default_rng(0))
        assert factories[0]().bandwidth == 2.5

    def test_invalid_bandwidth_raises(self):
        with pytest.raises(ValueError):
            IndependentPartitioner(100, 2, bandwidth=0.0)


class TestBoostHD:
    def test_fits_blobs_accurately(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = BoostHD(total_dim=400, n_learners=4, epochs=3, seed=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_learner_count_and_dim(self, blobs):
        X, y = blobs
        model = BoostHD(total_dim=300, n_learners=5, epochs=1, seed=0).fit(X, y)
        assert len(model.learners_) == 5
        assert model.learner_dim == 60
        assert all(learner.class_hypervectors_.shape[1] == 60 for learner in model.learners_)

    def test_learner_weights_and_errors_recorded(self, blobs):
        X, y = blobs
        model = BoostHD(total_dim=200, n_learners=4, epochs=1, seed=0).fit(X, y)
        assert model.learner_weights_.shape == (4,)
        assert model.learner_errors_.shape == (4,)
        assert np.all(model.learner_weights_ >= 0)
        assert np.all((model.learner_errors_ >= 0) & (model.learner_errors_ <= 1))

    def test_deterministic_with_seed(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        first = BoostHD(total_dim=200, n_learners=4, epochs=1, seed=9).fit(X_train, y_train)
        second = BoostHD(total_dim=200, n_learners=4, epochs=1, seed=9).fit(X_train, y_train)
        np.testing.assert_array_equal(first.predict(X_test), second.predict(X_test))

    def test_vote_and_score_aggregation_both_work(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        for aggregation in ("vote", "score"):
            model = BoostHD(
                total_dim=300, n_learners=3, epochs=2, aggregation=aggregation, seed=0
            ).fit(X_train, y_train)
            assert model.score(X_test, y_test) > 0.8

    def test_decision_function_shape(self, blobs):
        X, y = blobs
        model = BoostHD(total_dim=200, n_learners=2, epochs=1, seed=0).fit(X, y)
        assert model.decision_function(X).shape == (len(X), 3)

    def test_predict_proba_normalised(self, blobs):
        X, y = blobs
        model = BoostHD(total_dim=200, n_learners=2, epochs=1, seed=0).fit(X, y)
        probabilities = model.predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_class_hypervectors_concatenate_to_total_dim(self, blobs):
        X, y = blobs
        model = BoostHD(total_dim=240, n_learners=4, epochs=1, seed=0).fit(X, y)
        assert model.class_hypervectors().shape == (3, 240)

    def test_single_learner_degenerates_to_onlinehd_like(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = BoostHD(total_dim=300, n_learners=1, epochs=2, seed=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_uniform_blend_extremes(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        for blend in (0.0, 1.0):
            model = BoostHD(
                total_dim=200, n_learners=3, epochs=1, uniform_blend=blend, seed=0
            ).fit(X_train, y_train)
            assert model.score(X_test, y_test) > 0.7

    def test_shared_partitioner_supported(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = BoostHD(
            total_dim=300,
            n_learners=3,
            epochs=2,
            partitioner=SharedPartitioner(300, 3),
            seed=0,
        ).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.8

    def test_sample_weight_accepted(self, blobs):
        X, y = blobs
        weights = np.random.default_rng(0).uniform(0.5, 1.5, len(y))
        model = BoostHD(total_dim=200, n_learners=2, epochs=1, seed=0)
        model.fit(X, y, sample_weight=weights)
        assert model.score(X, y) > 0.7

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BoostHD(total_dim=100, n_learners=2).predict(np.ones((2, 4)))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            BoostHD(total_dim=5, n_learners=10)
        with pytest.raises(ValueError):
            BoostHD(n_learners=0)
        with pytest.raises(ValueError):
            BoostHD(aggregation="mean")
        with pytest.raises(ValueError):
            BoostHD(uniform_blend=1.5)
        with pytest.raises(ValueError):
            BoostHD(learning_rate=0.0)
        with pytest.raises(ValueError):
            BoostHD(bandwidth=-1.0)

    def test_boosting_reweights_hard_samples(self, blobs):
        # After fitting, learners that came later should have been exposed to
        # re-weighted data; the recorded errors must not be identical across
        # all learners (which would indicate the weights never changed).
        X, y = blobs
        model = BoostHD(total_dim=300, n_learners=5, epochs=1, uniform_blend=0.0, seed=0).fit(X, y)
        assert len(set(np.round(model.learner_errors_, 6))) > 1


class TestBaggedHD:
    def test_fits_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = BaggedHD(total_dim=300, n_learners=3, epochs=2, seed=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_learner_count(self, blobs):
        X, y = blobs
        model = BaggedHD(total_dim=200, n_learners=4, epochs=1, seed=0).fit(X, y)
        assert len(model.learners_) == 4

    def test_decision_function_is_vote_fraction(self, blobs):
        X, y = blobs
        model = BaggedHD(total_dim=200, n_learners=4, epochs=1, seed=0).fit(X, y)
        scores = model.decision_function(X)
        np.testing.assert_allclose(scores.sum(axis=1), 1.0)

    def test_without_bootstrap(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = BaggedHD(total_dim=200, n_learners=3, epochs=1, bootstrap=False, seed=0).fit(
            X_train, y_train
        )
        assert model.score(X_test, y_test) > 0.8

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            BaggedHD(total_dim=5, n_learners=10)
        with pytest.raises(ValueError):
            BaggedHD(bandwidth=0.0)


class TestBoostHDPartialFit:
    def test_updates_every_learner_and_keeps_alphas(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        model = BoostHD(total_dim=120, n_learners=4, epochs=1, seed=9).fit(
            X_train, y_train
        )
        alphas = model.learner_weights_.copy()
        snapshots = [learner.class_hypervectors_.copy() for learner in model.learners_]
        model.partial_fit(X_train, y_train)
        np.testing.assert_array_equal(model.learner_weights_, alphas)
        for learner, snapshot in zip(model.learners_, snapshots):
            assert not np.array_equal(learner.class_hypervectors_, snapshot)

    def test_unseen_class_grows_ensemble(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        model = BoostHD(total_dim=120, n_learners=3, epochs=1, seed=1).fit(
            X_train, y_train
        )
        n_before = len(model.classes_)
        model.partial_fit(X_train[:5], np.full(5, 99))
        assert len(model.classes_) == n_before + 1 and 99 in model.classes_
        for learner in model.learners_:
            assert 99 in learner.classes_
        # Inference still works over the grown class set (loop + fused).
        scores = model.decision_function(X_train[:5])
        assert scores.shape == (5, n_before + 1)
        engine = model.compile(dtype=np.float64)
        np.testing.assert_allclose(
            engine.decision_function(X_train[:5]), scores, atol=1e-9
        )

    def test_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            BoostHD(total_dim=40, n_learners=2).partial_fit(
                np.ones((4, 3)), np.zeros(4)
            )
