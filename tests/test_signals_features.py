"""Unit tests for the synthetic signal simulator and the feature pipeline."""

import numpy as np
import pytest

from repro.data import (
    CHANNELS,
    STRESS_LEVEL_STATES,
    WESAD_STATES,
    SignalSimulator,
    SubjectPhysiology,
    extract_features,
    extract_window_features,
    feature_names,
    moving_average,
)


class TestSignalSimulator:
    def test_window_shape(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=5, rng=0)
        window = simulator.generate_window(WESAD_STATES[0])
        assert window.shape == (len(CHANNELS), 80)

    def test_batch_shape(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=5, rng=0)
        windows = simulator.generate_windows(WESAD_STATES[1], 4)
        assert windows.shape == (4, len(CHANNELS), 80)

    def test_stress_has_higher_eda_than_baseline(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=10, rng=0)
        eda_index = CHANNELS.index("EDA")
        baseline = simulator.generate_windows(WESAD_STATES[0], 8)[:, eda_index].mean()
        stress = simulator.generate_windows(WESAD_STATES[1], 8)[:, eda_index].mean()
        assert stress > baseline

    def test_stress_has_lower_temperature(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=10, rng=0)
        temp_index = CHANNELS.index("TEMP")
        baseline = simulator.generate_windows(WESAD_STATES[0], 6)[:, temp_index].mean()
        stress = simulator.generate_windows(WESAD_STATES[1], 6)[:, temp_index].mean()
        assert stress < baseline

    def test_subject_offset_shifts_eda(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=10, rng=0)
        eda_index = CHANNELS.index("EDA")
        plain = simulator.generate_windows(WESAD_STATES[0], 6)[:, eda_index].mean()
        shifted = simulator.generate_windows(
            WESAD_STATES[0], 6, SubjectPhysiology(eda_offset=2.0)
        )[:, eda_index].mean()
        assert shifted > plain + 1.0

    def test_class_overlap_shrinks_state_differences(self):
        eda_index = CHANNELS.index("EDA")

        def gap(overlap: float) -> float:
            simulator = SignalSimulator(
                sampling_rate=16, window_seconds=10, class_overlap=overlap, rng=0
            )
            baseline = simulator.generate_windows(WESAD_STATES[0], 6)[:, eda_index].mean()
            stress = simulator.generate_windows(WESAD_STATES[1], 6)[:, eda_index].mean()
            return stress - baseline

        assert gap(0.8) < gap(0.0)

    def test_random_subject_reproducible(self):
        first = SignalSimulator(rng=5).random_subject()
        second = SignalSimulator(rng=5).random_subject()
        assert first == second

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SignalSimulator(sampling_rate=0)
        with pytest.raises(ValueError):
            SignalSimulator(window_seconds=0)
        with pytest.raises(ValueError):
            SignalSimulator(class_overlap=1.0)

    def test_generate_windows_count_validation(self):
        with pytest.raises(ValueError):
            SignalSimulator(rng=0).generate_windows(WESAD_STATES[0], 0)

    def test_state_catalogues(self):
        assert [state.name for state in WESAD_STATES] == ["baseline", "stress", "amusement"]
        assert [state.name for state in STRESS_LEVEL_STATES] == ["good", "common", "stress"]


class TestMovingAverage:
    def test_constant_signal_unchanged(self):
        signal = np.full(50, 3.0)
        np.testing.assert_allclose(moving_average(signal, 10), signal)

    def test_window_one_is_identity(self):
        signal = np.random.default_rng(0).standard_normal(20)
        np.testing.assert_allclose(moving_average(signal, 1), signal)

    def test_output_length_preserved(self):
        signal = np.random.default_rng(0).standard_normal(100)
        assert moving_average(signal, 30).shape == signal.shape

    def test_smoothing_reduces_variance(self):
        signal = np.random.default_rng(0).standard_normal(500)
        assert moving_average(signal, 30).std() < signal.std()

    def test_matches_manual_average_for_full_windows(self):
        signal = np.arange(10.0)
        smoothed = moving_average(signal, 3)
        assert smoothed[5] == pytest.approx(np.mean(signal[3:6]))

    def test_prefix_uses_partial_windows(self):
        signal = np.arange(10.0)
        smoothed = moving_average(signal, 4)
        assert smoothed[0] == pytest.approx(0.0)
        assert smoothed[1] == pytest.approx(0.5)

    def test_multichannel_axis(self):
        signal = np.random.default_rng(0).standard_normal((3, 40))
        assert moving_average(signal, 5).shape == (3, 40)

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(10), 0)


class TestFeatureExtraction:
    def test_window_feature_length(self):
        window = np.random.default_rng(0).standard_normal((7, 100))
        features = extract_window_features(window)
        assert features.shape == (7 * 4,)

    def test_batch_feature_shape(self):
        windows = np.random.default_rng(0).standard_normal((5, 7, 100))
        assert extract_features(windows).shape == (5, 28)

    def test_batch_matches_per_window(self):
        windows = np.random.default_rng(0).standard_normal((3, 4, 50))
        batch = extract_features(windows, smoothing_window=5)
        singles = np.vstack(
            [extract_window_features(window, smoothing_window=5) for window in windows]
        )
        np.testing.assert_allclose(batch, singles)

    def test_custom_statistics_subset(self):
        windows = np.random.default_rng(0).standard_normal((2, 3, 30))
        features = extract_features(windows, statistics=("mean", "std"))
        assert features.shape == (2, 6)

    def test_unknown_statistic_raises(self):
        with pytest.raises(ValueError):
            extract_features(np.ones((1, 2, 10)), statistics=("median",))

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            extract_features(np.ones((2, 10)))
        with pytest.raises(ValueError):
            extract_window_features(np.ones(10))

    def test_feature_names_layout(self):
        names = feature_names(["EDA", "BVP"], ("min", "max"))
        assert names == ["EDA_min", "EDA_max", "BVP_min", "BVP_max"]

    def test_feature_names_match_default_width(self):
        assert len(feature_names(CHANNELS)) == len(CHANNELS) * 4

    def test_min_leq_mean_leq_max(self):
        windows = np.random.default_rng(0).standard_normal((4, 2, 60))
        features = extract_features(windows, statistics=("min", "mean", "max"))
        per_channel = features.reshape(4, 2, 3)
        assert np.all(per_channel[..., 0] <= per_channel[..., 1] + 1e-12)
        assert np.all(per_channel[..., 1] <= per_channel[..., 2] + 1e-12)


class TestMovingAveragePrecision:
    @staticmethod
    def _naive(signal: np.ndarray, window: int) -> np.ndarray:
        """Reference O(n*w) filter: per-position mean over the causal window."""
        length = len(signal)
        effective = min(window, length)
        out = np.empty(length)
        for position in range(length):
            count = min(effective, position + 1)
            out[position] = np.mean(signal[position - count + 1 : position + 1])
        return out

    def test_long_high_offset_stream_regression(self):
        """Regression: the cumsum filter must not lose digits on long, high
        offset streams (hours of ~33 degC skin temperature, or raw ADC counts).

        The previous implementation's raw cumulative sum grew to n * offset
        and its windowed differences cancelled catastrophically (~1e-6 error
        at offset 1e7); mean-centring before the cumsum keeps the error at
        representation level (~1e-9).
        """
        rng = np.random.default_rng(0)
        n = 20_000
        signal = 1e7 + np.linspace(0.0, 50.0, n) + rng.standard_normal(n)
        smoothed = moving_average(signal, 30)
        np.testing.assert_allclose(smoothed, self._naive(signal, 30), atol=1e-7, rtol=0)

    def test_offset_invariance(self):
        rng = np.random.default_rng(1)
        signal = rng.standard_normal(500)
        base = moving_average(signal, 30)
        shifted = moving_average(signal + 1e6, 30)
        np.testing.assert_allclose(shifted - 1e6, base, atol=1e-8)


class TestStreamChunks:
    def test_chunk_shapes_and_count(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=5, rng=0)
        chunks = list(
            simulator.stream_chunks(WESAD_STATES[0], chunk_samples=24, n_chunks=5)
        )
        assert len(chunks) == 5
        assert all(chunk.shape == (len(CHANNELS), 24) for chunk in chunks)

    def test_default_chunk_is_one_window(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=5, rng=0)
        chunk = next(iter(simulator.stream_chunks(WESAD_STATES[0], n_chunks=1)))
        assert chunk.shape == (len(CHANNELS), simulator.samples_per_window)

    def test_periodic_channels_continue_across_chunks(self):
        """RESP's phase must carry over chunk boundaries (continuous time)."""
        simulator = SignalSimulator(
            sampling_rate=32, window_seconds=4, noise_level=0.0, rng=0
        )
        resp_index = CHANNELS.index("RESP")
        joined = np.concatenate(
            [
                chunk[resp_index]
                for chunk in simulator.stream_chunks(
                    WESAD_STATES[0], chunk_samples=64, n_chunks=4
                )
            ]
        )
        # A noiseless respiration wave at a continuous phase has no jumps
        # larger than its max per-sample slope 2*pi*f/fs.
        state = simulator._effective_state(WESAD_STATES[0], SubjectPhysiology())
        max_step = 2.0 * np.pi * (state.respiration_rate / 60.0) / simulator.sampling_rate
        assert np.max(np.abs(np.diff(joined))) <= max_step * 1.01

    def test_stream_statistics_match_windows(self):
        """Streamed chunks have the same per-state statistical signature."""
        simulator = SignalSimulator(sampling_rate=16, window_seconds=10, rng=0)
        eda_index = CHANNELS.index("EDA")
        baseline = np.concatenate(
            [c[eda_index] for c in simulator.stream_chunks(WESAD_STATES[0], n_chunks=6)]
        )
        stress = np.concatenate(
            [c[eda_index] for c in simulator.stream_chunks(WESAD_STATES[1], n_chunks=6)]
        )
        assert stress.mean() > baseline.mean()

    def test_invalid_arguments_raise(self):
        simulator = SignalSimulator(rng=0)
        with pytest.raises(ValueError):
            next(iter(simulator.stream_chunks(WESAD_STATES[0], chunk_samples=0)))
        with pytest.raises(ValueError):
            next(iter(simulator.stream_chunks(WESAD_STATES[0], n_chunks=0)))
