"""Unit tests for the synthetic signal simulator and the feature pipeline."""

import numpy as np
import pytest

from repro.data import (
    CHANNELS,
    STRESS_LEVEL_STATES,
    WESAD_STATES,
    SignalSimulator,
    SubjectPhysiology,
    extract_features,
    extract_window_features,
    feature_names,
    moving_average,
)


class TestSignalSimulator:
    def test_window_shape(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=5, rng=0)
        window = simulator.generate_window(WESAD_STATES[0])
        assert window.shape == (len(CHANNELS), 80)

    def test_batch_shape(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=5, rng=0)
        windows = simulator.generate_windows(WESAD_STATES[1], 4)
        assert windows.shape == (4, len(CHANNELS), 80)

    def test_stress_has_higher_eda_than_baseline(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=10, rng=0)
        eda_index = CHANNELS.index("EDA")
        baseline = simulator.generate_windows(WESAD_STATES[0], 8)[:, eda_index].mean()
        stress = simulator.generate_windows(WESAD_STATES[1], 8)[:, eda_index].mean()
        assert stress > baseline

    def test_stress_has_lower_temperature(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=10, rng=0)
        temp_index = CHANNELS.index("TEMP")
        baseline = simulator.generate_windows(WESAD_STATES[0], 6)[:, temp_index].mean()
        stress = simulator.generate_windows(WESAD_STATES[1], 6)[:, temp_index].mean()
        assert stress < baseline

    def test_subject_offset_shifts_eda(self):
        simulator = SignalSimulator(sampling_rate=16, window_seconds=10, rng=0)
        eda_index = CHANNELS.index("EDA")
        plain = simulator.generate_windows(WESAD_STATES[0], 6)[:, eda_index].mean()
        shifted = simulator.generate_windows(
            WESAD_STATES[0], 6, SubjectPhysiology(eda_offset=2.0)
        )[:, eda_index].mean()
        assert shifted > plain + 1.0

    def test_class_overlap_shrinks_state_differences(self):
        eda_index = CHANNELS.index("EDA")

        def gap(overlap: float) -> float:
            simulator = SignalSimulator(
                sampling_rate=16, window_seconds=10, class_overlap=overlap, rng=0
            )
            baseline = simulator.generate_windows(WESAD_STATES[0], 6)[:, eda_index].mean()
            stress = simulator.generate_windows(WESAD_STATES[1], 6)[:, eda_index].mean()
            return stress - baseline

        assert gap(0.8) < gap(0.0)

    def test_random_subject_reproducible(self):
        first = SignalSimulator(rng=5).random_subject()
        second = SignalSimulator(rng=5).random_subject()
        assert first == second

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SignalSimulator(sampling_rate=0)
        with pytest.raises(ValueError):
            SignalSimulator(window_seconds=0)
        with pytest.raises(ValueError):
            SignalSimulator(class_overlap=1.0)

    def test_generate_windows_count_validation(self):
        with pytest.raises(ValueError):
            SignalSimulator(rng=0).generate_windows(WESAD_STATES[0], 0)

    def test_state_catalogues(self):
        assert [state.name for state in WESAD_STATES] == ["baseline", "stress", "amusement"]
        assert [state.name for state in STRESS_LEVEL_STATES] == ["good", "common", "stress"]


class TestMovingAverage:
    def test_constant_signal_unchanged(self):
        signal = np.full(50, 3.0)
        np.testing.assert_allclose(moving_average(signal, 10), signal)

    def test_window_one_is_identity(self):
        signal = np.random.default_rng(0).standard_normal(20)
        np.testing.assert_allclose(moving_average(signal, 1), signal)

    def test_output_length_preserved(self):
        signal = np.random.default_rng(0).standard_normal(100)
        assert moving_average(signal, 30).shape == signal.shape

    def test_smoothing_reduces_variance(self):
        signal = np.random.default_rng(0).standard_normal(500)
        assert moving_average(signal, 30).std() < signal.std()

    def test_matches_manual_average_for_full_windows(self):
        signal = np.arange(10.0)
        smoothed = moving_average(signal, 3)
        assert smoothed[5] == pytest.approx(np.mean(signal[3:6]))

    def test_prefix_uses_partial_windows(self):
        signal = np.arange(10.0)
        smoothed = moving_average(signal, 4)
        assert smoothed[0] == pytest.approx(0.0)
        assert smoothed[1] == pytest.approx(0.5)

    def test_multichannel_axis(self):
        signal = np.random.default_rng(0).standard_normal((3, 40))
        assert moving_average(signal, 5).shape == (3, 40)

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(10), 0)


class TestFeatureExtraction:
    def test_window_feature_length(self):
        window = np.random.default_rng(0).standard_normal((7, 100))
        features = extract_window_features(window)
        assert features.shape == (7 * 4,)

    def test_batch_feature_shape(self):
        windows = np.random.default_rng(0).standard_normal((5, 7, 100))
        assert extract_features(windows).shape == (5, 28)

    def test_batch_matches_per_window(self):
        windows = np.random.default_rng(0).standard_normal((3, 4, 50))
        batch = extract_features(windows, smoothing_window=5)
        singles = np.vstack(
            [extract_window_features(window, smoothing_window=5) for window in windows]
        )
        np.testing.assert_allclose(batch, singles)

    def test_custom_statistics_subset(self):
        windows = np.random.default_rng(0).standard_normal((2, 3, 30))
        features = extract_features(windows, statistics=("mean", "std"))
        assert features.shape == (2, 6)

    def test_unknown_statistic_raises(self):
        with pytest.raises(ValueError):
            extract_features(np.ones((1, 2, 10)), statistics=("median",))

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            extract_features(np.ones((2, 10)))
        with pytest.raises(ValueError):
            extract_window_features(np.ones(10))

    def test_feature_names_layout(self):
        names = feature_names(["EDA", "BVP"], ("min", "max"))
        assert names == ["EDA_min", "EDA_max", "BVP_min", "BVP_max"]

    def test_feature_names_match_default_width(self):
        assert len(feature_names(CHANNELS)) == len(CHANNELS) * 4

    def test_min_leq_mean_leq_max(self):
        windows = np.random.default_rng(0).standard_normal((4, 2, 60))
        features = extract_features(windows, statistics=("min", "mean", "max"))
        per_channel = features.reshape(4, 2, 3)
        assert np.all(per_channel[..., 0] <= per_channel[..., 1] + 1e-12)
        assert np.all(per_channel[..., 1] <= per_channel[..., 2] + 1e-12)
