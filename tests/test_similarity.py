"""Unit tests for hypervector similarity metrics."""

import numpy as np
import pytest

from repro.hdc import (
    cosine_similarity,
    dot_similarity,
    hamming_similarity,
    pairwise_cosine,
    random_hypervector,
)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        vector = random_hypervector(256, rng=0)
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        vector = random_hypervector(256, rng=0)
        assert cosine_similarity(vector, -vector) == pytest.approx(-1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_scale_invariance(self):
        first = random_hypervector(128, rng=0)
        second = random_hypervector(128, rng=1)
        assert cosine_similarity(first, second) == pytest.approx(
            cosine_similarity(3.5 * first, 0.2 * second)
        )

    def test_batch_shapes(self):
        queries = random_hypervector(64, 5, rng=0)
        references = random_hypervector(64, 3, rng=1)
        assert cosine_similarity(queries, references).shape == (5, 3)

    def test_vector_vs_batch_shape(self):
        query = random_hypervector(64, rng=0)
        references = random_hypervector(64, 3, rng=1)
        assert cosine_similarity(query, references).shape == (3,)

    def test_batch_vs_vector_shape(self):
        queries = random_hypervector(64, 4, rng=0)
        reference = random_hypervector(64, rng=1)
        assert cosine_similarity(queries, reference).shape == (4,)

    def test_zero_vector_does_not_nan(self):
        result = cosine_similarity(np.zeros(10), np.ones(10))
        assert np.isfinite(result)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.ones(4), np.ones(6))

    def test_bounded_in_unit_interval(self):
        queries = random_hypervector(32, 10, rng=0)
        references = random_hypervector(32, 10, rng=1)
        values = cosine_similarity(queries, references)
        assert np.all(values <= 1.0 + 1e-12) and np.all(values >= -1.0 - 1e-12)


class TestCosineFastPath:
    """The 1-vs-many fast path must be bit-identical to the general path."""

    @staticmethod
    def _general_path(first, second):
        """The pre-fast-path formulation, kept verbatim as the oracle."""
        lhs = np.atleast_2d(np.asarray(first, dtype=float))
        rhs = np.atleast_2d(np.asarray(second, dtype=float))
        lhs_norm = np.linalg.norm(lhs, axis=1, keepdims=True)
        rhs_norm = np.linalg.norm(rhs, axis=1, keepdims=True)
        denominator = np.maximum(lhs_norm @ rhs_norm.T, 1e-12)
        return ((lhs @ rhs.T) / denominator)[0]

    def test_bit_identical_to_general_path(self):
        rng = np.random.default_rng(0)
        for dim, m in ((64, 3), (257, 1), (1000, 10)):
            query = rng.standard_normal(dim)
            references = rng.standard_normal((m, dim))
            np.testing.assert_array_equal(
                cosine_similarity(query, references),
                self._general_path(query, references),
            )

    def test_bit_identical_on_noncontiguous_views(self):
        rng = np.random.default_rng(1)
        full = rng.standard_normal((5, 120))
        query = full[2, ::2]              # strided 1-D view
        references = full[:, ::2]          # strided 2-D view
        np.testing.assert_array_equal(
            cosine_similarity(query, references),
            self._general_path(query, references),
        )

    def test_non_float64_inputs_still_work(self):
        query = np.ones(8, dtype=np.float32)
        references = np.ones((2, 8), dtype=np.float32)
        np.testing.assert_allclose(cosine_similarity(query, references), 1.0)

    def test_lists_still_work(self):
        assert cosine_similarity([1.0, 0.0], [[1.0, 0.0], [0.0, 1.0]]) == pytest.approx(
            [1.0, 0.0]
        )

    def test_zero_query_clips_not_nan(self):
        values = cosine_similarity(np.zeros(6), np.ones((2, 6)))
        assert np.all(np.isfinite(values))


class TestDotAndHamming:
    def test_dot_similarity_matches_numpy(self):
        first = random_hypervector(50, rng=0)
        second = random_hypervector(50, rng=1)
        assert dot_similarity(first, second) == pytest.approx(float(first @ second))

    def test_hamming_identical(self):
        vector = random_hypervector(100, flavour="bipolar", rng=0)
        assert hamming_similarity(vector, vector) == pytest.approx(1.0)

    def test_hamming_opposite(self):
        vector = random_hypervector(100, flavour="bipolar", rng=0)
        assert hamming_similarity(vector, -vector) == pytest.approx(0.0)

    def test_hamming_random_near_half(self):
        first = random_hypervector(10000, flavour="bipolar", rng=0)
        second = random_hypervector(10000, flavour="bipolar", rng=1)
        assert hamming_similarity(first, second) == pytest.approx(0.5, abs=0.05)

    def test_hamming_batch_shape(self):
        first = random_hypervector(64, 4, flavour="bipolar", rng=0)
        second = random_hypervector(64, 2, flavour="bipolar", rng=1)
        assert hamming_similarity(first, second).shape == (4, 2)

    def test_hamming_matmul_matches_broadcast_formulation(self):
        """Sign-matmul rewrite is bit-identical to the (n, m, dim) broadcast."""
        rng = np.random.default_rng(3)
        for n, m, dim in ((4, 3, 97), (1, 5, 64), (7, 7, 33)):
            first = rng.standard_normal((n, dim))
            second = rng.standard_normal((m, dim))
            lhs_sign = np.where(first >= 0.0, 1.0, -1.0)
            rhs_sign = np.where(second >= 0.0, 1.0, -1.0)
            broadcast = (lhs_sign[:, None, :] == rhs_sign[None, :, :]).mean(axis=2)
            np.testing.assert_array_equal(
                hamming_similarity(first, second), broadcast
            )

    def test_hamming_real_valued_inputs_use_signs(self):
        first = np.array([0.3, -0.2, 0.0, -5.0])
        second = np.array([1.0, 1.0, -1.0, -1.0])
        # Signs: [+, -, +, -] vs [+, +, -, -] -> 2 of 4 match.
        assert hamming_similarity(first, second) == pytest.approx(0.5)

    def test_hamming_large_batch_no_broadcast_blowup(self):
        """256x256 at dim 4096 would be a 256 MB boolean tensor if broadcast."""
        rng = np.random.default_rng(4)
        first = np.where(rng.standard_normal((256, 4096)) >= 0, 1.0, -1.0)
        second = np.where(rng.standard_normal((256, 4096)) >= 0, 1.0, -1.0)
        values = hamming_similarity(first, second)
        assert values.shape == (256, 256)
        assert np.all((values >= 0.0) & (values <= 1.0))


class TestPairwiseCosine:
    def test_symmetric_with_unit_diagonal(self):
        batch = random_hypervector(128, 5, rng=0)
        matrix = pairwise_cosine(batch)
        assert matrix.shape == (5, 5)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(matrix, matrix.T)
