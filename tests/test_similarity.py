"""Unit tests for hypervector similarity metrics."""

import numpy as np
import pytest

from repro.hdc import (
    cosine_similarity,
    dot_similarity,
    hamming_similarity,
    pairwise_cosine,
    random_hypervector,
)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        vector = random_hypervector(256, rng=0)
        assert cosine_similarity(vector, vector) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        vector = random_hypervector(256, rng=0)
        assert cosine_similarity(vector, -vector) == pytest.approx(-1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_scale_invariance(self):
        first = random_hypervector(128, rng=0)
        second = random_hypervector(128, rng=1)
        assert cosine_similarity(first, second) == pytest.approx(
            cosine_similarity(3.5 * first, 0.2 * second)
        )

    def test_batch_shapes(self):
        queries = random_hypervector(64, 5, rng=0)
        references = random_hypervector(64, 3, rng=1)
        assert cosine_similarity(queries, references).shape == (5, 3)

    def test_vector_vs_batch_shape(self):
        query = random_hypervector(64, rng=0)
        references = random_hypervector(64, 3, rng=1)
        assert cosine_similarity(query, references).shape == (3,)

    def test_batch_vs_vector_shape(self):
        queries = random_hypervector(64, 4, rng=0)
        reference = random_hypervector(64, rng=1)
        assert cosine_similarity(queries, reference).shape == (4,)

    def test_zero_vector_does_not_nan(self):
        result = cosine_similarity(np.zeros(10), np.ones(10))
        assert np.isfinite(result)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            cosine_similarity(np.ones(4), np.ones(6))

    def test_bounded_in_unit_interval(self):
        queries = random_hypervector(32, 10, rng=0)
        references = random_hypervector(32, 10, rng=1)
        values = cosine_similarity(queries, references)
        assert np.all(values <= 1.0 + 1e-12) and np.all(values >= -1.0 - 1e-12)


class TestDotAndHamming:
    def test_dot_similarity_matches_numpy(self):
        first = random_hypervector(50, rng=0)
        second = random_hypervector(50, rng=1)
        assert dot_similarity(first, second) == pytest.approx(float(first @ second))

    def test_hamming_identical(self):
        vector = random_hypervector(100, flavour="bipolar", rng=0)
        assert hamming_similarity(vector, vector) == pytest.approx(1.0)

    def test_hamming_opposite(self):
        vector = random_hypervector(100, flavour="bipolar", rng=0)
        assert hamming_similarity(vector, -vector) == pytest.approx(0.0)

    def test_hamming_random_near_half(self):
        first = random_hypervector(10000, flavour="bipolar", rng=0)
        second = random_hypervector(10000, flavour="bipolar", rng=1)
        assert hamming_similarity(first, second) == pytest.approx(0.5, abs=0.05)

    def test_hamming_batch_shape(self):
        first = random_hypervector(64, 4, flavour="bipolar", rng=0)
        second = random_hypervector(64, 2, flavour="bipolar", rng=1)
        assert hamming_similarity(first, second).shape == (4, 2)


class TestPairwiseCosine:
    def test_symmetric_with_unit_diagonal(self):
        batch = random_hypervector(128, 5, rng=0)
        matrix = pairwise_cosine(batch)
        assert matrix.shape == (5, 5)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(matrix, matrix.T)
