"""Unit tests for HDC encoders."""

import numpy as np
import pytest

from repro.hdc import LevelIdEncoder, NonlinearEncoder, SlicedEncoder


class TestNonlinearEncoder:
    def test_output_shapes(self):
        encoder = NonlinearEncoder(5, 100, rng=0)
        assert encoder.encode(np.ones(5)).shape == (100,)
        assert encoder.encode(np.ones((7, 5))).shape == (7, 100)

    def test_deterministic_after_construction(self):
        encoder = NonlinearEncoder(4, 64, rng=0)
        sample = np.array([0.1, -0.2, 0.3, 0.4])
        np.testing.assert_array_equal(encoder.encode(sample), encoder.encode(sample))

    def test_same_seed_same_encoding(self):
        sample = np.array([1.0, 2.0, 3.0])
        first = NonlinearEncoder(3, 128, rng=11).encode(sample)
        second = NonlinearEncoder(3, 128, rng=11).encode(sample)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        sample = np.array([1.0, 2.0, 3.0])
        first = NonlinearEncoder(3, 128, rng=1).encode(sample)
        second = NonlinearEncoder(3, 128, rng=2).encode(sample)
        assert not np.allclose(first, second)

    def test_values_bounded_by_one(self):
        encoder = NonlinearEncoder(6, 256, rng=0)
        encoded = encoder.encode(np.random.default_rng(0).standard_normal((10, 6)))
        assert np.all(np.abs(encoded) <= 1.0)

    def test_similar_inputs_have_similar_encodings(self):
        encoder = NonlinearEncoder(6, 2000, rng=0)
        base = np.full(6, 0.4)
        near = base + 0.05
        far = base + 5.0
        from repro.hdc import cosine_similarity

        assert cosine_similarity(encoder.encode(base), encoder.encode(near)) > cosine_similarity(
            encoder.encode(base), encoder.encode(far)
        )

    def test_bandwidth_controls_smoothness(self):
        from repro.hdc import cosine_similarity

        base = np.full(6, 0.4)
        near = base + 0.5
        narrow = NonlinearEncoder(6, 2000, bandwidth=0.5, rng=0)
        wide = NonlinearEncoder(6, 2000, bandwidth=4.0, rng=0)
        assert cosine_similarity(wide.encode(base), wide.encode(near)) > cosine_similarity(
            narrow.encode(base), narrow.encode(near)
        )

    def test_wrong_feature_count_raises(self):
        encoder = NonlinearEncoder(5, 32, rng=0)
        with pytest.raises(ValueError):
            encoder.encode(np.ones(4))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            NonlinearEncoder(0, 10)
        with pytest.raises(ValueError):
            NonlinearEncoder(10, 0)
        with pytest.raises(ValueError):
            NonlinearEncoder(10, 10, bandwidth=0.0)

    def test_callable_interface(self):
        encoder = NonlinearEncoder(3, 16, rng=0)
        sample = np.ones(3)
        np.testing.assert_array_equal(encoder(sample), encoder.encode(sample))


class TestSlicedEncoder:
    def test_slice_matches_parent_block(self):
        parent = NonlinearEncoder(4, 100, rng=0)
        child = parent.slice(20, 50)
        sample = np.array([0.5, -1.0, 0.2, 0.9])
        np.testing.assert_array_equal(child.encode(sample), parent.encode(sample)[20:50])

    def test_slice_dim(self):
        parent = NonlinearEncoder(4, 100, rng=0)
        assert parent.slice(0, 25).dim == 25

    def test_invalid_slice_raises(self):
        parent = NonlinearEncoder(4, 100, rng=0)
        with pytest.raises(ValueError):
            SlicedEncoder(parent, 50, 40)
        with pytest.raises(ValueError):
            SlicedEncoder(parent, 0, 101)

    def test_contiguous_slices_cover_parent(self):
        parent = NonlinearEncoder(4, 90, rng=0)
        sample = np.array([1.0, 2.0, 3.0, 4.0])
        parts = [parent.slice(i * 30, (i + 1) * 30).encode(sample) for i in range(3)]
        np.testing.assert_allclose(np.concatenate(parts), parent.encode(sample))


class TestLevelIdEncoder:
    def test_output_shape(self):
        encoder = LevelIdEncoder(5, 200, rng=0)
        assert encoder.encode(np.full(5, 0.5)).shape == (200,)
        assert encoder.encode(np.full((3, 5), 0.5)).shape == (3, 200)

    def test_identical_inputs_identical_encodings(self):
        encoder = LevelIdEncoder(4, 100, rng=0)
        sample = np.array([0.1, 0.4, 0.7, 0.9])
        np.testing.assert_array_equal(encoder.encode(sample), encoder.encode(sample))

    def test_neighbouring_levels_more_similar_than_distant(self):
        from repro.hdc import cosine_similarity

        encoder = LevelIdEncoder(1, 4000, levels=16, rng=0)
        low = encoder.encode(np.array([0.0]))
        mid = encoder.encode(np.array([0.1]))
        high = encoder.encode(np.array([1.0]))
        assert cosine_similarity(low, mid) > cosine_similarity(low, high)

    def test_values_outside_range_clipped(self):
        encoder = LevelIdEncoder(2, 100, rng=0)
        np.testing.assert_array_equal(
            encoder.encode(np.array([-5.0, 10.0])), encoder.encode(np.array([0.0, 1.0]))
        )

    def test_invalid_levels_raise(self):
        with pytest.raises(ValueError):
            LevelIdEncoder(3, 50, levels=1)

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            LevelIdEncoder(3, 50, feature_range=(1.0, 1.0))


class TestProjectionParams:
    def test_encoding_reconstructed_from_params(self):
        encoder = NonlinearEncoder(6, 40, bandwidth=1.5, rng=0)
        basis, bias = encoder.projection_params()
        X = np.random.default_rng(1).standard_normal((5, 6))
        projected = X @ basis.T
        expected = np.cos(projected + bias) * np.sin(projected)
        np.testing.assert_allclose(encoder.encode(X), expected, atol=1e-12)

    def test_sliced_params_match_parent_rows(self):
        parent = NonlinearEncoder(4, 30, rng=0)
        child = parent.slice(10, 25)
        basis, bias = child.projection_params()
        parent_basis, parent_bias = parent.projection_params()
        np.testing.assert_allclose(basis, parent_basis[10:25])
        np.testing.assert_allclose(bias, parent_bias[10:25])

    def test_nested_slice_flattens_to_root(self):
        parent = NonlinearEncoder(4, 60, rng=0)
        inner = parent.slice(10, 50)
        outer = SlicedEncoder(inner, 5, 20)
        root, start, stop = outer.flatten()
        assert root is parent and (start, stop) == (15, 30)
        basis, _ = outer.projection_params()
        np.testing.assert_allclose(basis, parent.projection_params().basis[15:30])

    def test_unfusable_root_raises(self):
        level = LevelIdEncoder(3, 50, rng=0)
        sliced = SlicedEncoder(level, 0, 10)
        with pytest.raises(TypeError, match="projection parameters"):
            sliced.projection_params()
