"""Contracts of the multi-process serving fabric (:mod:`repro.serving.fabric`).

The load-bearing guarantees:

* **Shard routing** — :func:`shard_of` is deterministic, uniform over the
  worker range, *independent of the process* (no ``hash()`` salt), and
  pinned to golden values so the routing can never silently change between
  releases (sessions would jump shards mid-deployment).
* **Shared-memory models** — an engine published with
  :func:`publish_engine` and re-attached in any process scores
  bit-identically to the original, through read-only views over the shared
  segment (no per-worker copy), for every supported precision.
* **Fabric equivalence** — N-worker sharded serving produces predictions
  bit-identical to the single-process :class:`StreamingService` at 1, 2
  and 4 workers (integer-domain engines, whose scores are provably
  batch-composition invariant).
* **Hot swap atomicity** — every window submitted before a swap scores
  against the complete old model, every window after against the complete
  new one; nothing is dropped or double-scored.
* **Recovery** — a SIGKILLed worker is rebuilt and its sessions re-opened;
  serving continues.
"""

import dataclasses
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core import BoostHD
from repro.engine import EngineError, compile_model
from repro.engine.quant import fixed_block_from_codes, packed_block_from_words
from repro.runtime.executor import resolve_max_workers
from repro.serving import (
    DriftMonitor,
    ServingFabric,
    StreamingService,
    attach_engine,
    cleanup_orphan_segments,
    publish_engine,
    shard_of,
)
from repro.serving.shm import SEGMENT_PREFIX

pytestmark = pytest.mark.fabric

N_CHANNELS = 4
WINDOW = 32
N_FEATURES = N_CHANNELS * 4
SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(scope="module")
def fitted_pair():
    rng = np.random.default_rng(11)
    X = rng.normal(size=(240, N_FEATURES))
    y = rng.integers(0, 3, size=240)
    model_a = BoostHD(total_dim=1024, n_learners=4, epochs=1, seed=0).fit(X, y)
    model_b = BoostHD(total_dim=1024, n_learners=4, epochs=2, seed=9).fit(X, y)
    return model_a, model_b


@pytest.fixture(scope="module")
def engines(fitted_pair):
    model_a, _ = fitted_pair
    return {
        precision: compile_model(model_a, precision=precision)
        if precision != "float64"
        else compile_model(model_a)
        for precision in ("float64", "bipolar-packed", "fixed16", "fixed8")
    }


def _streams(n_sessions: int, chunks: int, seed: int = 7):
    """Interleaved ``(session_id, raw-chunk)`` items, one window per chunk."""
    rng = np.random.default_rng(seed)
    items = []
    for _ in range(chunks):
        for index in range(n_sessions):
            items.append((f"subject-{index}", rng.normal(size=(N_CHANNELS, WINDOW))))
    return items


def _serve_single(engine, items, n_sessions: int, **options):
    """Single-process reference: same sessions, same chunks, one service."""
    service = StreamingService(
        engine, n_channels=N_CHANNELS, window_samples=WINDOW, **options
    )
    for index in range(n_sessions):
        service.open_session(f"subject-{index}")
    predictions = []
    for session_id, chunk in items:
        predictions.extend(service.push(session_id, chunk))
    predictions.extend(service.drain())
    return predictions


def _by_window(predictions):
    return {(p.session_id, p.window_index): p for p in predictions}


# ------------------------------------------------------------- shard routing
class TestShardRouting:
    @settings(max_examples=200, deadline=None)
    @given(session_id=st.text(max_size=64), n_shards=st.integers(1, 64))
    def test_stable_and_in_range(self, session_id, n_shards):
        """Property: routing is a pure function of (id, n) into range(n)."""
        shard = shard_of(session_id, n_shards)
        assert 0 <= shard < n_shards
        assert shard == shard_of(session_id, n_shards)

    def test_single_shard_takes_everything(self):
        assert shard_of("anything", 1) == 0

    def test_golden_routing_is_pinned(self):
        """Changing the routing function would strand live sessions."""
        assert [shard_of(f"subject-{i}", 4) for i in range(8)] == [
            1, 1, 2, 3, 2, 2, 3, 2,
        ]
        assert shard_of("wesad-S10", 7) == 0
        assert shard_of("", 3) == 0

    def test_routing_survives_process_and_hash_salt(self):
        """The same ids route identically in a fresh interpreter with a
        different PYTHONHASHSEED — builtin hash() would fail this."""
        code = (
            "import sys; sys.path.insert(0, {src!r});"
            "from repro.serving import shard_of;"
            "print([shard_of(f'subject-{{i}}', 5) for i in range(16)])"
        ).format(src=SRC_DIR)
        env = dict(os.environ, PYTHONHASHSEED="98765")
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert result.returncode == 0, result.stderr
        expected = [shard_of(f"subject-{i}", 5) for i in range(16)]
        assert eval(result.stdout.strip()) == expected

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_of("s", 0)


# ------------------------------------------------------------- shared memory
class TestSharedMemoryModels:
    @pytest.mark.parametrize(
        "precision", ["float64", "bipolar-packed", "fixed16", "fixed8"]
    )
    def test_attach_is_bit_identical_and_zero_copy(self, engines, precision):
        engine = engines[precision]
        rng = np.random.default_rng(3)
        queries = rng.normal(size=(40, N_FEATURES))
        shared = publish_engine(engine, generation=5)
        try:
            attached = attach_engine(shared.manifest)
            try:
                assert attached.generation == 5
                assert np.array_equal(
                    engine.decision_function(queries),
                    attached.engine.decision_function(queries),
                )
                assert np.array_equal(
                    engine.predict(queries), attached.engine.predict(queries)
                )
                # The large arrays are *views* over the shared segment —
                # nothing was copied, nothing is writable.
                for array in (
                    attached.engine._basis2,
                    attached.engine._bias,
                    attached.engine._sin_bias,
                ):
                    assert not array.flags.owndata
                    assert not array.flags.writeable
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_manifest_is_picklable(self, engines):
        import pickle

        shared = publish_engine(engines["fixed16"])
        try:
            clone = pickle.loads(pickle.dumps(shared.manifest))
            assert clone["segment"] == shared.name
        finally:
            shared.unlink()

    def test_attach_after_unlink_fails(self, engines):
        shared = publish_engine(engines["fixed16"])
        manifest = shared.manifest
        shared.unlink()
        with pytest.raises(FileNotFoundError):
            attach_engine(manifest)

    def test_unsupported_engine_rejected(self):
        with pytest.raises(EngineError, match="cannot publish"):
            publish_engine(object())

    def test_orphan_cleanup_reclaims_dead_publishers(self):
        from multiprocessing import resource_tracker, shared_memory

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm filesystem")
        probe = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
        )
        dead_pid = int(probe.stdout)
        name = f"{SEGMENT_PREFIX}{dead_pid}_deadbeef_g0"
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        segment.close()
        live = f"{SEGMENT_PREFIX}{os.getpid()}_cafef00d_g0"
        keeper = shared_memory.SharedMemory(name=live, create=True, size=64)
        try:
            reclaimed = cleanup_orphan_segments()
            assert name in reclaimed
            assert live not in reclaimed  # we are alive
        finally:
            keeper.close()
            keeper.unlink()

    def test_zero_copy_block_constructors_validate(self):
        with pytest.raises(EngineError, match="uint64"):
            packed_block_from_words(0, 64, 1.0, np.arange(2), np.zeros((2, 1)))
        with pytest.raises(EngineError, match="words wide"):
            packed_block_from_words(
                0, 128, 1.0, np.arange(2), np.zeros((2, 1), dtype=np.uint64)
            )
        with pytest.raises(EngineError, match="int8 or int16"):
            fixed_block_from_codes(
                0, 4, 1.0, np.arange(2), np.zeros((4, 2)), 1.0, np.ones(2)
            )
        with pytest.raises(EngineError, match="span"):
            fixed_block_from_codes(
                0, 5, 1.0, np.arange(2), np.zeros((4, 2), np.int16), 1.0, np.ones(2)
            )
        with pytest.raises(EngineError, match="inv_norms"):
            fixed_block_from_codes(
                0, 4, 1.0, np.arange(2), np.zeros((4, 2), np.int16), 1.0, np.ones(3)
            )


# --------------------------------------------------------------- equivalence
class TestFabricEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("precision", ["bipolar-packed", "fixed16"])
    def test_sharded_serving_matches_single_process(
        self, engines, n_workers, precision
    ):
        """The fabric's predictions are bit-identical to one service's."""
        engine = engines[precision]
        items = _streams(n_sessions=6, chunks=8)
        reference = _by_window(_serve_single(engine, items, 6, max_batch=8))
        with ServingFabric(
            engine,
            n_workers=n_workers,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
            max_batch=8,
        ) as fabric:
            assert fabric.n_workers == n_workers
            for index in range(6):
                fabric.open_session(f"subject-{index}")
            predictions = fabric.route(items)
            predictions.extend(fabric.drain())
        assert len(predictions) == len(reference)
        for prediction in predictions:
            expected = reference[(prediction.session_id, prediction.window_index)]
            assert prediction.label == expected.label
            assert np.array_equal(prediction.scores, expected.scores)

    def test_push_and_route_agree(self, engines):
        engine = engines["fixed16"]
        items = _streams(n_sessions=3, chunks=4)
        with ServingFabric(
            engine,
            n_workers=2,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
            max_batch=4,
        ) as fabric:
            for index in range(3):
                fabric.open_session(f"subject-{index}")
            one_by_one = []
            for session_id, chunk in items:
                one_by_one.extend(fabric.push(session_id, chunk))
            one_by_one.extend(fabric.drain())
        reference = _by_window(_serve_single(engine, items, 3, max_batch=4))
        assert _by_window(one_by_one).keys() == reference.keys()

    def test_session_bookkeeping(self, engines):
        with ServingFabric(
            engines["fixed16"],
            n_workers=2,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
        ) as fabric:
            shard = fabric.open_session("alpha")
            assert shard == shard_of("alpha", 2)
            assert fabric.sessions == ("alpha",)
            with pytest.raises(ValueError, match="already open"):
                fabric.open_session("alpha")
            with pytest.raises(KeyError):
                fabric.push("ghost", np.zeros((N_CHANNELS, 1)))
            fabric.close_session("alpha")
            assert fabric.sessions == ()
            with pytest.raises(KeyError):
                fabric.close_session("alpha")


# ------------------------------------------------------------------ hot swap
class _ConstantScorer:
    """Scores every window as ``value`` — makes 'which model?' observable."""

    def __init__(self, value: int, n_classes: int = 3) -> None:
        self.value = value
        self.classes_ = np.arange(n_classes)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        scores = np.zeros((len(X), len(self.classes_)))
        scores[:, self.value] = 1.0
        return scores


class TestHotSwap:
    def test_service_swap_scorer_is_atomic(self):
        """Pending windows score on the OLD scorer, later ones on the NEW."""
        service = StreamingService(
            _ConstantScorer(0),
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
            max_batch=10_000,
            max_wait=1e9,
        )
        service.open_session("s")
        for _, chunk in _streams(1, 5):
            assert service.push("s", chunk) == []  # everything stays pending
        flushed = service.swap_scorer(_ConstantScorer(1))
        assert [p.label for p in flushed] == [0] * 5
        for _, chunk in _streams(1, 3):
            service.push("s", chunk)
        after = service.drain()
        assert [p.label for p in after] == [1] * 3
        windows = [(p.session_id, p.window_index) for p in flushed + after]
        assert sorted(windows) == [("s", i) for i in range(8)]  # none lost/doubled

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_fabric_swap_no_drop_no_double(self, fitted_pair, n_workers):
        model_a, model_b = fitted_pair
        engine_a = compile_model(model_a, precision="fixed16")
        engine_b = compile_model(model_b, precision="fixed16")
        items = _streams(n_sessions=4, chunks=3)
        with ServingFabric(
            engine_a,
            n_workers=n_workers,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
            max_batch=10_000,
            max_wait=1e9,
        ) as fabric:
            for index in range(4):
                fabric.open_session(f"subject-{index}")
            assert fabric.route(items) == []  # all windows pending
            assert fabric.generation == 0
            result = fabric.swap(engine_b)
            assert result.promoted and result.generation == 1
            assert fabric.generation == 1
            # Flushed-by-swap predictions are exactly the pending windows,
            # scored on the complete OLD engine.
            reference_a = _by_window(
                _serve_single(engine_a, items, 4, max_batch=10_000, max_wait=1e9)
            )
            assert _by_window(result.flushed).keys() == reference_a.keys()
            for prediction in result.flushed:
                expected = reference_a[
                    (prediction.session_id, prediction.window_index)
                ]
                assert prediction.label == expected.label
                assert np.array_equal(prediction.scores, expected.scores)
            # Windows submitted after the swap score on the NEW engine.
            later = _streams(n_sessions=4, chunks=2, seed=23)
            after = fabric.route(later) + fabric.drain()
            assert len(after) == 8
            for info in fabric.worker_info():
                assert info["generation"] == 1
            seen = [
                (p.session_id, p.window_index)
                for p in list(result.flushed) + after
            ]
            assert len(seen) == len(set(seen)) == 20  # no drops, no doubles

    def test_swap_gate_declines_without_drift(self, engines, fitted_pair):
        _, model_b = fitted_pair
        engine_b = compile_model(model_b, precision="fixed16")
        monitor = DriftMonitor(window=8, baseline_window=8, ratio=0.5)
        with ServingFabric(
            engines["fixed16"],
            n_workers=1,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
        ) as fabric:
            result = fabric.swap(engine_b, gate=monitor)
            assert not result.promoted
            assert fabric.generation == 0
            assert "declined" in result.reason
            # A callable gate works the same way.
            assert not fabric.swap(engine_b, gate=lambda: False).promoted
            assert fabric.swap(engine_b, gate=lambda: True).promoted
            assert fabric.generation == 1

    def test_old_segment_is_unlinked_after_swap(self, engines, fitted_pair):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm filesystem")
        _, model_b = fitted_pair
        engine_b = compile_model(model_b, precision="fixed16")
        with ServingFabric(
            engines["fixed16"],
            n_workers=2,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
        ) as fabric:
            first = {
                n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)
            }
            assert len(first) == 1
            fabric.swap(engine_b)
            second = {
                n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)
            }
            assert len(second) == 1 and second != first
        assert not [
            n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)
        ]


# ------------------------------------------------------------------ recovery
class TestRecovery:
    def test_killed_worker_is_rebuilt_and_serving_continues(self, engines):
        with ServingFabric(
            engines["fixed16"],
            n_workers=2,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
            max_batch=1,
        ) as fabric:
            if fabric.serial:
                pytest.skip("process pools unavailable on this platform")
            for index in range(4):
                fabric.open_session(f"subject-{index}")
            first = fabric.route(_streams(4, 2))
            assert len(first) == 8
            os.kill(fabric.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.2)
            second = fabric.route(_streams(4, 2))
            assert fabric.restarts >= 1
            # Recovered sessions restart their windowing, but every shard
            # keeps serving every session.
            assert len(second) + len(fabric.drain()) == 8
            third = fabric.route(_streams(4, 2)) + fabric.drain()
            assert len(third) == 8


# ------------------------------------------------------------- configuration
class TestWorkerResolution:
    def test_fabric_env_overrides_generic_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        monkeypatch.setenv("REPRO_FABRIC_WORKERS", "2")
        assert (
            resolve_max_workers(
                None, env=("REPRO_FABRIC_WORKERS", "REPRO_MAX_WORKERS")
            )
            == 2
        )
        monkeypatch.delenv("REPRO_FABRIC_WORKERS")
        assert (
            resolve_max_workers(
                None, env=("REPRO_FABRIC_WORKERS", "REPRO_MAX_WORKERS")
            )
            == 3
        )
        monkeypatch.delenv("REPRO_MAX_WORKERS")
        assert (
            resolve_max_workers(
                None, env=("REPRO_FABRIC_WORKERS", "REPRO_MAX_WORKERS")
            )
            == 1
        )

    def test_explicit_argument_beats_env(self, monkeypatch, engines):
        monkeypatch.setenv("REPRO_FABRIC_WORKERS", "4")
        with ServingFabric(
            engines["fixed16"],
            n_workers=1,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
        ) as fabric:
            assert fabric.n_workers == 1 and fabric.serial

    def test_env_sizes_the_fabric(self, monkeypatch, engines):
        monkeypatch.setenv("REPRO_FABRIC_WORKERS", "2")
        with ServingFabric(
            engines["fixed16"],
            serial=True,  # routing is what's under test, not the pools
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
        ) as fabric:
            assert fabric.n_workers == 2


# --------------------------------------------------------------- inspection
class TestInspection:
    def test_worker_info_stats_and_repr(self, engines):
        with ServingFabric(
            engines["fixed16"],
            n_workers=2,
            serial=True,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
            max_batch=4,
        ) as fabric:
            for index in range(4):
                fabric.open_session(f"subject-{index}")
            fabric.route(_streams(4, 2))
            fabric.drain()
            info = fabric.worker_info()
            assert len(info) == 2
            assert all(entry["pid"] == os.getpid() for entry in info)  # serial
            stats = fabric.stats()
            assert sum(entry["windows"] for entry in stats) == 8
            assert sum(entry["score_failures"] for entry in stats) == 0
            assert fabric.model_bytes > 0
            assert "ServingFabric(" in repr(fabric)
