"""Unit tests for model quantisation helpers."""

import numpy as np
import pytest

from repro.hdc import FixedPointFormat, from_fixed_point, quantize_model, to_fixed_point
from repro.hdc.quantize import infer_scale


class TestFixedPointFormat:
    def test_code_range(self):
        fmt = FixedPointFormat(bits=8, scale=1.0)
        assert fmt.min_code == -128
        assert fmt.max_code == 127

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError):
            FixedPointFormat(bits=1)
        with pytest.raises(ValueError):
            FixedPointFormat(bits=40)

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            FixedPointFormat(bits=8, scale=0.0)


class TestFixedPointRoundTrip:
    def test_roundtrip_error_small(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(1000)
        codes, fmt = to_fixed_point(values, bits=16)
        recovered = from_fixed_point(codes, fmt)
        assert np.max(np.abs(recovered - values)) < 2 * fmt.scale

    def test_codes_within_range(self):
        values = np.linspace(-10, 10, 100)
        codes, fmt = to_fixed_point(values, bits=8)
        assert codes.max() <= fmt.max_code
        assert codes.min() >= fmt.min_code

    def test_explicit_format_respected(self):
        fmt = FixedPointFormat(bits=8, scale=0.5)
        codes, used = to_fixed_point(np.array([1.0, -1.0]), fmt)
        assert used is fmt
        np.testing.assert_array_equal(codes, [2, -2])

    def test_infer_scale_covers_max(self):
        values = np.array([0.1, -3.0, 2.0])
        fmt = infer_scale(values, bits=16)
        assert abs(3.0 / fmt.scale) <= fmt.max_code + 1

    def test_zero_array(self):
        codes, fmt = to_fixed_point(np.zeros(5))
        np.testing.assert_array_equal(from_fixed_point(codes, fmt), np.zeros(5))


class TestQuantizeModel:
    def test_bipolar_scheme(self):
        model = np.array([[0.5, -0.2], [-1.0, 0.0]])
        quantized = quantize_model(model, scheme="bipolar")
        assert set(np.unique(quantized)) <= {-1.0, 1.0}

    def test_fixed_schemes_preserve_shape_and_sign(self):
        rng = np.random.default_rng(0)
        model = rng.standard_normal((3, 50))
        for scheme in ("fixed16", "fixed8"):
            quantized = quantize_model(model, scheme=scheme)
            assert quantized.shape == model.shape
            # Signs agree wherever the magnitude is not negligible.
            mask = np.abs(model) > 0.1
            assert np.all(np.sign(quantized[mask]) == np.sign(model[mask]))

    def test_fixed16_more_accurate_than_fixed8(self):
        rng = np.random.default_rng(1)
        model = rng.standard_normal((2, 200))
        error16 = np.abs(quantize_model(model, "fixed16") - model).mean()
        error8 = np.abs(quantize_model(model, "fixed8") - model).mean()
        assert error16 < error8

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError):
            quantize_model(np.ones((2, 2)), scheme="int4")
