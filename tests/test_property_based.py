"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.metrics import accuracy, macro_accuracy, median_absolute_deviation
from repro.core.partition import split_dimensions
from repro.core.theory import marchenko_pastur_bounds, variance_terms
from repro.data.features import moving_average
from repro.data.imbalance import imbalance_indices
from repro.hdc.hypervector import bind, bipolarize, bundle, normalize
from repro.hdc.similarity import cosine_similarity

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@pytest.mark.slow
@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(2, 64), elements=finite_floats))
def test_cosine_similarity_bounded(vector):
    other = np.roll(vector, 1)
    value = cosine_similarity(vector, other)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(2, 64), elements=finite_floats))
def test_cosine_self_similarity_is_one_or_zero_vector(vector):
    value = cosine_similarity(vector, vector)
    if np.linalg.norm(vector) > 1e-6:
        assert value == np.testing.assert_allclose(value, 1.0, atol=1e-6) or True
        np.testing.assert_allclose(value, 1.0, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(2, 32)), elements=finite_floats)
)
def test_bundle_is_commutative_in_sum(batch):
    forward = bundle(batch)
    backward = bundle(batch[::-1])
    np.testing.assert_allclose(forward, backward, rtol=1e-9, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(2, 64), elements=finite_floats))
def test_bind_with_self_is_nonnegative(vector):
    assert np.all(bind(vector, vector) >= 0.0)


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(2, 64), elements=finite_floats))
def test_normalize_output_is_unit_or_zero(vector):
    norm = np.linalg.norm(normalize(vector))
    assert norm < 1e-6 or abs(norm - 1.0) < 1e-6


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(1, 64), elements=finite_floats))
def test_bipolarize_produces_only_plus_minus_one(vector):
    assert set(np.unique(bipolarize(vector))) <= {-1.0, 1.0}


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 5000), st.integers(1, 100))
def test_split_dimensions_partition_properties(total_dim, n_learners):
    if n_learners > total_dim:
        return
    chunks = split_dimensions(total_dim, n_learners)
    assert sum(chunks) == total_dim
    assert len(chunks) == n_learners
    assert all(chunk >= 1 for chunk in chunks)
    assert max(chunks) - min(chunks) <= 1


@settings(max_examples=50, deadline=None)
@given(
    arrays(np.int64, st.integers(1, 200), elements=st.integers(0, 4)),
)
def test_accuracy_of_identical_arrays_is_one(labels):
    assert accuracy(labels, labels.copy()) == 1.0
    assert macro_accuracy(labels, labels.copy()) == 1.0


@pytest.mark.slow
@settings(max_examples=50, deadline=None)
@given(
    arrays(np.int64, st.integers(2, 200), elements=st.integers(0, 3)),
    arrays(np.int64, st.integers(2, 200), elements=st.integers(0, 3)),
)
def test_accuracy_bounded(y_true, y_pred):
    size = min(len(y_true), len(y_pred))
    value = accuracy(y_true[:size], y_pred[:size])
    assert 0.0 <= value <= 1.0


@settings(max_examples=50, deadline=None)
@given(arrays(np.float64, st.integers(1, 100), elements=finite_floats))
def test_mad_is_nonnegative_and_shift_invariant(values):
    mad = median_absolute_deviation(values)
    assert mad >= 0.0
    shifted = median_absolute_deviation(values + 17.0)
    np.testing.assert_allclose(mad, shifted, rtol=1e-9, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, st.integers(2, 200), elements=st.floats(-100, 100)),
    st.integers(1, 40),
)
def test_moving_average_preserves_length_and_range(signal, window):
    smoothed = moving_average(signal, window)
    assert smoothed.shape == signal.shape
    assert smoothed.min() >= signal.min() - 1e-9
    assert smoothed.max() <= signal.max() + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.floats(0.01, 1000.0))
def test_marchenko_pastur_bounds_ordered(q):
    lower, upper = marchenko_pastur_bounds(q)
    assert 0.0 <= lower <= upper


@settings(max_examples=40, deadline=None)
@given(st.floats(1.0, 1000.0))
def test_variance_terms_finite(q):
    terms = variance_terms(q)
    assert all(np.isfinite(term) for term in terms)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 5),
    st.integers(3, 30),
    st.floats(0.0, 1.0),
    st.integers(0, 1000),
)
def test_imbalance_keeps_target_class_and_all_classes(n_classes, per_class, keep, seed):
    y = np.repeat(np.arange(n_classes), per_class)
    indices = imbalance_indices(y, target_class=0, keep_fraction=keep, rng=seed)
    kept = y[indices]
    assert np.sum(kept == 0) == per_class
    assert set(np.unique(kept)) == set(range(n_classes))
    assert len(np.unique(indices)) == len(indices)
