"""Unit tests for imbalance induction (Eq. 8) and bit-flip noise injection."""

import numpy as np
import pytest

from repro.data import (
    flip_bits_fixed_point,
    flip_bits_float32,
    imbalance_indices,
    make_imbalanced,
    perturb_array,
    perturb_model,
)
from repro.hdc import OnlineHD


class TestImbalance:
    def setup_method(self):
        self.y = np.repeat([0, 1, 2], 20)
        self.X = np.arange(len(self.y) * 2, dtype=float).reshape(-1, 2)

    def test_target_class_fully_kept(self):
        indices = imbalance_indices(self.y, target_class=0, keep_fraction=0.3, rng=0)
        kept_labels = self.y[indices]
        assert np.sum(kept_labels == 0) == 20

    def test_other_classes_shrunk(self):
        indices = imbalance_indices(self.y, target_class=0, keep_fraction=0.25, rng=0)
        kept_labels = self.y[indices]
        assert np.sum(kept_labels == 1) == 5
        assert np.sum(kept_labels == 2) == 5

    def test_keep_fraction_one_is_identity(self):
        indices = imbalance_indices(self.y, target_class=1, keep_fraction=1.0, rng=0)
        np.testing.assert_array_equal(indices, np.arange(len(self.y)))

    def test_no_class_disappears(self):
        indices = imbalance_indices(self.y, target_class=2, keep_fraction=0.0, rng=0)
        assert set(np.unique(self.y[indices])) == {0, 1, 2}

    def test_make_imbalanced_consistent_pairs(self):
        X_new, y_new = make_imbalanced(self.X, self.y, target_class=0, keep_fraction=0.5, rng=0)
        assert len(X_new) == len(y_new)
        # Every kept row must be one of the original rows with its own label.
        for row, label in zip(X_new, y_new):
            original = int(row[0] // 2)
            assert self.y[original] == label

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            imbalance_indices(self.y, 0, 1.5)

    def test_missing_target_class_raises(self):
        with pytest.raises(ValueError):
            imbalance_indices(self.y, 99, 0.5)


class TestBitflipArrays:
    def test_zero_probability_is_identity(self):
        values = np.random.default_rng(0).standard_normal(100)
        np.testing.assert_array_equal(flip_bits_fixed_point(values, 0.0), values)
        np.testing.assert_array_equal(flip_bits_float32(values, 0.0), values.astype(np.float32))

    def test_small_probability_small_change(self):
        values = np.random.default_rng(0).standard_normal(2000)
        perturbed = flip_bits_fixed_point(values, 1e-4, rng=0)
        changed = np.mean(perturbed != values)
        assert changed < 0.05

    def test_probability_one_changes_everything(self):
        values = np.random.default_rng(0).standard_normal(50)
        perturbed = flip_bits_fixed_point(values, 1.0, rng=0)
        assert np.any(perturbed != values)

    def test_higher_probability_more_distortion(self):
        values = np.random.default_rng(1).standard_normal(3000)
        low = np.abs(flip_bits_fixed_point(values, 1e-4, rng=0) - values).mean()
        high = np.abs(flip_bits_fixed_point(values, 1e-2, rng=0) - values).mean()
        assert high > low

    def test_fixed_point_perturbation_bounded(self):
        values = np.random.default_rng(0).standard_normal(500)
        perturbed = flip_bits_fixed_point(values, 0.01, bits=16, rng=0)
        # Values stay within twice the representable range.
        assert np.max(np.abs(perturbed)) < 4 * np.max(np.abs(values)) + 1.0

    def test_float32_flip_shape_preserved(self):
        values = np.random.default_rng(0).standard_normal((4, 7))
        assert flip_bits_float32(values, 1e-3, rng=0).shape == (4, 7)

    def test_perturb_array_modes(self):
        values = np.random.default_rng(0).standard_normal(100)
        for mode in ("fixed16", "fixed8", "float32"):
            assert perturb_array(values, 1e-3, mode=mode, rng=0).shape == values.shape
        with pytest.raises(ValueError):
            perturb_array(values, 1e-3, mode="int4")

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            flip_bits_fixed_point(np.ones(3), -0.1)
        with pytest.raises(ValueError):
            flip_bits_float32(np.ones(3), 1.5)

    def test_deterministic_with_seed(self):
        values = np.random.default_rng(0).standard_normal(200)
        first = flip_bits_fixed_point(values, 0.01, rng=42)
        second = flip_bits_fixed_point(values, 0.01, rng=42)
        np.testing.assert_array_equal(first, second)


class TestPerturbModel:
    def test_original_model_untouched(self, blobs):
        X, y = blobs
        model = OnlineHD(dim=100, epochs=1, seed=0).fit(X, y)
        original = model.class_hypervectors_.copy()
        perturb_model(model, 0.05, rng=0)
        np.testing.assert_array_equal(model.class_hypervectors_, original)

    def test_perturbed_copy_differs(self, blobs):
        X, y = blobs
        model = OnlineHD(dim=100, epochs=1, seed=0).fit(X, y)
        noisy = perturb_model(model, 0.1, rng=0)
        assert not np.allclose(noisy.class_hypervectors_, model.class_hypervectors_)

    def test_perturbed_model_still_predicts(self, blobs):
        X, y = blobs
        model = OnlineHD(dim=100, epochs=1, seed=0).fit(X, y)
        noisy = perturb_model(model, 1e-3, rng=0)
        assert noisy.predict(X).shape == y.shape

    def test_mlp_parameters_perturbed(self, blobs):
        from repro.baselines import MLPClassifier

        X, y = blobs
        mlp = MLPClassifier(hidden_layers=(8,), epochs=1, seed=0).fit(X, y)
        noisy = perturb_model(mlp, 0.05, rng=0)
        assert not np.allclose(noisy.weights_[0], mlp.weights_[0])

    def test_boosthd_learners_perturbed(self, blobs):
        from repro.core import BoostHD

        X, y = blobs
        model = BoostHD(total_dim=100, n_learners=2, epochs=1, seed=0).fit(X, y)
        noisy = perturb_model(model, 0.1, rng=0)
        assert not np.allclose(
            noisy.learners_[0].class_hypervectors_, model.learners_[0].class_hypervectors_
        )

    def test_unfitted_model_raises(self):
        with pytest.raises(ValueError):
            perturb_model(OnlineHD(dim=10), 0.1)
