"""Shared fixtures: small, fast synthetic classification problems.

Classifier unit tests use a tiny, well-separated Gaussian-blob problem so
every model can be fitted in milliseconds; dataset-level and experiment-level
tests use a miniature WESAD-like dataset generated once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_nurse_stress, load_wesad
from repro.experiments import ExperimentScale


def make_blobs(
    n_per_class: int = 30,
    n_classes: int = 3,
    n_features: int = 6,
    separation: float = 3.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Well-separated Gaussian blobs for fast classifier sanity checks."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((n_classes, n_features)) * separation
    X = np.vstack(
        [centers[label] + rng.standard_normal((n_per_class, n_features)) for label in range(n_classes)]
    )
    y = np.repeat(np.arange(n_classes), n_per_class)
    order = rng.permutation(len(y))
    return X[order], y[order]


@pytest.fixture(scope="session")
def blobs() -> tuple[np.ndarray, np.ndarray]:
    """A 3-class, 6-feature blob problem (90 samples)."""
    return make_blobs()


@pytest.fixture(scope="session")
def blobs_split(blobs) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic 70/30 split of the blob problem."""
    X, y = blobs
    rng = np.random.default_rng(1)
    order = rng.permutation(len(y))
    cut = int(0.7 * len(y))
    train, test = order[:cut], order[cut:]
    return X[train], X[test], y[train], y[test]


@pytest.fixture(scope="session")
def mini_wesad():
    """A miniature WESAD-like dataset (4 subjects, 5 windows per state)."""
    return load_wesad(n_subjects=4, windows_per_state=5, window_seconds=8.0, seed=0)


@pytest.fixture(scope="session")
def mini_wesad_split(mini_wesad):
    """Subject-wise split of the miniature WESAD-like dataset."""
    return mini_wesad.split(test_fraction=0.3, rng=0)


@pytest.fixture(scope="session")
def mini_nurse():
    """A miniature Nurse-Stress-like dataset (4 subjects, 4 windows per state)."""
    return load_nurse_stress(n_subjects=4, windows_per_state=4, window_seconds=8.0, seed=1)


@pytest.fixture(scope="session")
def suite_datasets(mini_wesad, mini_nurse):
    """Two-dataset mapping shared by runtime/suite-level tests.

    Generated once per session: suite tests should reuse this instead of
    regenerating their own datasets, which is what keeps tier-1 wall time
    flat as the runtime test matrix grows.
    """
    return {"WESAD": mini_wesad, "Nurse Stress Dataset": mini_nurse}


#: Tiny experiment scale for suite-level tests: every code path identical to
#: the quick scale, all sizes shrunk to milliseconds.
TINY_SCALE = ExperimentScale(
    name="tiny",
    total_dim=120,
    n_learners=4,
    n_runs=2,
    hd_epochs=2,
    dnn_hidden=(16,),
    dnn_epochs=5,
    wesad_subjects=4,
    nurse_subjects=4,
    stress_predict_subjects=4,
    windows_per_state=4,
    bitflip_trials=2,
    sweep_runs=2,
)


@pytest.fixture(scope="session")
def tiny_scale() -> ExperimentScale:
    """Millisecond-sized scale for suite-level and runtime tests."""
    return TINY_SCALE
