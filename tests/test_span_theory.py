"""Unit tests for the span-utilization and Marchenko–Pastur theory modules."""

import numpy as np
import pytest

from repro.core import (
    attenuation_factors,
    empirical_spectrum,
    kernel_axis_ratio,
    marchenko_pastur_bounds,
    mean_lambda,
    rank_ratio,
    singular_value_bounds,
    span_utilization,
    term_convergence_table,
    variance_lambda,
    variance_terms,
)


class TestSpanUtilization:
    def test_orthogonal_classes_no_attenuation(self):
        hypervectors = np.eye(3, 10)
        result = span_utilization(hypervectors)
        np.testing.assert_allclose(result.attenuation, 1.0)
        assert result.sp == pytest.approx(result.rank_ratio)
        assert result.mean_abs_cosine == pytest.approx(0.0)

    def test_aligned_classes_heavily_attenuated(self):
        base = np.random.default_rng(0).standard_normal(50)
        hypervectors = np.vstack([base, base * 1.01, base * 0.99])
        aligned = span_utilization(hypervectors)
        orthogonal = span_utilization(np.eye(3, 50))
        assert aligned.sp < orthogonal.sp
        assert aligned.mean_abs_cosine > 0.9

    def test_rank_ratio_matches_numpy(self):
        matrix = np.random.default_rng(0).standard_normal((3, 20))
        assert rank_ratio(matrix) == pytest.approx(np.linalg.matrix_rank(matrix) / 20)

    def test_rank_deficient_matrix(self):
        row = np.random.default_rng(0).standard_normal(30)
        matrix = np.vstack([row, 2 * row, -row])
        result = span_utilization(matrix)
        assert result.rank == 1

    def test_attenuation_lower_bound_is_one(self):
        matrix = np.random.default_rng(1).standard_normal((4, 100))
        assert np.all(attenuation_factors(matrix) >= 1.0)

    def test_single_class(self):
        result = span_utilization(np.ones((1, 10)))
        assert result.rank == 1
        assert result.mean_abs_cosine == 0.0

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            span_utilization(np.empty((0, 5)))

    def test_boosthd_uses_space_better_than_aligned_model(self, blobs):
        # The Figure 5 comparison: concatenated BoostHD class hypervectors
        # should be less mutually aligned than a single OnlineHD model of the
        # same total dimension trained on the same data.
        from repro.core import BoostHD
        from repro.hdc import OnlineHD

        X, y = blobs
        online = OnlineHD(dim=200, epochs=2, seed=0).fit(X, y)
        boost = BoostHD(total_dim=200, n_learners=4, epochs=2, seed=0).fit(X, y)
        online_span = span_utilization(online.class_hypervectors_)
        boost_span = span_utilization(boost.class_hypervectors())
        assert boost_span.sp >= online_span.sp * 0.5  # sanity: same order of magnitude
        assert boost_span.rank == online_span.rank


class TestMarchenkoPastur:
    def test_bounds_ordering(self):
        lower, upper = marchenko_pastur_bounds(0.5)
        assert 0 <= lower < upper

    def test_bounds_at_q_one(self):
        lower, upper = marchenko_pastur_bounds(1.0)
        assert lower == pytest.approx(0.0)
        assert upper == pytest.approx(4.0)

    def test_singular_value_bounds_are_sqrt(self):
        lower, upper = marchenko_pastur_bounds(0.3)
        sv_lower, sv_upper = singular_value_bounds(0.3)
        assert sv_lower == pytest.approx(np.sqrt(lower))
        assert sv_upper == pytest.approx(np.sqrt(upper))

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            marchenko_pastur_bounds(0.0)
        with pytest.raises(ValueError):
            marchenko_pastur_bounds(1.0, sigma=0.0)

    def test_mean_lambda_positive(self):
        assert mean_lambda(2.0) > 0

    def test_variance_terms_converge(self):
        # Equations 4-6 / Figure 2: every term settles as q grows — T2 and T3
        # vanish, and the change in T1 between successive large q values is
        # far smaller than between small q values.
        t1_small, t2_small, t3_small = variance_terms(2.0)
        t1_large, t2_large, t3_large = variance_terms(500.0)
        assert abs(t2_large) < abs(t2_small)
        assert abs(t3_large) < abs(t3_small) + 1e-9
        assert abs(t2_large) < 0.1
        assert abs(t3_large) < 0.1
        t1_larger = variance_terms(1000.0)[0]
        early_change = abs(variance_terms(4.0)[0] - t1_small)
        late_change = abs(t1_larger - t1_large)
        assert late_change < early_change
        assert abs(t1_larger) < abs(t1_small)

    def test_variance_lambda_bounded_for_large_q(self):
        values = [variance_lambda(q) for q in (100.0, 400.0, 1600.0)]
        assert max(values) - min(values) < 0.1 * abs(values[0]) + 0.1

    def test_axis_ratio_approaches_one_as_q_shrinks(self):
        # q = N_c / N_r; growing the hyperdimension D = N_r shrinks q.
        assert kernel_axis_ratio(0.001) > kernel_axis_ratio(0.5)
        assert kernel_axis_ratio(0.0001) > 0.95

    def test_term_convergence_table_structure(self):
        table = term_convergence_table(np.linspace(1, 50, 10))
        assert set(table) == {"q", "T1", "T2", "T3"}
        assert all(len(values) == 10 for values in table.values())

    def test_term_convergence_table_rejects_nonpositive_q(self):
        with pytest.raises(ValueError):
            term_convergence_table(np.array([0.0, 1.0]))


class TestEmpiricalSpectrum:
    def test_spectrum_within_mp_bounds(self):
        rng = np.random.default_rng(0)
        n_rows, n_cols = 2000, 40
        matrix = rng.standard_normal((n_rows, n_cols))
        spectrum = empirical_spectrum(matrix)
        q = n_cols / n_rows
        _, sv_upper = singular_value_bounds(q)
        assert spectrum.singular_values.max() <= sv_upper * 1.1
        assert spectrum.q == pytest.approx(q)

    def test_axis_ratio_grows_with_dimension(self):
        rng = np.random.default_rng(0)
        small = empirical_spectrum(rng.standard_normal((100, 30)))
        large = empirical_spectrum(rng.standard_normal((4000, 30)))
        assert large.axis_ratio > small.axis_ratio

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            empirical_spectrum(np.ones(10))
