"""Contracts of the resilience layer (:mod:`repro.resilience`) and its wiring.

The house invariant under test throughout: **no window lost, no window
double-scored, bit-identical predictions when no fault fires**.  Every
failure-handling behaviour is exercised *on demand* through the seeded chaos
harness — never by hoping a real fault occurs:

* **Policies** — :class:`Deadline` budgets, :class:`RetryPolicy` seeded
  deterministic backoff, and the :class:`CircuitBreaker` state machine are
  unit-tested against injected clocks (no sleeping, no flakiness).
* **Chaos harness** — :class:`FaultPlan` round-trips through JSON, fires at
  exact hit indices / seeded probabilities, and is **off by default**
  (asserted in a subprocess with a bare environment).
* **Scheduler** — bounded retries dead-letter poisonous windows instead of
  wedging the queue; ``max_pending`` sheds the oldest window as an explicit
  :data:`SHED` prediction; the accounting identity
  ``submitted == scored + shed + dead + pending`` holds at every quiescent
  point.
* **Degradation** — the ladder's hysteresis band, the degraded-flag
  stamping, and packed-tier parity against the registry's own
  bipolar-packed load of the same quantized artifact.
* **Integrity** — corrupt shared-memory segments are refused at attach and
  at swap; torn registry writes are refused at load; a crashed save leaves
  no published version behind.
* **Fabric** (tier-2, marked ``slow``) — hung workers are killed and
  recovered under ``call_timeout`` (drain/swap can never block forever),
  breakers trip on unrecoverable shards and re-close after a successful
  probe, a SIGKILL during swap leaves the fabric consistent, and workers
  fall back to a registry copy-load when their segment fails verification.
"""

import math
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core import BoostHD
from repro.engine import EngineError, compile_model
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CHAOS,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    DegradationLadder,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    RetryError,
    RetryPolicy,
    corrupt_bytes,
    inject,
    packed_fallback,
)
from repro.resilience.chaos import CHAOS_ENV
from repro.serving import (
    SHED,
    IntegrityError,
    MicroBatchScheduler,
    ModelRegistry,
    RegistryError,
    ServingFabric,
    StreamingService,
    attach_engine,
    cleanup_orphan_segments,
    publish_engine,
    verify_manifest,
)
from repro.serving.shm import SEGMENT_PREFIX, _process_start_token, _segment_name

pytestmark = pytest.mark.resilience

N_CHANNELS = 4
WINDOW = 32
N_FEATURES = N_CHANNELS * 4
SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class FakeClock:
    """Injectable monotonic clock for deterministic policy tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubScorer:
    """Deterministic scorer whose scores are a pure function of the input."""

    classes_ = np.array([0, 1, 2])

    def decision_function(self, X):
        X = np.asarray(X)
        total = X.sum(axis=1)
        return np.column_stack([total, -total, np.zeros(len(X))])


class FailingScorer:
    """A scorer that always raises — drives retry/dead-letter paths."""

    classes_ = np.array([0, 1, 2])

    def __init__(self):
        self.calls = 0

    def decision_function(self, X):
        self.calls += 1
        raise RuntimeError("scorer down")


@pytest.fixture(scope="module")
def fitted_model():
    rng = np.random.default_rng(17)
    X = rng.normal(size=(240, N_FEATURES))
    y = rng.integers(0, 3, size=240)
    return BoostHD(total_dim=1024, n_learners=4, epochs=2, seed=0).fit(X, y)


@pytest.fixture(scope="module")
def feature_batch():
    return np.random.default_rng(23).normal(size=(8, N_FEATURES))


def _chunks(n_sessions, n_chunks, seed=5):
    rng = np.random.default_rng(seed)
    return [
        (f"subject-{s}", rng.normal(size=(N_CHANNELS, WINDOW)))
        for _ in range(n_chunks)
        for s in range(n_sessions)
    ]


# ------------------------------------------------------------------ deadline
class TestDeadline:
    def test_unbounded_never_expires(self):
        deadline = Deadline.never()
        assert deadline.remaining() == math.inf
        assert not deadline.expired
        assert deadline.budget() is None
        assert deadline.budget(2.5) == 2.5
        deadline.check()  # never raises

    def test_budget_caps_by_remaining(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.budget(10.0) == pytest.approx(1.0)
        clock.advance(0.6)
        assert deadline.remaining() == pytest.approx(0.4)
        assert deadline.budget(0.1) == pytest.approx(0.1)

    def test_expired_deadline_checks_and_zero_budget(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        assert deadline.budget() == 0.0
        with pytest.raises(DeadlineExceeded, match="push"):
            deadline.check("push")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-0.1)


# --------------------------------------------------------------------- retry
class TestRetryPolicy:
    def test_schedule_is_deterministic_across_instances(self):
        a = RetryPolicy(max_attempts=5, seed=42)
        b = RetryPolicy(max_attempts=5, seed=42)
        assert a.delays() == b.delays()
        assert a == b
        assert RetryPolicy(max_attempts=5, seed=43).delays() != a.delays()

    def test_delays_bounded_by_max_delay_and_jitter(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, max_delay=0.5, jitter=0.2, seed=1
        )
        for delay in policy.delays():
            assert 0.0 < delay <= 0.5 * 1.2

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, max_delay=10.0, multiplier=2.0, jitter=0.0
        )
        assert policy.delays() == (0.1, 0.2, 0.4)

    def test_call_retries_then_succeeds(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=5, jitter=0.0, base_delay=0.01)
        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert slept == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_call_raises_retry_error_with_cause(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with pytest.raises(RetryError) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(KeyError("boom")), sleep=lambda s: None)
        assert isinstance(excinfo.value.__cause__, KeyError)

    def test_non_retryable_exception_propagates_immediately(self):
        calls = []

        def fail():
            calls.append(1)
            raise KeyError("not transient")

        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        with pytest.raises(KeyError):
            policy.call(fail, retry_on=(ValueError,), sleep=lambda s: None)
        assert len(calls) == 1

    def test_deadline_stops_retrying(self):
        clock = FakeClock()
        deadline = Deadline(0.0, clock=clock)
        calls = []

        def fail():
            calls.append(1)
            raise ValueError("transient")

        policy = RetryPolicy(max_attempts=10, base_delay=0.01)
        with pytest.raises(RetryError):
            policy.call(fail, deadline=deadline, sleep=lambda s: None)
        assert len(calls) == 1  # expired budget: no second attempt


# ------------------------------------------------------------------- breaker
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.trips == 0
        breaker.record_failure()
        assert breaker.state == OPEN and breaker.trips == 1

    def test_open_fails_fast_until_probe_then_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, probe_interval=10.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.time_until_probe() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.recoveries == 1

    def test_half_open_failure_re_trips(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and breaker.trips == 2
        assert not breaker.allow()

    def test_success_threshold_requires_consecutive_probes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            probe_interval=1.0,
            success_threshold=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_reset_forces_closed(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED and breaker.allow()

    def test_circuit_open_error_pickles_with_retry_in(self):
        error = CircuitOpenError("shard 2 open", retry_in=0.75)
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == "shard 2 open"
        assert clone.retry_in == 0.75


# --------------------------------------------------------------------- chaos
class TestChaosHarness:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="x", kind="explode", at=(1,))
        with pytest.raises(ValueError, match="can never fire"):
            FaultSpec(point="x", kind="exception")

    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultSpec(point="a", kind="delay", at=(2, 4), delay=0.5),
                FaultSpec(
                    point="b",
                    kind="exception",
                    probability=0.25,
                    match=(("method", "push_many"),),
                    limit=3,
                    message="injected",
                ),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_fires_at_exact_hit_indices_with_match_filter(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    point="p", kind="exception", at=(2,), match=(("shard", 1),)
                ),
            )
        )
        with inject(plan) as chaos:
            chaos.hit("p", shard=0)  # filtered: does not count as a hit
            chaos.hit("p", shard=1)  # matching hit 1: no fire
            with pytest.raises(FaultInjected) as excinfo:
                chaos.hit("p", shard=1)  # matching hit 2: fires
            assert excinfo.value.point == "p"
            chaos.hit("p", shard=1)  # hit 3: past `at`, silent
            assert chaos.fired("p") == 1

    def test_limit_caps_probabilistic_fires(self):
        plan = FaultPlan(
            seed=11,
            faults=(FaultSpec(point="p", kind="exception", probability=1.0, limit=2),),
        )
        with inject(plan) as chaos:
            for _ in range(2):
                with pytest.raises(FaultInjected):
                    chaos.hit("p")
            chaos.hit("p")  # limit reached: silent
            assert chaos.fired() == 2

    def test_probabilistic_firing_is_reproducible(self):
        plan = FaultPlan(
            seed=3,
            faults=(FaultSpec(point="p", kind="exception", probability=0.4),),
        )

        def pattern():
            fired = []
            with inject(plan) as chaos:
                for _ in range(40):
                    try:
                        chaos.hit("p")
                        fired.append(False)
                    except FaultInjected:
                        fired.append(True)
            return fired

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_corrupt_spec_is_returned_not_applied(self):
        spec = FaultSpec(point="p", kind="corrupt", at=(1,))
        with inject(FaultPlan(faults=(spec,))) as chaos:
            returned = chaos.hit("p")
            assert returned is spec
            data = bytearray(b"\x00" * 64)
            offsets = corrupt_bytes(data, chaos.spec_rng(spec), n_bytes=3)
            assert len(offsets) == 3
            assert all(data[offset] == 0xFF for offset in offsets)

    def test_inject_scoping_restores_previous_state(self):
        assert not CHAOS.enabled
        outer = FaultPlan(seed=1, faults=(FaultSpec(point="a", kind="delay", at=(1,)),))
        inner = FaultPlan(seed=2, faults=(FaultSpec(point="b", kind="delay", at=(1,)),))
        with inject(outer):
            with inject(inner):
                assert CHAOS.plan == inner
            assert CHAOS.enabled and CHAOS.plan == outer
        assert not CHAOS.enabled and CHAOS.plan is None

    def test_chaos_is_off_by_default_in_a_bare_interpreter(self):
        env = {k: v for k, v in os.environ.items() if k != CHAOS_ENV}
        env["PYTHONPATH"] = SRC_DIR
        probe = "from repro.resilience.chaos import CHAOS; print(CHAOS.enabled)"
        result = subprocess.run(
            [sys.executable, "-c", probe], capture_output=True, text=True, env=env
        )
        assert result.stdout.strip() == "False"

    def test_env_var_installs_the_plan(self):
        plan = FaultPlan(seed=9, faults=(FaultSpec(point="p", kind="delay", at=(1,)),))
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env[CHAOS_ENV] = plan.to_json()
        probe = (
            "from repro.resilience.chaos import CHAOS; "
            "print(CHAOS.enabled, CHAOS.plan.seed)"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe], capture_output=True, text=True, env=env
        )
        assert result.stdout.strip() == "True 9"


# ----------------------------------------------------- scheduler: dead letters
class TestSchedulerRetryBudget:
    def test_exhausted_windows_are_dead_lettered_not_requeued(self):
        scorer = FailingScorer()
        scheduler = MicroBatchScheduler(scorer, max_retries=2, max_wait=0.0)
        scheduler.submit("s", 0, np.ones(N_FEATURES))
        for _ in range(3):  # attempts 1..3; the third exceeds max_retries=2
            with pytest.raises(RuntimeError, match="scorer down"):
                scheduler.flush()
        assert scheduler.pending == 0
        assert len(scheduler.dead_letters) == 1
        letter = scheduler.dead_letters[0]
        assert (letter.session_id, letter.window_index) == ("s", 0)
        assert letter.attempts == 3
        assert "scorer down" in letter.error
        assert np.array_equal(letter.features, np.ones(N_FEATURES))
        assert scheduler.stats.windows_dead == 1
        assert scheduler.flush() == []  # the queue is no longer wedged

    def test_max_retries_none_retries_forever(self):
        scheduler = MicroBatchScheduler(FailingScorer(), max_retries=None, max_wait=0.0)
        scheduler.submit("s", 0, np.ones(N_FEATURES))
        for _ in range(10):
            with pytest.raises(RuntimeError):
                scheduler.flush()
        assert scheduler.pending == 1 and not scheduler.dead_letters

    def test_recovered_scorer_keeps_surviving_windows(self):
        class FlakyScorer(StubScorer):
            def __init__(self, failures):
                self.remaining = failures

            def decision_function(self, X):
                if self.remaining > 0:
                    self.remaining -= 1
                    raise RuntimeError("transient")
                return super().decision_function(X)

        scheduler = MicroBatchScheduler(FlakyScorer(2), max_retries=5, max_wait=0.0)
        scheduler.submit("s", 0, np.ones(N_FEATURES))
        for _ in range(2):
            with pytest.raises(RuntimeError):
                scheduler.flush()
        predictions = scheduler.flush()
        assert [p.window_index for p in predictions] == [0]
        assert scheduler.stats.score_failures == 2
        assert not scheduler.dead_letters

    def test_chaos_scheduler_score_point_drives_a_retry(self):
        plan = FaultPlan(
            faults=(FaultSpec(point="scheduler.score", kind="exception", at=(1,)),)
        )
        scheduler = MicroBatchScheduler(StubScorer(), max_wait=0.0)
        scheduler.submit("s", 0, np.ones(N_FEATURES))
        with inject(plan):
            with pytest.raises(FaultInjected):
                scheduler.flush()
            assert scheduler.pending == 1  # window survived the injected fault
            predictions = scheduler.flush()
        assert len(predictions) == 1 and not predictions[0].shed


# -------------------------------------------------------- scheduler: shedding
class TestSchedulerShedding:
    def test_overflow_sheds_oldest_as_explicit_predictions(self):
        scheduler = MicroBatchScheduler(
            StubScorer(), max_batch=64, max_wait=999.0, max_pending=2
        )
        for index in range(4):
            scheduler.submit("s", index, np.full(N_FEATURES, float(index)))
        assert scheduler.pending == 2
        shed = scheduler.pump()  # delivers shed markers even with no batch due
        assert [p.window_index for p in shed] == [0, 1]  # oldest first
        for prediction in shed:
            assert prediction.shed and prediction.label is SHED
            assert np.all(np.isnan(prediction.scores))
            assert prediction.batch_size == 0
            assert not prediction.scores.flags.writeable
        scored = scheduler.flush()
        assert sorted(p.window_index for p in scored) == [2, 3]
        assert not any(p.shed for p in scored)

    def test_accounting_identity_holds(self):
        scheduler = MicroBatchScheduler(
            StubScorer(), max_batch=64, max_wait=999.0, max_pending=3
        )
        for index in range(5):
            scheduler.submit("s", index, np.ones(N_FEATURES))
        stats = scheduler.stats
        assert stats.windows_submitted == 5
        assert (
            stats.windows_submitted
            == stats.windows_scored
            + stats.windows_shed
            + stats.windows_dead
            + scheduler.pending
        )
        scheduler.flush()
        assert (
            stats.windows_submitted
            == stats.windows_scored
            + stats.windows_shed
            + stats.windows_dead
            + scheduler.pending
        )
        assert stats.windows_scored == 3 and stats.windows_shed == 2

    def test_shed_sentinel_is_a_cross_process_singleton(self):
        assert pickle.loads(pickle.dumps(SHED)) is SHED
        assert repr(SHED) == "SHED"

    def test_shed_survives_a_raising_fused_call(self):
        scorer = FailingScorer()
        scheduler = MicroBatchScheduler(
            scorer, max_wait=999.0, max_pending=1, max_retries=None
        )
        scheduler.submit("s", 0, np.ones(N_FEATURES))
        scheduler.submit("s", 1, np.ones(N_FEATURES))  # sheds window 0
        with pytest.raises(RuntimeError):
            scheduler.flush()
        # The shed marker was not lost into the exception: still deliverable
        # (pump has no batch due under max_wait, so it only drains the shed).
        shed = scheduler.pump()
        assert [p.window_index for p in shed] == [0] and shed[0].shed


# ----------------------------------------------------------------- degrade
class TestDegradation:
    def test_packed_fallback_tiers(self, fitted_model):
        fixed = compile_model(fitted_model, precision="fixed16")
        packed = compile_model(fitted_model, precision="bipolar-packed")
        cascade = compile_model(fitted_model, precision="cascade-fixed16")
        assert packed_fallback(packed) is None
        assert packed_fallback(cascade) is cascade.packed_tier()
        fallback = packed_fallback(fixed)
        assert fallback is not None
        assert np.array_equal(fallback.classes_, fixed.classes_)
        # Derived tier shares the projection arrays instead of copying them.
        assert fallback._basis2 is fixed._basis2

    def test_fixed_tier_parity_anchor_is_the_stored_codes(
        self, fitted_model, feature_batch, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        registry.save("m", fitted_model, quantize="fixed16")
        fixed = registry.load_compiled("m", precision="fixed16")
        anchor = registry.load_compiled("m", precision="bipolar-packed")
        fallback = packed_fallback(fixed)
        np.testing.assert_array_equal(
            fallback.decision_function(feature_batch),
            anchor.decision_function(feature_batch),
        )

    def test_ladder_rejects_engines_without_a_cheaper_tier(self, fitted_model):
        packed = compile_model(fitted_model, precision="bipolar-packed")
        with pytest.raises(EngineError, match="no cheaper tier"):
            DegradationLadder(packed, deadline=1.0)

    def test_hysteresis_band(self, fitted_model):
        fixed = compile_model(fitted_model, precision="fixed16")
        ladder = DegradationLadder(fixed, deadline=1.0)
        assert ladder.scorer_for(0.1) == (fixed, False)
        scorer, degraded = ladder.scorer_for(0.8)  # above degrade_at=0.75
        assert degraded and scorer is ladder.degraded
        # Between restore_at and degrade_at: stays degraded (no oscillation).
        assert ladder.scorer_for(0.5) == (ladder.degraded, True)
        assert ladder.scorer_for(0.2) == (fixed, False)  # below restore_at
        assert ladder.activations == 1 and ladder.restorations == 1

    def test_scheduler_stamps_degraded_predictions(self, fitted_model):
        fixed = compile_model(fitted_model, precision="fixed16")
        ladder = DegradationLadder(fixed, deadline=1.0)
        clock = FakeClock()
        scheduler = MicroBatchScheduler(
            fixed, max_wait=999.0, clock=clock, degradation=ladder
        )
        features = np.random.default_rng(31).normal(size=N_FEATURES)
        scheduler.submit("s", 0, features)
        clock.advance(0.9)  # oldest wait blows through the degrade threshold
        degraded = scheduler.flush()
        assert degraded[0].degraded
        np.testing.assert_array_equal(
            degraded[0].scores,
            ladder.degraded.decision_function(features[None])[0],
        )
        scheduler.submit("s", 1, features)  # no wait: pressure cleared
        restored = scheduler.flush()
        assert not restored[0].degraded
        np.testing.assert_array_equal(
            restored[0].scores, fixed.decision_function(features[None])[0]
        )

    def test_unpressured_ladder_is_bit_identical_to_no_ladder(self, fitted_model):
        fixed = compile_model(fitted_model, precision="fixed16")
        rng = np.random.default_rng(37)
        plain = MicroBatchScheduler(fixed, max_wait=0.0)
        laddered = MicroBatchScheduler(
            fixed,
            max_wait=0.0,
            degradation=DegradationLadder(fixed, deadline=3600.0),
        )
        for index in range(6):
            features = rng.normal(size=N_FEATURES)
            plain.submit("s", index, features)
            laddered.submit("s", index, features)
        for expected, actual in zip(plain.flush(), laddered.flush()):
            assert not actual.degraded
            assert actual.label == expected.label
            np.testing.assert_array_equal(actual.scores, expected.scores)

    def test_service_wires_the_ladder_and_swap_rebuilds_it(self, fitted_model):
        fixed = compile_model(fitted_model, precision="fixed16")
        service = StreamingService(
            fixed,
            n_channels=N_CHANNELS,
            window_samples=WINDOW,
            degrade_deadline=0.5,
            max_pending=128,
            max_retries=2,
        )
        assert service.scheduler.degradation is not None
        assert service.scheduler.degradation.full is fixed
        assert service.scheduler.max_pending == 128
        assert service.scheduler.max_retries == 2
        replacement = compile_model(fitted_model, precision="fixed16")
        service.swap_scorer(replacement)
        assert service.scheduler.degradation.full is replacement


# --------------------------------------------------------------- shm integrity
class TestSegmentIntegrity:
    @pytest.fixture(autouse=True)
    def _require_shm(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no POSIX shm filesystem")

    def test_clean_publish_verifies_and_attaches(self, fitted_model, feature_batch):
        engine = compile_model(fitted_model, precision="fixed16")
        shared = publish_engine(engine)
        try:
            verify_manifest(shared.manifest)
            attached = attach_engine(shared.manifest)
            try:
                np.testing.assert_array_equal(
                    attached.engine.decision_function(feature_batch),
                    engine.decision_function(feature_batch),
                )
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_corrupt_segment_is_refused(self, fitted_model):
        engine = compile_model(fitted_model, precision="fixed16")
        plan = FaultPlan(
            seed=3, faults=(FaultSpec(point="shm.publish", kind="corrupt", at=(1,)),)
        )
        with inject(plan):
            shared = publish_engine(engine)
        try:
            with pytest.raises(IntegrityError, match="checksum"):
                verify_manifest(shared.manifest)
            with pytest.raises(IntegrityError):
                attach_engine(shared.manifest)
            # Explicit opt-out still attaches (forensics path).
            attached = attach_engine(shared.manifest, verify=False)
            attached.close()
        finally:
            shared.unlink()

    def test_pre_checksum_manifests_still_verify(self, fitted_model):
        engine = compile_model(fitted_model, precision="fixed16")
        shared = publish_engine(engine)
        try:
            legacy = dict(shared.manifest)
            legacy["arrays"] = {
                key: {k: v for k, v in spec.items() if k != "blake2b"}
                for key, spec in shared.manifest["arrays"].items()
            }
            verify_manifest(legacy)  # no digests to check: accepted
        finally:
            shared.unlink()

    def test_segment_names_carry_the_publisher_start_token(self):
        token = _process_start_token(os.getpid())
        assert token.isdigit()
        name = _segment_name(3)
        assert name.startswith(f"{SEGMENT_PREFIX}{os.getpid()}.{token}_")
        assert name.endswith("_g3")

    def test_cleanup_reclaims_recycled_pid_segments(self):
        from multiprocessing import resource_tracker, shared_memory

        token = _process_start_token(os.getpid())
        live_name = f"{SEGMENT_PREFIX}{os.getpid()}.{token}_cafe0001_g0"
        # Same (live) pid but a different start token: the original publisher
        # died and the pid was recycled — the segment is an orphan.
        stale_name = f"{SEGMENT_PREFIX}{os.getpid()}.1_cafe0002_g0"
        keeper = shared_memory.SharedMemory(name=live_name, create=True, size=64)
        stale = shared_memory.SharedMemory(name=stale_name, create=True, size=64)
        try:
            resource_tracker.unregister(stale._name, "shared_memory")
        except Exception:
            pass
        stale.close()
        try:
            reclaimed = cleanup_orphan_segments()
            assert stale_name in reclaimed
            assert live_name not in reclaimed
        finally:
            keeper.close()
            keeper.unlink()


# ----------------------------------------------------------- registry durability
class TestRegistryDurability:
    def test_checksum_recorded_and_tamper_refused(self, fitted_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("m", fitted_model)
        record = registry.describe("m")
        assert record.checksum
        registry.load("m")  # clean load passes verification
        archive = tmp_path / "m" / f"v{record.version}" / "model.npz"
        data = bytearray(archive.read_bytes())
        data[len(data) // 2] ^= 0xFF
        archive.write_bytes(bytes(data))
        with pytest.raises(RegistryError, match="checksum"):
            registry.load("m")

    def test_torn_write_is_refused_at_load(self, fitted_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        plan = FaultPlan(
            faults=(FaultSpec(point="registry.save", kind="torn", at=(1,)),)
        )
        with inject(plan):
            registry.save("t", fitted_model)
        with pytest.raises(RegistryError, match="checksum"):
            registry.load("t")

    def test_crashed_save_publishes_nothing(self, fitted_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        plan = FaultPlan(
            faults=(FaultSpec(point="registry.save", kind="exception", at=(1,)),)
        )
        with inject(plan):
            with pytest.raises(FaultInjected):
                registry.save("c", fitted_model)
        assert "c" not in registry.models()
        registry.save("c", fitted_model)  # staging debris does not block retry
        assert registry.versions("c") == [1]
        registry.load("c")


# ------------------------------------------------------------- fabric resilience
def _make_registry(tmp_path, fitted_model):
    registry = ModelRegistry(tmp_path)
    registry.save("stress", fitted_model, quantize="fixed16")
    return registry


def _fabric_options():
    return dict(
        n_workers=2,
        n_channels=N_CHANNELS,
        window_samples=WINDOW,
        max_wait=0.0,
    )


class TestFabricIntegrity:
    def test_swap_rejects_a_corrupt_publication(self, fitted_model, tmp_path):
        registry = _make_registry(tmp_path, fitted_model)
        engine = registry.load_compiled("stress", precision="fixed16")
        with ServingFabric(engine, serial=True, **_fabric_options()) as fabric:
            fabric.open_session("subject-0")
            generation = fabric.generation
            plan = FaultPlan(
                faults=(FaultSpec(point="shm.publish", kind="corrupt", at=(1,)),)
            )
            with inject(plan):
                result = fabric.swap(
                    registry.load_compiled("stress", precision="fixed16")
                )
            assert not result.promoted
            assert "integrity" in result.reason
            assert fabric.generation == generation
            # The fabric still serves, and a clean swap promotes normally.
            session, chunk = _chunks(1, 1)[0]
            assert fabric.push(session, chunk) + fabric.drain()
            clean = fabric.swap(registry.load_compiled("stress", precision="fixed16"))
            assert clean.promoted and fabric.generation == generation + 1

    @pytest.mark.slow
    def test_workers_fall_back_to_registry_copy_load(self, fitted_model, tmp_path):
        registry = _make_registry(tmp_path, fitted_model)
        plan = FaultPlan(
            faults=(FaultSpec(point="shm.publish", kind="corrupt", at=(1,)),)
        )
        with inject(plan):
            fabric = ServingFabric.from_registry(
                registry, "stress", precision="fixed16", **_fabric_options()
            )
        with fabric:
            if fabric.serial:
                pytest.skip("process pools unavailable on this platform")
            for index in range(4):
                fabric.open_session(f"subject-{index}")
            predictions = fabric.route(_chunks(4, 2)) + fabric.drain()
            assert len(predictions) == 8
            stats = fabric.stats()
            assert sum(shard["integrity_fallbacks"] for shard in stats) == 2
            # Copy-loaded workers score the same artifact: predictions match
            # the single-process reference bit for bit.
            reference = StreamingService(
                registry.load_compiled("stress", precision="fixed16"),
                n_channels=N_CHANNELS,
                window_samples=WINDOW,
                max_wait=0.0,
            )
            for index in range(4):
                reference.open_session(f"subject-{index}")
            expected = []
            for session, chunk in _chunks(4, 2):
                expected.extend(reference.push(session, chunk))
            expected.extend(reference.drain())
            key = lambda p: (p.session_id, p.window_index)
            for actual, wanted in zip(
                sorted(predictions, key=key), sorted(expected, key=key)
            ):
                assert key(actual) == key(wanted)
                assert actual.label == wanted.label
                np.testing.assert_array_equal(actual.scores, wanted.scores)


@pytest.mark.slow
class TestFabricChaos:
    def test_hung_worker_is_killed_and_recovered(self, fitted_model):
        # Chaos hit counters are per worker *process*: a rebuilt worker
        # installs the plan fresh, so its retried call lands on hit 1 and
        # passes while hit 2 of any incarnation hangs for 30s.
        engine = compile_model(fitted_model, precision="fixed16")
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    point="fabric.worker.call",
                    kind="delay",
                    delay=30.0,
                    at=(2,),
                    match=(("method", "push_many"),),
                ),
            )
        )
        with inject(plan):
            with ServingFabric(
                engine, call_timeout=1.0, **_fabric_options()
            ) as fabric:
                if fabric.serial:
                    pytest.skip("process pools unavailable on this platform")
                for index in range(4):
                    fabric.open_session(f"subject-{index}")
                start = time.monotonic()
                predictions = []
                for session, chunk in _chunks(4, 2):
                    predictions.extend(fabric.push(session, chunk))
                predictions.extend(fabric.drain())
                elapsed = time.monotonic() - start
                # Every wedged call was converted into kill + rebuild +
                # retry, far under the injected 30s hang per fire.
                assert elapsed < 15.0
                assert fabric.timeouts >= 1
                assert fabric.restarts >= 1
                assert len(predictions) == 8  # nothing lost, nothing doubled

    def test_drain_cannot_block_on_a_wedged_worker(self, fitted_model):
        engine = compile_model(fitted_model, precision="fixed16")
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    point="fabric.worker.call",
                    kind="delay",
                    delay=30.0,
                    probability=1.0,
                    match=(("method", "drain"),),
                ),
            )
        )
        from repro.resilience.chaos import install, uninstall

        install(plan)
        try:
            with ServingFabric(
                engine, call_timeout=1.0, **_fabric_options()
            ) as fabric:
                if fabric.serial:
                    pytest.skip("process pools unavailable on this platform")
                fabric.open_session("subject-0")
                start = time.monotonic()
                # Every incarnation of the worker hangs its drain: the call
                # fails *bounded* (timeout, kill, rebuild, retried once)
                # instead of blocking for the 30s hang.
                with pytest.raises(TimeoutError):
                    fabric.drain()
                assert time.monotonic() - start < 10.0
                assert fabric.timeouts >= 1
                assert fabric.restarts >= 1
                # Fault source removed: the wedged worker is killed on the
                # next timeout and its clean replacement drains fine.
                uninstall()
                assert fabric.drain() == []
        finally:
            uninstall()

    def test_breaker_trips_on_unrecoverable_shard_then_heals(self, fitted_model):
        engine = compile_model(fitted_model, precision="fixed16")
        plan = FaultPlan(
            faults=(
                FaultSpec(
                    point="fabric.worker.call",
                    kind="sigkill",
                    probability=1.0,
                    match=(("method", "push_many"),),
                ),
            )
        )
        options = _fabric_options()
        with inject(plan):
            with ServingFabric(
                engine,
                call_timeout=5.0,
                breaker_options={"failure_threshold": 2, "probe_interval": 0.3},
                **options,
            ) as fabric:
                if fabric.serial:
                    pytest.skip("process pools unavailable on this platform")
                for index in range(8):
                    fabric.open_session(f"subject-{index}")
                chunks = _chunks(8, 1)
                failures = 0
                tripped = 0
                for session, chunk in chunks * 2:
                    try:
                        fabric.push(session, chunk)
                    except CircuitOpenError as error:
                        tripped += 1
                        assert error.retry_in >= 0.0
                    except Exception:
                        failures += 1
                assert failures >= 2  # rebuild-and-retry also died
                assert any(breaker.trips >= 1 for breaker in fabric.breakers)
                assert tripped >= 1  # open shards failed fast, no worker call
                # Fault source removed: the next due probe is a recovery.
                from repro.resilience.chaos import uninstall

                uninstall()
                time.sleep(0.35)
                recovered = []
                for session, chunk in chunks:
                    try:
                        recovered.extend(fabric.push(session, chunk))
                    except CircuitOpenError:
                        pass
                recovered.extend(fabric.drain())
                assert all(b.state == CLOSED for b in fabric.breakers)
                assert sum(b.recoveries for b in fabric.breakers) >= 1
                assert recovered  # serving resumed

    def test_worker_death_during_swap_keeps_the_fabric_consistent(
        self, fitted_model
    ):
        engine = compile_model(fitted_model, precision="fixed16")
        replacement = compile_model(fitted_model, precision="fixed16")
        with ServingFabric(engine, call_timeout=5.0, **_fabric_options()) as fabric:
            if fabric.serial:
                pytest.skip("process pools unavailable on this platform")
            for index in range(4):
                fabric.open_session(f"subject-{index}")
            before = fabric.route(_chunks(4, 1, seed=5)) + fabric.drain()
            assert len(before) == 4
            # A worker dies right as the swap begins: the shard walk hits a
            # broken pool, rebuilds the worker and retries its swap call.
            os.kill(fabric.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.2)
            result = fabric.swap(replacement)
            assert result.promoted
            assert fabric.restarts >= 1
            generations = {info["generation"] for info in fabric.worker_info()}
            assert generations == {fabric.generation}  # no torn deployment
            after = fabric.route(_chunks(4, 1, seed=6)) + fabric.drain()
            assert len(after) == 4  # every post-swap window delivered once
