"""Unit tests for model-selection helpers."""

import numpy as np
import pytest

from repro.baselines import (
    DecisionTreeClassifier,
    cross_val_score,
    kfold_indices,
    leave_one_subject_out,
    repeated_runs,
)


class TestKFold:
    def test_folds_partition_all_samples(self):
        folds = list(kfold_indices(20, 4, rng=0))
        assert len(folds) == 4
        test_union = np.sort(np.concatenate([test for _, test in folds]))
        np.testing.assert_array_equal(test_union, np.arange(20))

    def test_train_test_disjoint(self):
        for train, test in kfold_indices(17, 5, rng=0):
            assert not set(train) & set(test)
            assert len(train) + len(test) == 17

    def test_too_many_folds_raises(self):
        with pytest.raises(ValueError):
            list(kfold_indices(3, 5))

    def test_single_fold_raises(self):
        with pytest.raises(ValueError):
            list(kfold_indices(10, 1))


class TestCrossValScore:
    def test_scores_shape_and_range(self, blobs):
        X, y = blobs
        scores = cross_val_score(DecisionTreeClassifier(max_depth=4, seed=0), X, y, n_folds=3, rng=0)
        assert scores.shape == (3,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_high_accuracy_on_easy_problem(self, blobs):
        X, y = blobs
        scores = cross_val_score(DecisionTreeClassifier(max_depth=5, seed=0), X, y, n_folds=3, rng=0)
        assert scores.mean() > 0.8


class TestLeaveOneSubjectOut:
    def test_each_subject_held_out_once(self):
        subjects = np.array([0, 0, 1, 1, 2, 2])
        splits = list(leave_one_subject_out(subjects))
        assert [held for _, _, held in splits] == [0, 1, 2]
        for train, test, held in splits:
            assert np.all(subjects[test] == held)
            assert not np.any(subjects[train] == held)


class TestRepeatedRuns:
    def test_mean_and_std(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        result = repeated_runs(
            lambda run: DecisionTreeClassifier(max_depth=4, seed=run),
            X_train,
            y_train,
            X_test,
            y_test,
            n_runs=3,
        )
        assert len(result.scores) == 3
        assert 0.0 <= result.mean <= 1.0
        assert result.std >= 0.0

    def test_invalid_run_count_raises(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        with pytest.raises(ValueError):
            repeated_runs(
                lambda run: DecisionTreeClassifier(seed=run),
                X_train,
                y_train,
                X_test,
                y_test,
                n_runs=0,
            )
