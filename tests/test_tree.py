"""Unit tests for decision trees (classification and gradient regression)."""

import numpy as np
import pytest

from repro.baselines import DecisionTreeClassifier, GradientTreeRegressor


class TestDecisionTreeClassifier:
    def test_fits_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        tree = DecisionTreeClassifier(max_depth=5, seed=0).fit(X_train, y_train)
        assert tree.score(X_test, y_test) > 0.85

    def test_perfect_on_training_data_without_depth_limit(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_max_depth_respected(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=2, seed=0).fit(X, y)
        assert tree.depth() <= 2

    def test_stump_separates_simple_threshold(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(int)
        stump = DecisionTreeClassifier(max_depth=1, seed=0).fit(X, y)
        assert stump.score(X, y) == 1.0

    def test_predict_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        probabilities = tree.predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_sample_weight_shifts_decision(self):
        # Two overlapping points; weighting decides which label wins.
        X = np.array([[0.0], [0.0]])
        y = np.array([0, 1])
        heavy_zero = DecisionTreeClassifier(seed=0).fit(X, y, sample_weight=np.array([10.0, 1.0]))
        heavy_one = DecisionTreeClassifier(seed=0).fit(X, y, sample_weight=np.array([1.0, 10.0]))
        assert heavy_zero.predict(np.array([[0.0]]))[0] == 0
        assert heavy_one.predict(np.array([[0.0]]))[0] == 1

    def test_min_samples_leaf_limits_splits(self, blobs):
        X, y = blobs
        tree = DecisionTreeClassifier(min_samples_leaf=20, seed=0).fit(X, y)
        deep = DecisionTreeClassifier(min_samples_leaf=1, seed=0).fit(X, y)
        assert tree.root_.count_leaves() <= deep.root_.count_leaves()

    def test_entropy_criterion_works(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        tree = DecisionTreeClassifier(max_depth=5, criterion="entropy", seed=0).fit(X_train, y_train)
        assert tree.score(X_test, y_test) > 0.85

    def test_constant_features_produce_leaf(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert tree.root_.is_leaf

    def test_single_class_is_leaf(self):
        X = np.random.default_rng(0).standard_normal((10, 2))
        y = np.zeros(10)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert tree.root_.is_leaf
        assert np.all(tree.predict(X) == 0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="variance")

    def test_max_features_sqrt(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        tree = DecisionTreeClassifier(max_features="sqrt", seed=0).fit(X_train, y_train)
        assert tree.score(X_test, y_test) > 0.7


class TestGradientTreeRegressor:
    def test_fits_piecewise_constant_target(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        target = np.where(X[:, 0] > 0.5, 2.0, -1.0)
        # Squared loss: gradient = prediction - target with prediction 0.
        tree = GradientTreeRegressor(max_depth=2, reg_lambda=0.0).fit(X, -target, np.ones(100))
        predictions = tree.predict(X)
        assert np.mean((predictions - target) ** 2) < 0.05

    def test_leaf_value_is_regularised_newton_step(self):
        X = np.zeros((4, 1))
        gradient = np.array([1.0, 1.0, 1.0, 1.0])
        hessian = np.ones(4)
        tree = GradientTreeRegressor(max_depth=1, reg_lambda=1.0).fit(X, gradient, hessian)
        assert tree.predict(np.zeros((1, 1)))[0] == pytest.approx(-4.0 / 5.0)

    def test_gamma_suppresses_weak_splits(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((50, 1))
        gradient = rng.normal(0, 0.01, 50)
        tree = GradientTreeRegressor(max_depth=3, gamma=10.0).fit(X, gradient, np.ones(50))
        assert tree.root_.is_leaf

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            GradientTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            GradientTreeRegressor(reg_lambda=-1.0)

    def test_shape_validation(self):
        tree = GradientTreeRegressor()
        with pytest.raises(ValueError):
            tree.fit(np.ones((5, 2)), np.ones(4), np.ones(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientTreeRegressor().predict(np.ones((2, 2)))
