"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.baselines import (
    accuracy,
    confusion_matrix,
    macro_accuracy,
    macro_f1,
    median_absolute_deviation,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0

    def test_zero(self):
        assert accuracy(np.array([1, 1]), np.array([2, 2])) == 0.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 1])) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestMacroAccuracy:
    def test_equals_accuracy_when_balanced_and_symmetric(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 0])
        assert macro_accuracy(y_true, y_pred) == pytest.approx(accuracy(y_true, y_pred))

    def test_insensitive_to_majority_inflation(self):
        # 90 majority correct, minority completely wrong: plain accuracy looks
        # high, macro accuracy exposes the collapse.
        y_true = np.array([0] * 90 + [1] * 10)
        y_pred = np.array([0] * 100)
        assert accuracy(y_true, y_pred) == pytest.approx(0.9)
        assert macro_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 2, 1])
        assert macro_accuracy(y, y) == 1.0

    def test_ignores_classes_absent_from_truth(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 2, 1, 2])
        assert macro_accuracy(y_true, y_pred) == pytest.approx(0.5)


class TestConfusionMatrix:
    def test_diagonal_for_perfect_prediction(self):
        y = np.array([0, 1, 2, 1])
        matrix = confusion_matrix(y, y)
        np.testing.assert_array_equal(matrix, np.diag([1, 2, 1]))

    def test_row_sums_equal_class_counts(self):
        y_true = np.array([0, 0, 1, 2, 2, 2])
        y_pred = np.array([0, 1, 1, 0, 2, 2])
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix.sum(axis=1), [2, 1, 3])

    def test_explicit_label_order(self):
        matrix = confusion_matrix(np.array([1]), np.array([1]), labels=np.array([0, 1, 2]))
        assert matrix.shape == (3, 3)
        assert matrix[1, 1] == 1


class TestPrecisionRecallF1:
    def test_perfect_scores(self):
        y = np.array(["a", "b", "a"])
        scores = precision_recall_f1(y, y)
        for precision, recall, f1 in scores.values():
            assert precision == recall == f1 == 1.0

    def test_undefined_precision_is_zero(self):
        y_true = np.array([0, 0, 1])
        y_pred = np.array([0, 0, 0])
        precision, recall, f1 = precision_recall_f1(y_true, y_pred)[1]
        assert precision == 0.0 and recall == 0.0 and f1 == 0.0

    def test_macro_f1_between_zero_and_one(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 50)
        y_pred = rng.integers(0, 3, 50)
        assert 0.0 <= macro_f1(y_true, y_pred) <= 1.0


class TestMedianAbsoluteDeviation:
    def test_constant_array_is_zero(self):
        assert median_absolute_deviation(np.full(10, 3.0)) == 0.0

    def test_known_value(self):
        assert median_absolute_deviation(np.array([1.0, 2.0, 3.0, 4.0, 5.0])) == 1.0

    def test_robust_to_outlier(self):
        base = np.ones(99)
        with_outlier = np.concatenate([base, [1000.0]])
        assert median_absolute_deviation(with_outlier) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_absolute_deviation(np.array([]))
