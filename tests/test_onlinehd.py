"""Unit tests for the OnlineHD and CentroidHD classifiers."""

import numpy as np
import pytest

from repro.baselines.base import NotFittedError
from repro.hdc import CentroidHD, NonlinearEncoder, OnlineHD


class TestCentroidHD:
    def test_fits_and_predicts_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = CentroidHD(dim=400, seed=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.8

    def test_class_hypervector_shape(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        model = CentroidHD(dim=300, seed=0).fit(X_train, y_train)
        assert model.class_hypervectors_.shape == (3, 300)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            CentroidHD(dim=100).predict(np.ones((2, 4)))

    def test_decision_function_shape(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = CentroidHD(dim=200, seed=0).fit(X_train, y_train)
        assert model.decision_function(X_test).shape == (len(X_test), 3)

    def test_sample_weight_changes_model(self, blobs):
        X, y = blobs
        uniform = CentroidHD(dim=200, seed=0).fit(X, y)
        weights = np.where(y == 0, 10.0, 1.0)
        weighted = CentroidHD(dim=200, seed=0).fit(X, y, sample_weight=weights)
        assert not np.allclose(uniform.class_hypervectors_, weighted.class_hypervectors_)


class TestOnlineHD:
    def test_fits_and_predicts_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = OnlineHD(dim=400, epochs=3, seed=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_adaptive_refit_improves_or_matches_centroid(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        encoder = NonlinearEncoder(X_train.shape[1], 300, rng=0)
        centroid = CentroidHD(dim=300, encoder=encoder, seed=0).fit(X_train, y_train)
        online = OnlineHD(dim=300, epochs=5, encoder=encoder, seed=0).fit(X_train, y_train)
        assert online.score(X_train, y_train) >= centroid.score(X_train, y_train) - 1e-9

    def test_deterministic_with_seed(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        first = OnlineHD(dim=200, epochs=2, seed=5).fit(X_train, y_train)
        second = OnlineHD(dim=200, epochs=2, seed=5).fit(X_train, y_train)
        np.testing.assert_array_equal(first.predict(X_test), second.predict(X_test))

    def test_zero_epochs_is_pure_bundling(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        model = OnlineHD(dim=150, epochs=0, seed=0).fit(X_train, y_train)
        assert model.class_hypervectors_.shape == (3, 150)

    def test_predict_proba_rows_sum_to_one(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X_train, y_train)
        probabilities = model.predict_proba(X_test)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0.0)

    def test_predictions_are_known_classes(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X_train, y_train)
        assert set(np.unique(model.predict(X_test))) <= set(model.classes_)

    def test_string_labels_supported(self, blobs):
        X, y = blobs
        labels = np.array(["neutral", "stress", "amusement"])[y]
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X, labels)
        assert set(np.unique(model.predict(X))) <= set(labels)

    def test_sample_weight_bootstrap_path(self, blobs):
        X, y = blobs
        weights = np.random.default_rng(0).uniform(0.1, 1.0, size=len(y))
        model = OnlineHD(dim=150, epochs=2, bootstrap=True, seed=0)
        model.fit(X, y, sample_weight=weights)
        assert model.score(X, y) > 0.7

    def test_sample_weight_scaled_path(self, blobs):
        X, y = blobs
        weights = np.random.default_rng(0).uniform(0.1, 1.0, size=len(y))
        model = OnlineHD(dim=150, epochs=2, bootstrap=False, seed=0)
        model.fit(X, y, sample_weight=weights)
        assert model.score(X, y) > 0.7

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OnlineHD(dim=100).predict(np.ones((2, 3)))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            OnlineHD(dim=100, lr=0.0)
        with pytest.raises(ValueError):
            OnlineHD(dim=100, epochs=-1)
        with pytest.raises(ValueError):
            OnlineHD(dim=100, bandwidth=-1.0)

    def test_mismatched_xy_raises(self):
        with pytest.raises(ValueError):
            OnlineHD(dim=50).fit(np.ones((10, 3)), np.zeros(9))

    def test_nan_features_raise(self):
        X = np.ones((10, 3))
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            OnlineHD(dim=50).fit(X, np.zeros(10))

    def test_two_class_problem(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 1, (30, 4)), rng.normal(2, 1, (30, 4))])
        y = np.repeat([0, 1], 30)
        model = OnlineHD(dim=300, epochs=3, seed=0).fit(X, y)
        assert model.score(X, y) > 0.9


class TestPartialFit:
    def test_one_epoch_matches_one_adaptive_epoch_of_fit(self, blobs_split):
        """fit(epochs=k) + partial_fit == fit(epochs=k+1), bit for bit."""
        X_train, _, y_train, _ = blobs_split
        for k in (0, 2):
            reference = OnlineHD(dim=80, epochs=k + 1, seed=7).fit(X_train, y_train)
            incremental = OnlineHD(dim=80, epochs=k, seed=7).fit(X_train, y_train)
            incremental.partial_fit(X_train, y_train)
            np.testing.assert_array_equal(
                incremental.class_hypervectors_, reference.class_hypervectors_
            )

    def test_weighted_bootstrap_epoch_matches_fit(self, blobs):
        X, y = blobs
        weights = np.linspace(1.0, 3.0, len(y))
        weights /= weights.sum()
        reference = OnlineHD(dim=80, epochs=1, bootstrap=True, seed=3).fit(
            X, y, sample_weight=weights
        )
        incremental = OnlineHD(dim=80, epochs=0, bootstrap=True, seed=3).fit(
            X, y, sample_weight=weights
        )
        incremental.partial_fit(X, y, sample_weight=weights)
        np.testing.assert_array_equal(
            incremental.class_hypervectors_, reference.class_hypervectors_
        )

    def test_repeated_partial_fit_keeps_accuracy(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = OnlineHD(dim=100, epochs=1, seed=0).fit(X_train, y_train)
        baseline = model.score(X_test, y_test)
        for _ in range(3):
            model.partial_fit(X_train, y_train)
        assert model.score(X_test, y_test) >= baseline - 0.1

    def test_unseen_class_grows_model(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        model = OnlineHD(dim=80, epochs=1, seed=1).fit(X_train, y_train)
        n_before = len(model.classes_)
        novel = np.full(5, 99)
        model.partial_fit(X_train[:5], novel)
        assert len(model.classes_) == n_before + 1
        assert 99 in model.classes_
        assert model.class_hypervectors_.shape[0] == n_before + 1
        # The new class is reachable: its own samples now score highest on it.
        assert set(model.predict(X_train[:5])) <= set(model.classes_)

    def test_partial_fit_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OnlineHD(dim=50).partial_fit(np.ones((4, 3)), np.zeros(4))

    def test_feature_mismatch_raises(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        model = OnlineHD(dim=50, epochs=0, seed=0).fit(X_train, y_train)
        with pytest.raises(ValueError, match="features"):
            model.partial_fit(np.ones((4, X_train.shape[1] + 1)), np.zeros(4))


class TestEncoderFromParams:
    def test_round_trip_is_bit_identical(self, blobs):
        X, _ = blobs
        original = NonlinearEncoder(X.shape[1], 64, bandwidth=1.7, rng=0)
        rebuilt = NonlinearEncoder.from_params(
            original.basis, original.bias, bandwidth=original.bandwidth
        )
        np.testing.assert_array_equal(rebuilt.encode(X), original.encode(X))
        assert rebuilt.dim == original.dim
        assert rebuilt.in_features == original.in_features

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            NonlinearEncoder.from_params(np.ones(4), np.ones(4))
        with pytest.raises(ValueError):
            NonlinearEncoder.from_params(np.ones((4, 2)), np.ones(3))
        with pytest.raises(ValueError):
            NonlinearEncoder.from_params(np.ones((4, 2)), np.ones(4), bandwidth=0.0)
