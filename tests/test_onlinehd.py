"""Unit tests for the OnlineHD and CentroidHD classifiers."""

import numpy as np
import pytest

from repro.baselines.base import NotFittedError
from repro.hdc import CentroidHD, NonlinearEncoder, OnlineHD


class TestCentroidHD:
    def test_fits_and_predicts_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = CentroidHD(dim=400, seed=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.8

    def test_class_hypervector_shape(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        model = CentroidHD(dim=300, seed=0).fit(X_train, y_train)
        assert model.class_hypervectors_.shape == (3, 300)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            CentroidHD(dim=100).predict(np.ones((2, 4)))

    def test_decision_function_shape(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = CentroidHD(dim=200, seed=0).fit(X_train, y_train)
        assert model.decision_function(X_test).shape == (len(X_test), 3)

    def test_sample_weight_changes_model(self, blobs):
        X, y = blobs
        uniform = CentroidHD(dim=200, seed=0).fit(X, y)
        weights = np.where(y == 0, 10.0, 1.0)
        weighted = CentroidHD(dim=200, seed=0).fit(X, y, sample_weight=weights)
        assert not np.allclose(uniform.class_hypervectors_, weighted.class_hypervectors_)


class TestOnlineHD:
    def test_fits_and_predicts_blobs(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = OnlineHD(dim=400, epochs=3, seed=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_adaptive_refit_improves_or_matches_centroid(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        encoder = NonlinearEncoder(X_train.shape[1], 300, rng=0)
        centroid = CentroidHD(dim=300, encoder=encoder, seed=0).fit(X_train, y_train)
        online = OnlineHD(dim=300, epochs=5, encoder=encoder, seed=0).fit(X_train, y_train)
        assert online.score(X_train, y_train) >= centroid.score(X_train, y_train) - 1e-9

    def test_deterministic_with_seed(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        first = OnlineHD(dim=200, epochs=2, seed=5).fit(X_train, y_train)
        second = OnlineHD(dim=200, epochs=2, seed=5).fit(X_train, y_train)
        np.testing.assert_array_equal(first.predict(X_test), second.predict(X_test))

    def test_zero_epochs_is_pure_bundling(self, blobs_split):
        X_train, _, y_train, _ = blobs_split
        model = OnlineHD(dim=150, epochs=0, seed=0).fit(X_train, y_train)
        assert model.class_hypervectors_.shape == (3, 150)

    def test_predict_proba_rows_sum_to_one(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X_train, y_train)
        probabilities = model.predict_proba(X_test)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0.0)

    def test_predictions_are_known_classes(self, blobs_split):
        X_train, X_test, y_train, _ = blobs_split
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X_train, y_train)
        assert set(np.unique(model.predict(X_test))) <= set(model.classes_)

    def test_string_labels_supported(self, blobs):
        X, y = blobs
        labels = np.array(["neutral", "stress", "amusement"])[y]
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X, labels)
        assert set(np.unique(model.predict(X))) <= set(labels)

    def test_sample_weight_bootstrap_path(self, blobs):
        X, y = blobs
        weights = np.random.default_rng(0).uniform(0.1, 1.0, size=len(y))
        model = OnlineHD(dim=150, epochs=2, bootstrap=True, seed=0)
        model.fit(X, y, sample_weight=weights)
        assert model.score(X, y) > 0.7

    def test_sample_weight_scaled_path(self, blobs):
        X, y = blobs
        weights = np.random.default_rng(0).uniform(0.1, 1.0, size=len(y))
        model = OnlineHD(dim=150, epochs=2, bootstrap=False, seed=0)
        model.fit(X, y, sample_weight=weights)
        assert model.score(X, y) > 0.7

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            OnlineHD(dim=100).predict(np.ones((2, 3)))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            OnlineHD(dim=100, lr=0.0)
        with pytest.raises(ValueError):
            OnlineHD(dim=100, epochs=-1)
        with pytest.raises(ValueError):
            OnlineHD(dim=100, bandwidth=-1.0)

    def test_mismatched_xy_raises(self):
        with pytest.raises(ValueError):
            OnlineHD(dim=50).fit(np.ones((10, 3)), np.zeros(9))

    def test_nan_features_raise(self):
        X = np.ones((10, 3))
        X[0, 0] = np.nan
        with pytest.raises(ValueError):
            OnlineHD(dim=50).fit(X, np.zeros(10))

    def test_two_class_problem(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(-2, 1, (30, 4)), rng.normal(2, 1, (30, 4))])
        y = np.repeat([0, 1], 30)
        model = OnlineHD(dim=300, epochs=3, seed=0).fit(X, y)
        assert model.score(X, y) > 0.9
