"""Contracts of the integer-domain quantized inference engines.

Four layers of guarantees, from exact to statistical:

* **Exact integer-domain identities** — packed XOR + popcount scoring is
  bit-identical to :func:`~repro.hdc.similarity.hamming_similarity` on the
  unpacked signs (including dims not divisible by 8, where pad bits must
  never count); fixed-point integer matmuls equal the float cosine of the
  dequantized representatives to machine precision; the popcount LUT
  fallback equals :func:`numpy.bitwise_count`.
* **Argmax parity with the float engine** — fixed16/fixed8 predictions are
  *identical* to the float64 engine's on the mini Table I datasets across
  model kinds and partitioners; packed-bipolar (a genuinely lossy 1-bit
  model) must agree on >= 85 % of windows and lose <= 0.15 accuracy.
* **Registry byte-exactness** — ``ModelRegistry.load(..., precision=...)``
  builds engines whose stored codes are byte-for-byte the archived codes,
  with float64 dequantization provably never invoked (the dequantizer is
  monkeypatched to explode during the load).
* **Packed bit-flip sweeps** — the XOR-mask backend draws the same flip
  patterns as the ``mode="bipolar"`` float reference at a fixed seed, so
  the accuracy distributions of the two backends coincide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.robustness import bitflip_sweep
from repro.core.boosthd import BoostHD
from repro.core.partition import SharedPartitioner
from repro.engine import (
    EngineError,
    FixedPointModel,
    PackedBipolarModel,
    compile_model,
)
from repro.hdc import (
    OnlineHD,
    bipolarize,
    cosine_similarity,
    hamming_similarity,
    pack_signs,
    packed_hamming_similarity,
    quantize_codes,
    quantize_model,
    unpack_signs,
)
from repro.hdc.quantize import SCHEME_DTYPES, from_fixed_point
from repro.hdc.similarity import _popcount_rows_lut, popcount_rows
from repro.serving import AdaptiveModel, ModelRegistry, StreamingService

pytestmark = pytest.mark.quant

PRECISIONS = ("bipolar-packed", "fixed16", "fixed8")
MODEL_KINDS = ("onlinehd", "boosthd-independent", "boosthd-shared", "boosthd-vote")

sign_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def _fit(kind, X, y):
    if kind == "onlinehd":
        # dim deliberately not divisible by 8: the packed path must pad.
        return OnlineHD(dim=500, epochs=3, seed=0).fit(X, y)
    options = dict(total_dim=600, n_learners=6, epochs=3, seed=0)
    if kind == "boosthd-shared":
        options["partitioner"] = SharedPartitioner(600, 6)
    if kind == "boosthd-vote":
        options["aggregation"] = "vote"
    return BoostHD(**options).fit(X, y)


@pytest.fixture(scope="module")
def fitted_models(mini_wesad_split):
    X_train, _, y_train, _ = mini_wesad_split
    return {kind: _fit(kind, X_train, y_train) for kind in MODEL_KINDS}


def _hamming_reference(engine, model, encoded):
    """Hamming-scored reference with the engine's exact aggregation."""
    learners = model.learners_ if getattr(model, "learners_", None) else [model]
    scores = np.zeros((len(encoded), len(engine.classes_)))
    rows = np.arange(len(encoded))
    for block, alpha, learner in zip(engine.blocks, engine._alphas, learners):
        sims = hamming_similarity(
            encoded[:, block.start : block.stop], learner.class_hypervectors_
        )
        if engine.aggregation == "vote":
            winner = np.argmax(sims, axis=1)
            scores[rows, block.columns[winner]] += alpha
        else:
            scores[:, block.columns] += alpha * sims
    return scores / engine._total_alpha


# ------------------------------------------------------- exact integer paths
@pytest.mark.parametrize("kind", MODEL_KINDS)
def test_packed_scores_equal_hamming_reference(fitted_models, mini_wesad_split, kind):
    """XOR + popcount scoring is bit-identical to hamming on unpacked signs."""
    _, X_test, _, _ = mini_wesad_split
    model = fitted_models[kind]
    engine = compile_model(model, dtype=np.float64, precision="bipolar-packed")
    encoded = engine.encode(X_test)
    reference = _hamming_reference(engine, model, encoded)
    np.testing.assert_array_equal(engine.decision_function(X_test), reference)
    np.testing.assert_array_equal(engine.score_encoded(encoded), reference)


def test_packed_prepack_matches_direct_scoring(fitted_models, mini_wesad_split):
    _, X_test, _, _ = mini_wesad_split
    engine = compile_model(
        fitted_models["boosthd-independent"], dtype=np.float64,
        precision="bipolar-packed",
    )
    queries = engine.prepack(X_test)
    np.testing.assert_array_equal(
        engine.score_packed(queries), engine.decision_function(X_test)
    )
    np.testing.assert_array_equal(
        engine.predict_packed(queries), engine.predict(X_test)
    )


@pytest.mark.parametrize("precision", ("fixed16", "fixed8"))
def test_fixed_scores_equal_dequantized_cosine(
    fitted_models, mini_wesad_split, precision
):
    """Integer-accumulated matmul == float cosine of dequantized operands."""
    _, X_test, _, _ = mini_wesad_split
    model = fitted_models["boosthd-independent"]
    engine = compile_model(model, dtype=np.float64, precision=precision)
    encoded = engine.encode(X_test)
    query_max = (1 << (engine.bits - 1)) - 1

    reference = np.zeros((len(X_test), len(engine.classes_)))
    for block, alpha in zip(engine.blocks, engine._alphas):
        view = encoded[:, block.start : block.stop]
        magnitude = np.abs(view).max(axis=1)
        quantized = np.round(view * (query_max / magnitude)[:, None])
        dequantized_query = quantized * (magnitude / query_max)[:, None]
        dequantized_classes = np.asarray(block.codes.T, dtype=float) * block.scale
        sims = cosine_similarity(dequantized_query, dequantized_classes)
        reference[:, block.columns] += alpha * sims
    reference /= engine._total_alpha

    np.testing.assert_allclose(
        engine.decision_function(X_test), reference, rtol=1e-10, atol=1e-12
    )


@pytest.mark.parametrize("precision", PRECISIONS)
def test_scoring_is_batch_composition_invariant(
    fitted_models, mini_wesad_split, precision
):
    """A window's scores are identical alone, in any batch, at any chunk size.

    Quantization happens per row (packed: per-row signs; fixed: per-row
    query scale), so the scoring stage never couples rows of a chunk.  The
    test pins that on one pre-encoded matrix — the encoding matmul itself
    is outside the claim, since BLAS does not promise bitwise shape
    invariance.
    """
    _, X_test, _, _ = mini_wesad_split
    model = fitted_models["boosthd-independent"]
    engine = compile_model(model, dtype=np.float64, precision=precision)
    chunked = compile_model(
        model, dtype=np.float64, precision=precision, chunk_size=7
    )
    encoded = engine.encode(X_test)
    batch_scores = engine.score_encoded(encoded)
    np.testing.assert_array_equal(chunked.score_encoded(encoded), batch_scores)
    for index in (0, len(X_test) - 1):
        np.testing.assert_array_equal(
            engine.score_encoded(encoded[index][None])[0], batch_scores[index]
        )


def test_fixed8_uses_int32_accumulator_fixed16_int64(fitted_models):
    model = fitted_models["boosthd-independent"]
    assert compile_model(model, precision="fixed8")._accumulator is np.int32
    assert compile_model(model, precision="fixed16")._accumulator is np.int64


# --------------------------------------------------- parity with float engine
def _assert_parity(model, X_test, y_test, precision, label):
    float_engine = compile_model(model, dtype=np.float64)
    quant_engine = compile_model(model, dtype=np.float64, precision=precision)
    expected = float_engine.predict(X_test)
    produced = quant_engine.predict(X_test)
    if precision.startswith("fixed"):
        # Fixed-point quantization error is far below the class margins:
        # argmax-identical to the float engine.
        np.testing.assert_array_equal(produced, expected)
    else:
        # 1-bit sign quantization is genuinely lossy and the mini test
        # splits are tiny (one window is ~7 % of parity), so the unit gate
        # is accuracy-based; the strict >= 0.85 parity gate runs at the
        # paper's D_total = 10000 in benchmarks/bench_quant.py.
        parity = float(np.mean(produced == expected))
        assert parity >= 0.6, f"packed parity {parity:.3f} on {label}"
        float_acc = float(np.mean(expected == y_test))
        quant_acc = float(np.mean(produced == y_test))
        assert quant_acc >= float_acc - 0.2


@pytest.mark.parametrize("kind", MODEL_KINDS)
@pytest.mark.parametrize("precision", PRECISIONS)
def test_argmax_parity_with_float_engine(
    fitted_models, mini_wesad_split, kind, precision
):
    _, X_test, _, y_test = mini_wesad_split
    _assert_parity(fitted_models[kind], X_test, y_test, precision, kind)


@pytest.mark.parametrize("precision", PRECISIONS)
def test_argmax_parity_on_nurse_dataset(mini_nurse, precision):
    X_train, X_test, y_train, y_test = mini_nurse.split(test_fraction=0.3, rng=0)
    model = BoostHD(total_dim=600, n_learners=6, epochs=3, seed=0).fit(X_train, y_train)
    _assert_parity(model, X_test, y_test, precision, "nurse")


@pytest.mark.parametrize("precision", PRECISIONS)
def test_quantized_engine_mirrors_compiled_api(fitted_models, mini_wesad_split, precision):
    _, X_test, _, _ = mini_wesad_split
    engine = compile_model(fitted_models["boosthd-independent"], precision=precision)
    scores = engine.decision_function(X_test)
    assert scores.shape == (len(X_test), len(engine.classes_))
    probabilities = engine.predict_proba(X_test)
    np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-12)
    encoded = engine.encode(X_test[:3])
    assert encoded.shape == (3, engine.total_dim)
    assert engine.precision == precision
    assert engine.class_memory_bytes() > 0
    assert type(engine).__name__ in repr(engine)


def test_memory_reduction_vs_float64_engine(fitted_models):
    model = fitted_models["boosthd-independent"]
    float_engine = compile_model(model, dtype=np.float64)
    float_bytes = sum(block.class_weights.nbytes for block in float_engine.blocks)
    packed = compile_model(model, precision="bipolar-packed")
    fixed8 = compile_model(model, precision="fixed8")
    assert float_bytes / packed.class_memory_bytes() >= 8.0
    assert float_bytes / fixed8.class_memory_bytes() >= 4.0


def test_unknown_precision_raises(fitted_models):
    with pytest.raises(EngineError, match="precision"):
        compile_model(fitted_models["onlinehd"], precision="float16")


# ------------------------------------------------------ hypothesis properties
@settings(max_examples=50, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 6), st.integers(1, 67)),
        elements=sign_floats,
    )
)
def test_pack_unpack_round_trip_is_bipolarize(batch):
    packed = pack_signs(batch)
    assert packed.dtype == np.uint8
    assert packed.shape == (batch.shape[0], (batch.shape[1] + 7) // 8)
    np.testing.assert_array_equal(
        unpack_signs(packed, batch.shape[1]), bipolarize(batch)
    )


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 67).flatmap(
        lambda dim: st.tuples(
            arrays(np.float64, st.tuples(st.integers(1, 5), st.just(dim)),
                   elements=sign_floats),
            arrays(np.float64, st.tuples(st.integers(1, 5), st.just(dim)),
                   elements=sign_floats),
        )
    )
)
def test_packed_hamming_equals_float_hamming(pair):
    lhs, rhs = pair
    dim = lhs.shape[1]
    expected = hamming_similarity(lhs, rhs)
    produced = packed_hamming_similarity(pack_signs(lhs), pack_signs(rhs), dim)
    np.testing.assert_array_equal(produced, expected)


@settings(max_examples=60, deadline=None)
@given(
    arrays(
        np.uint8,
        st.tuples(st.integers(1, 5), st.integers(1, 33)),
        elements=st.integers(0, 255),
    )
)
def test_popcount_lut_equals_bitwise_count(words):
    counts = _popcount_rows_lut(words)
    assert counts.shape == (words.shape[0],)
    if hasattr(np, "bitwise_count"):
        np.testing.assert_array_equal(
            counts, np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
        )
    reference = np.unpackbits(words, axis=1).sum(axis=1)
    np.testing.assert_array_equal(counts, reference)


def test_popcount_rows_handles_uint64_words():
    rng = np.random.default_rng(3)
    words = rng.integers(0, 1 << 63, (4, 7)).astype(np.uint64)
    as_bytes = words.view(np.uint8).reshape(4, -1)
    np.testing.assert_array_equal(
        popcount_rows(words), np.unpackbits(as_bytes, axis=1).sum(axis=1)
    )


@settings(max_examples=50, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 4), st.integers(1, 40)),
        elements=sign_floats,
    ),
    st.sampled_from(("fixed16", "fixed8")),
)
def test_quantize_codes_matches_quantize_model(values, scheme):
    codes, fmt = quantize_codes(values, scheme)
    assert codes.dtype == SCHEME_DTYPES[scheme]
    np.testing.assert_array_equal(
        from_fixed_point(codes.astype(np.int64), fmt), quantize_model(values, scheme)
    )


def test_pad_bits_never_count_as_matches():
    """Explicit unpadded-dim edge: dim=13 packs to 2 bytes with 3 pad bits."""
    ones = np.ones((1, 13))
    sim = packed_hamming_similarity(pack_signs(ones), pack_signs(-ones), 13)
    # All 13 real bits mismatch; if the 3 pad bits counted as matches the
    # similarity would be 3/16 instead of exactly zero.
    assert sim == 0.0
    assert packed_hamming_similarity(pack_signs(ones), pack_signs(ones), 13) == 1.0
    with pytest.raises(ValueError, match="does not match dim"):
        packed_hamming_similarity(pack_signs(ones), pack_signs(ones), 24)


@pytest.mark.parametrize("dim", (1, 7, 9, 63, 65, 127, 129, 191))
def test_pad_bit_semantics_at_word_boundary_widths(dim):
    """Every dim % 64 != 0 edge around the uint64 word boundaries.

    Opposite sign patterns must score exactly 0 and identical ones exactly 1
    — any pad-bit leak shows up as a (8*ceil(dim/8) - dim)/dim offset.  The
    engine's padded-word path (``_pad_packed``) reduces to the same packed
    bytes, so this parametrization is the direct coverage for the widths the
    engine tests only hit incidentally.
    """
    rng = np.random.default_rng(dim)
    values = np.where(rng.random((3, dim)) < 0.5, -1.0, 1.0)
    packed = pack_signs(values)
    assert packed.shape == (3, (dim + 7) // 8)
    np.testing.assert_array_equal(
        np.diagonal(packed_hamming_similarity(packed, packed, dim)),
        np.ones(3),
    )
    np.testing.assert_array_equal(
        np.diagonal(packed_hamming_similarity(packed, pack_signs(-values), dim)),
        np.zeros(3),
    )
    np.testing.assert_array_equal(
        packed_hamming_similarity(packed, packed, dim),
        hamming_similarity(values, values),
    )


@pytest.mark.parametrize("width", (1, 2, 3, 7, 8, 9, 16, 17))
def test_popcount_rows_lut_path_forced_by_monkeypatch(monkeypatch, width):
    """popcount_rows on the LUT path == np.bitwise_count path, bit for bit.

    ``_HAS_BITWISE_COUNT`` is monkeypatched off so the parity holds on
    NumPy >= 2 installs too, where the fallback would otherwise never run;
    odd widths exercise the trailing-byte gather of the 16-bit table.
    """
    import repro.hdc.similarity as similarity_module

    rng = np.random.default_rng(width)
    words = rng.integers(0, 256, (5, width)).astype(np.uint8)
    reference = np.unpackbits(words, axis=1).sum(axis=1)
    monkeypatch.setattr(similarity_module, "_HAS_BITWISE_COUNT", False)
    produced = popcount_rows(words)
    assert produced.dtype == np.int64
    np.testing.assert_array_equal(produced, reference)
    monkeypatch.setattr(similarity_module, "_HAS_BITWISE_COUNT", True)
    if hasattr(np, "bitwise_count"):
        np.testing.assert_array_equal(popcount_rows(words), reference)


def test_packed_engine_scores_identically_on_lut_path(
    fitted_models, mini_wesad_split, monkeypatch
):
    """The whole packed engine is popcount-backend independent."""
    import repro.hdc.similarity as similarity_module

    _, X_test, _, _ = mini_wesad_split
    engine = compile_model(
        fitted_models["onlinehd"], dtype=np.float64, precision="bipolar-packed"
    )
    encoded = engine.encode(X_test)
    expected = engine.score_encoded(encoded)
    monkeypatch.setattr(similarity_module, "_HAS_BITWISE_COUNT", False)
    np.testing.assert_array_equal(engine.score_encoded(encoded), expected)


# ------------------------------------------------------------------ registry
def _blob_problem(seed=0, n_features=10):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((3, n_features)) * 2.5
    X = np.vstack([c + rng.standard_normal((30, n_features)) for c in centers])
    y = np.repeat(np.arange(3), 30)
    X_test = np.vstack([c + rng.standard_normal((12, n_features)) for c in centers])
    y_test = np.repeat(np.arange(3), 12)
    return X, y, X_test, y_test


@pytest.fixture(scope="module")
def registry_setup(tmp_path_factory):
    X, y, X_test, y_test = _blob_problem()
    model = BoostHD(total_dim=480, n_learners=4, epochs=3, seed=1).fit(X, y)
    registry = ModelRegistry(tmp_path_factory.mktemp("quant-registry"))
    registry.save("float-artifact", model)
    registry.save("fixed8-artifact", model, quantize="fixed8")
    registry.save("fixed16-artifact", model, quantize="fixed16")
    return registry, model, X_test, y_test


def _forbid_dequantization(monkeypatch):
    import repro.serving.registry as registry_module

    def explode(*args, **kwargs):
        raise AssertionError("stored codes were dequantized to float64")

    monkeypatch.setattr(registry_module, "from_fixed_point", explode)


def test_registry_load_fixed_precision_without_dequantize(registry_setup, monkeypatch):
    registry, model, X_test, _ = registry_setup
    _forbid_dequantization(monkeypatch)
    engine = registry.load("fixed8-artifact", precision="fixed8", dtype=np.float64)
    assert isinstance(engine, FixedPointModel)
    with np.load(registry.describe("fixed8-artifact").path / "model.npz") as archive:
        for index, block in enumerate(engine.blocks):
            stored = archive[f"learner_{index}_codes"]
            assert stored.dtype == np.int8
            assert block.codes.dtype == np.int8
            np.testing.assert_array_equal(block.codes.T, stored)
            assert block.scale == float(archive[f"learner_{index}_scale"])
    assert set(engine.predict(X_test)) <= set(model.classes_)


def test_registry_load_packed_precision_without_dequantize(registry_setup, monkeypatch):
    registry, _, X_test, _ = registry_setup
    _forbid_dequantization(monkeypatch)
    engine = registry.load("fixed16-artifact", precision="bipolar-packed")
    assert isinstance(engine, PackedBipolarModel)
    with np.load(registry.describe("fixed16-artifact").path / "model.npz") as archive:
        for index, block in enumerate(engine.blocks):
            stored_signs = pack_signs(archive[f"learner_{index}_codes"])
            np.testing.assert_array_equal(block.packed, stored_signs)
    assert len(engine.predict(X_test)) == len(X_test)


def test_registry_widening_reuses_codes(registry_setup, monkeypatch):
    """fixed8 codes are valid fixed16 codes under the same scale."""
    registry, _, _, _ = registry_setup
    _forbid_dequantization(monkeypatch)
    engine = registry.load("fixed8-artifact", precision="fixed16")
    with np.load(registry.describe("fixed8-artifact").path / "model.npz") as archive:
        for index, block in enumerate(engine.blocks):
            assert block.codes.dtype == np.int16
            np.testing.assert_array_equal(
                block.codes.T, archive[f"learner_{index}_codes"].astype(np.int16)
            )
            assert block.scale == float(archive[f"learner_{index}_scale"])


def test_registry_float_artifact_equals_compiled_engines(registry_setup):
    registry, model, X_test, _ = registry_setup
    for precision in PRECISIONS:
        loaded = registry.load_compiled(
            "float-artifact", precision=precision, dtype=np.float64
        )
        reference = compile_model(model, dtype=np.float64, precision=precision)
        np.testing.assert_array_equal(
            loaded.decision_function(X_test), reference.decision_function(X_test)
        )


def test_registry_narrowing_requantizes(registry_setup):
    """fixed16 -> fixed8 cannot reuse codes; it must requantize (documented)."""
    registry, _, X_test, _ = registry_setup
    engine = registry.load("fixed16-artifact", precision="fixed8")
    assert isinstance(engine, FixedPointModel)
    assert engine.bits == 8
    assert all(block.codes.dtype == np.int8 for block in engine.blocks)
    assert len(engine.predict(X_test)) == len(X_test)


def test_registry_load_rejects_options_without_precision(registry_setup):
    registry, _, _, _ = registry_setup
    from repro.serving import RegistryError

    with pytest.raises(RegistryError, match="precision"):
        registry.load("float-artifact", dtype=np.float64)
    with pytest.raises(RegistryError, match="precision"):
        registry.load_compiled("float-artifact", precision="int4")


def test_registry_legacy_load_unchanged(registry_setup):
    registry, model, X_test, _ = registry_setup
    restored = registry.load("float-artifact")
    np.testing.assert_array_equal(restored.predict(X_test), model.predict(X_test))


# ---------------------------------------------------------- serving precision
def test_adaptive_model_serving_precision_recompiles_quantized():
    X, y, X_test, y_test = _blob_problem(seed=4)
    model = BoostHD(total_dim=320, n_learners=4, epochs=2, seed=2).fit(X, y)
    served = AdaptiveModel(model, precision="fixed8")
    assert served.precision == "fixed8"
    assert isinstance(served.compiled, FixedPointModel)
    recompiles = served.recompiles
    served.feedback(X_test[:6], y_test[:6])
    assert served.stale
    assert isinstance(served.compiled, FixedPointModel)
    assert served.recompiles == recompiles + 1
    served.set_precision("bipolar-packed")
    assert isinstance(served.compiled, PackedBipolarModel)
    # Typos fail at configuration time, not on the first scoring call.
    with pytest.raises(ValueError, match="serving precision"):
        served.set_precision("fixed-8")
    with pytest.raises(ValueError, match="serving precision"):
        AdaptiveModel(model, precision="int4")


def test_streaming_service_serving_precision():
    X, y, _, _ = _blob_problem(seed=5, n_features=24)
    model = BoostHD(total_dim=320, n_learners=4, epochs=2, seed=2).fit(X, y)
    service = StreamingService(
        model, n_channels=6, window_samples=32, precision="bipolar-packed"
    )
    assert isinstance(service.scheduler.scorer, PackedBipolarModel)
    with pytest.raises(ValueError, match="requantize"):
        StreamingService(
            model.compile(), n_channels=6, window_samples=32, precision="fixed8"
        )
    with pytest.raises(TypeError, match="serving precision"):
        StreamingService(
            object(), n_channels=6, window_samples=32, precision="fixed8"
        )


# ----------------------------------------------------------- packed bit flips
def test_flip_class_bits_zero_probability_is_identity():
    X, y, X_test, _ = _blob_problem(seed=6)
    engine = compile_model(
        BoostHD(total_dim=320, n_learners=4, epochs=2, seed=3).fit(X, y),
        precision="bipolar-packed",
    )
    queries = engine.prepack(X_test)
    baseline = engine.score_packed(queries)
    clone = engine.flip_class_bits(0.0, np.random.default_rng(0))
    np.testing.assert_array_equal(clone.score_packed(queries), baseline)
    noisy = engine.flip_class_bits(0.3, np.random.default_rng(0))
    assert not np.array_equal(noisy.score_packed(queries), baseline)
    # The original engine must be untouched.
    np.testing.assert_array_equal(engine.score_packed(queries), baseline)


def test_packed_bitflip_sweep_statistically_equals_bipolar_reference():
    """Fixed seed => same sampled flip patterns => matching accuracy curves.

    The packed backend and the ``mode="bipolar"`` reference draw their flip
    masks from the same generator in the same per-learner order, so the
    perturbations are identical.  The two scorers differ only in the query
    representation — the packed engine sign-quantizes queries too (the
    deployment-faithful 1-bit model) while the float reference scores
    full-precision queries against the flipped bipolar classes — so the
    accuracy curves agree statistically (close absolute means, near-equal
    degradation slopes) rather than pointwise.
    """
    X, y, X_test, y_test = _blob_problem(seed=7)
    model = BoostHD(
        total_dim=320, n_learners=4, epochs=3, seed=4, aggregation="vote"
    ).fit(X, y)
    probabilities = (0.01, 0.05, 0.2)
    packed = bitflip_sweep(
        model, X_test, y_test, probabilities,
        n_trials=10, backend="packed", rng=123, model_name="packed",
    )
    reference = bitflip_sweep(
        model, X_test, y_test, probabilities,
        n_trials=10, mode="bipolar", rng=123, model_name="reference",
    )
    assert packed.probabilities.tolist() == list(probabilities)
    np.testing.assert_allclose(packed.means, reference.means, atol=0.1)
    packed_drop = packed.means[0] - packed.means
    reference_drop = reference.means[0] - reference.means
    np.testing.assert_allclose(packed_drop, reference_drop, atol=0.1)
    # Both sweeps degrade: heavy flipping hurts accuracy.
    assert packed.means[-1] <= packed.means[0] + 1e-9
    assert packed.points[0].scores.shape == (10,)


def test_bitflip_sweep_rejects_unknown_backend():
    X, y, X_test, y_test = _blob_problem(seed=8)
    model = OnlineHD(dim=128, epochs=2, seed=0).fit(X, y)
    with pytest.raises(ValueError, match="backend"):
        bitflip_sweep(model, X_test, y_test, (0.01,), backend="gpu")
    # The packed backend is the 1-bit representation; it must not silently
    # answer a fixed-point robustness question.
    with pytest.raises(ValueError, match="bipolar"):
        bitflip_sweep(model, X_test, y_test, (0.01,), mode="fixed8", backend="packed")
    result = bitflip_sweep(
        model, X_test, y_test, (0.01,), n_trials=2, mode="bipolar", backend="packed",
        rng=0,
    )
    assert len(result.points) == 1


def test_bipolar_reference_clean_baseline_is_quantized_model():
    """accuracy_loss under mode="bipolar" measures flip damage only."""
    from repro.data.noise import perturb_model

    X, y, X_test, y_test = _blob_problem(seed=9)
    model = OnlineHD(dim=256, epochs=2, seed=1).fit(X, y)
    sweep = bitflip_sweep(
        model, X_test, y_test, (0.0,), n_trials=3, mode="bipolar", rng=5,
    )
    bipolarized = perturb_model(model, 0.0, mode="bipolar", rng=5)
    expected = float(np.mean(bipolarized.predict(X_test) == y_test))
    assert sweep.clean_accuracy == expected
    # Zero flip probability => zero loss, by construction.
    np.testing.assert_allclose(sweep.accuracy_loss, 0.0, atol=1e-12)
