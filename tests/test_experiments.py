"""Unit tests for the experiment harness: config, registry, runner, reporting, tables, figures."""

import numpy as np
import pytest

from repro.baselines import AdaBoostClassifier, MLPClassifier, RandomForestClassifier
from repro.core import BoostHD
from repro.experiments import (
    FULL,
    QUICK,
    MODEL_NAMES,
    build_model,
    figure2_theory_terms,
    format_mean_std,
    format_series,
    format_table,
    get_scale,
    model_builders,
    run_model,
    table1_accuracy,
    table2_inference,
)
from repro.experiments.runner import ModelRunResult, SuiteResult
from repro.experiments.tables import average_rank, table_winner_summary
from repro.hdc import OnlineHD


class TestConfig:
    def test_quick_is_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert get_scale() is QUICK

    def test_full_scale_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert get_scale() is FULL

    def test_full_scale_matches_paper_parameters(self):
        assert FULL.n_learners == 10
        assert FULL.n_runs == 10
        assert FULL.dnn_hidden == (2048, 1024, 512)
        assert FULL.bitflip_trials == 100
        assert FULL.wesad_subjects == 15
        assert FULL.nurse_subjects == 37


class TestRegistry:
    def test_all_paper_models_listed(self):
        assert MODEL_NAMES == ("AdaBoost", "RF", "XGBoost", "SVM", "DNN", "OnlineHD", "BoostHD")

    def test_build_model_types(self):
        assert isinstance(build_model("AdaBoost"), AdaBoostClassifier)
        assert isinstance(build_model("RF"), RandomForestClassifier)
        assert isinstance(build_model("DNN"), MLPClassifier)
        assert isinstance(build_model("OnlineHD"), OnlineHD)
        assert isinstance(build_model("BoostHD"), BoostHD)

    def test_paper_hyperparameters(self):
        adaboost = build_model("AdaBoost")
        assert adaboost.n_estimators == 10 and adaboost.learning_rate == 1.0
        forest = build_model("RF")
        assert forest.n_estimators == 10 and forest.bootstrap
        online = build_model("OnlineHD", scale=QUICK)
        assert online.lr == pytest.approx(0.035)
        boost = build_model("BoostHD", scale=QUICK)
        assert boost.n_learners == QUICK.n_learners
        assert boost.total_dim == QUICK.total_dim

    def test_boosthd_weak_learner_dim_is_total_over_nl(self):
        boost = build_model("BoostHD", scale=QUICK)
        assert boost.learner_dim == QUICK.total_dim // QUICK.n_learners

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            build_model("ResNet")

    def test_model_builders_are_seedable(self):
        builders = model_builders(("RF",), QUICK)
        first = builders["RF"](0)
        second = builders["RF"](1)
        assert first.seed == 0 and second.seed == 1


class TestRunnerAndTables:
    @pytest.fixture(scope="class")
    def tiny_suite(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        results = {}
        for dataset_name in ("A", "B"):
            results[dataset_name] = {}
            for model_name, builder in (
                ("OnlineHD", lambda seed: OnlineHD(dim=80, epochs=1, seed=seed)),
                ("BoostHD", lambda seed: BoostHD(total_dim=80, n_learners=2, epochs=1, seed=seed)),
            ):
                results[dataset_name][model_name] = run_model(
                    builder,
                    X_train,
                    y_train,
                    X_test,
                    y_test,
                    n_runs=2,
                    model_name=model_name,
                    dataset_name=dataset_name,
                )
        return SuiteResult(results=results)

    def test_run_model_collects_runs_and_times(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        result = run_model(
            lambda seed: OnlineHD(dim=60, epochs=1, seed=seed),
            X_train,
            y_train,
            X_test,
            y_test,
            n_runs=3,
        )
        assert isinstance(result, ModelRunResult)
        assert result.accuracies.shape == (3,)
        assert np.all(result.train_seconds > 0)
        assert np.all(result.inference_seconds_per_query > 0)
        assert 0.0 <= result.mean_accuracy <= 1.0

    def test_suite_accessors(self, tiny_suite):
        assert tiny_suite.datasets() == ["A", "B"]
        assert tiny_suite.models() == ["OnlineHD", "BoostHD"]
        assert tiny_suite.best_model("A") in ("OnlineHD", "BoostHD")

    def test_table1_structure(self, tiny_suite):
        data, text = table1_accuracy(tiny_suite)
        assert set(data) == {"A", "B"}
        assert set(data["A"]) == {"OnlineHD", "BoostHD"}
        mean, std = data["A"]["OnlineHD"]
        assert 0.0 <= mean <= 1.0 and std >= 0.0
        assert "TABLE I" in text and "OnlineHD" in text

    def test_table2_structure(self, tiny_suite):
        data, text = table2_inference(tiny_suite)
        assert data["A"]["OnlineHD"] > 0
        assert "TABLE II" in text

    def test_winner_summary_and_rank(self, tiny_suite):
        data, _ = table1_accuracy(tiny_suite)
        winners = table_winner_summary(data)
        assert set(winners) == {"A", "B"}
        ranks = average_rank(data)
        assert set(ranks) == {"OnlineHD", "BoostHD"}
        assert all(1.0 <= rank <= 2.0 for rank in ranks.values())


class TestReporting:
    def test_format_mean_std(self):
        assert format_mean_std(0.9837, 0.0032) == "98.37 ± 0.32"

    def test_format_table_contains_all_cells(self):
        text = format_table(
            [{"Model": "BoostHD", "Acc": "98.4"}, {"Model": "OnlineHD", "Acc": "96.4"}],
            ["Model", "Acc"],
            title="demo",
        )
        assert "BoostHD" in text and "96.4" in text and "demo" in text

    def test_format_table_requires_columns(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_format_series_alignment(self):
        text = format_series([1, 2], {"acc": [0.5, 0.75]}, x_label="D")
        assert "0.7500" in text

    def test_format_series_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series([1, 2], {"acc": [0.5]})


class TestFigureGenerators:
    def test_figure2_terms(self):
        table, text = figure2_theory_terms(np.linspace(1, 20, 5))
        assert set(table) == {"q", "T1", "T2", "T3"}
        assert "FIGURE 2" in text

    def test_figure5_span_on_mini_dataset(self, mini_wesad):
        from repro.experiments import figure5_span

        results, text = figure5_span(
            mini_wesad, total_dim=100, n_learners=2, epochs=1, seed=0
        )
        assert set(results) == {"OnlineHD", "BoostHD"}
        assert "FIGURE 5" in text

    def test_figure7_overfitting_on_mini_dataset(self, mini_wesad):
        from repro.experiments import figure7_overfitting

        results, text = figure7_overfitting(
            mini_wesad,
            keep_fractions=(1.0, 0.5),
            total_dims=(100,),
            n_learners=2,
            epochs=1,
            seed=0,
        )
        assert 100 in results
        assert results[100]["OnlineHD"].shape == (2,)
        assert "FIGURE 7" in text
