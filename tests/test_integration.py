"""Integration tests: the full pipeline from synthetic sensors to evaluation."""

import numpy as np
import pytest

from repro import BoostHD, OnlineHD, load_wesad
from repro.analysis import bitflip_sweep, evaluate_groups
from repro.baselines import RandomForestClassifier, macro_accuracy
from repro.data import make_imbalanced, perturb_model
from repro.experiments import QUICK, build_model, run_model


class TestEndToEndPipeline:
    def test_dataset_to_boosthd_to_evaluation(self, mini_wesad_split):
        X_train, X_test, y_train, y_test = mini_wesad_split
        model = BoostHD(total_dim=300, n_learners=5, epochs=3, seed=0).fit(X_train, y_train)
        score = model.score(X_test, y_test)
        assert score > 0.6
        assert set(np.unique(model.predict(X_test))) <= {0, 1, 2}

    def test_hdc_models_beat_chance_on_held_out_subjects(self, mini_wesad_split):
        X_train, X_test, y_train, y_test = mini_wesad_split
        for model in (
            OnlineHD(dim=300, epochs=3, seed=0),
            BoostHD(total_dim=300, n_learners=5, epochs=3, seed=0),
            RandomForestClassifier(n_estimators=10, seed=0),
        ):
            model.fit(X_train, y_train)
            assert model.score(X_test, y_test) > 0.5

    def test_registry_models_all_train_on_wesad(self, mini_wesad_split):
        X_train, X_test, y_train, y_test = mini_wesad_split
        # AdaBoost over depth-2 trees is the weakest baseline on such a tiny
        # subject-split sample, so it only has to beat chance.
        thresholds = {"AdaBoost": 1 / 3}
        for name in ("AdaBoost", "RF", "XGBoost", "SVM", "OnlineHD"):
            model = build_model(name, seed=0, scale=QUICK)
            # Shrink the expensive knobs for test speed where present.
            if hasattr(model, "epochs") and name not in ("SVM",):
                model.epochs = min(model.epochs, 3)
            model.fit(X_train, y_train)
            assert model.score(X_test, y_test) >= thresholds.get(name, 0.4), name

    def test_imbalance_hurts_macro_accuracy_less_for_boosthd_or_equal(self, mini_wesad_split):
        X_train, X_test, y_train, y_test = mini_wesad_split
        X_imbalanced, y_imbalanced = make_imbalanced(
            X_train, y_train, target_class=0, keep_fraction=0.3, rng=0
        )
        online = OnlineHD(dim=300, epochs=3, seed=0).fit(X_imbalanced, y_imbalanced)
        boost = BoostHD(total_dim=300, n_learners=5, epochs=3, seed=0).fit(
            X_imbalanced, y_imbalanced
        )
        online_macro = macro_accuracy(y_test, online.predict(X_test))
        boost_macro = macro_accuracy(y_test, boost.predict(X_test))
        # Both remain usable; the ensemble must not collapse.
        assert boost_macro > 0.45
        assert online_macro > 0.0

    def test_bitflip_pipeline_on_trained_models(self, mini_wesad_split):
        X_train, X_test, y_train, y_test = mini_wesad_split
        model = BoostHD(total_dim=200, n_learners=4, epochs=2, seed=0).fit(X_train, y_train)
        sweep = bitflip_sweep(model, X_test, y_test, [1e-5], n_trials=3, rng=0)
        assert sweep.clean_accuracy > 0.5
        assert sweep.accuracy_loss[0] < 0.3

    def test_perturbed_copy_does_not_change_clean_model_predictions(self, mini_wesad_split):
        X_train, X_test, y_train, y_test = mini_wesad_split
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X_train, y_train)
        before = model.predict(X_test)
        perturb_model(model, 0.01, rng=0)
        np.testing.assert_array_equal(model.predict(X_test), before)

    def test_person_specific_groups_pipeline(self, mini_wesad):
        results = evaluate_groups(
            lambda seed: RandomForestClassifier(n_estimators=5, seed=seed),
            mini_wesad,
            groups={
                "Everyone": lambda record: True,
                "Age >= 25": lambda record: record.age >= 25,
            },
            seed=0,
        )
        assert all(0.0 <= result.accuracy <= 1.0 for result in results)
        assert len(results) >= 1

    def test_run_model_timing_consistency(self, mini_wesad_split):
        X_train, X_test, y_train, y_test = mini_wesad_split
        result = run_model(
            lambda seed: OnlineHD(dim=150, epochs=1, seed=seed),
            X_train,
            y_train,
            X_test,
            y_test,
            n_runs=2,
            model_name="OnlineHD",
            dataset_name="WESAD",
        )
        assert result.model_name == "OnlineHD"
        assert result.mean_inference_per_query < result.mean_train_seconds

    def test_public_api_quickstart_snippet(self):
        dataset = load_wesad(n_subjects=3, windows_per_state=4, window_seconds=6, seed=1)
        X_train, X_test, y_train, y_test = dataset.split(rng=0)
        model = BoostHD(total_dim=100, n_learners=2, epochs=2, seed=0).fit(X_train, y_train)
        assert 0.0 <= model.score(X_test, y_test) <= 1.0
