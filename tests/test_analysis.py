"""Unit tests for the stability, robustness, fairness and spectra analyses."""

import numpy as np
import pytest

from repro.analysis import (
    PAPER_GROUPS,
    bitflip_sweep,
    dimension_stability_sweep,
    encoded_data_spread,
    evaluate_groups,
    group_accuracy_table,
    kernel_shape_report,
)
from repro.baselines import DecisionTreeClassifier
from repro.hdc import NonlinearEncoder, OnlineHD


class TestStabilitySweep:
    def test_result_structure(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        result = dimension_stability_sweep(
            lambda dim, run: OnlineHD(dim=dim, epochs=1, seed=run),
            [50, 100],
            X_train,
            y_train,
            X_test,
            y_test,
            n_runs=2,
            model_name="OnlineHD",
        )
        assert result.model_name == "OnlineHD"
        np.testing.assert_array_equal(result.dims, [50, 100])
        assert result.means.shape == (2,)
        assert result.stds.shape == (2,)
        assert 0.0 <= result.mean_sigma

    def test_scores_recorded_per_run(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        result = dimension_stability_sweep(
            lambda dim, run: OnlineHD(dim=dim, epochs=1, seed=run),
            [60],
            X_train,
            y_train,
            X_test,
            y_test,
            n_runs=3,
        )
        assert result.points[0].scores.shape == (3,)

    def test_invalid_arguments_raise(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        with pytest.raises(ValueError):
            dimension_stability_sweep(
                lambda dim, run: OnlineHD(dim=dim), [], X_train, y_train, X_test, y_test
            )
        with pytest.raises(ValueError):
            dimension_stability_sweep(
                lambda dim, run: OnlineHD(dim=dim),
                [10],
                X_train,
                y_train,
                X_test,
                y_test,
                n_runs=0,
            )


class TestBitflipSweep:
    def test_sweep_structure(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = OnlineHD(dim=100, epochs=1, seed=0).fit(X_train, y_train)
        result = bitflip_sweep(
            model, X_test, y_test, [1e-5, 1e-3], n_trials=3, model_name="OnlineHD", rng=0
        )
        assert result.model_name == "OnlineHD"
        np.testing.assert_array_equal(result.probabilities, [1e-5, 1e-3])
        assert result.means.shape == (2,)
        assert result.points[0].scores.shape == (3,)
        assert result.overall_mad >= 0.0

    def test_tiny_probability_barely_hurts(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X_train, y_train)
        result = bitflip_sweep(model, X_test, y_test, [1e-7], n_trials=3, rng=0)
        assert result.accuracy_loss[0] < 0.1

    def test_severe_probability_hurts_more(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = OnlineHD(dim=200, epochs=2, seed=0).fit(X_train, y_train)
        result = bitflip_sweep(model, X_test, y_test, [1e-6, 0.2], n_trials=5, rng=0)
        assert result.means[1] <= result.means[0] + 0.05

    def test_invalid_arguments_raise(self, blobs_split):
        X_train, X_test, y_train, y_test = blobs_split
        model = OnlineHD(dim=50, epochs=1, seed=0).fit(X_train, y_train)
        with pytest.raises(ValueError):
            bitflip_sweep(model, X_test, y_test, [], n_trials=3)
        with pytest.raises(ValueError):
            bitflip_sweep(model, X_test, y_test, [1e-5], n_trials=0)


class TestFairness:
    def test_paper_groups_defined(self):
        assert set(PAPER_GROUPS) == {
            "Left hands",
            "Female",
            "Age <= 25",
            "Age >= 30",
            "Height <= 170",
            "Height >= 185",
        }

    def test_evaluate_groups_returns_valid_accuracies(self, mini_wesad):
        results = evaluate_groups(
            lambda seed: DecisionTreeClassifier(max_depth=5, seed=seed),
            mini_wesad,
            groups={"Everyone": lambda record: True},
            seed=0,
        )
        assert len(results) == 1
        assert 0.0 <= results[0].accuracy <= 1.0
        assert results[0].n_subjects == len(mini_wesad.subject_ids)

    def test_groups_with_too_few_subjects_skipped(self, mini_wesad):
        lone_subject = int(mini_wesad.subject_ids[0])
        results = evaluate_groups(
            lambda seed: DecisionTreeClassifier(max_depth=3, seed=seed),
            mini_wesad,
            groups={"Lonely": lambda record: record.subject_id == lone_subject},
            seed=0,
        )
        assert results == []

    def test_group_accuracy_table_structure(self, mini_wesad):
        table = group_accuracy_table(
            {"Tree": lambda seed: DecisionTreeClassifier(max_depth=5, seed=seed)},
            mini_wesad,
            groups={"Everyone": lambda record: True},
            seed=0,
        )
        assert "Tree" in table
        assert "AVERAGE" in table["Tree"]
        assert table["Tree"]["AVERAGE"] == pytest.approx(table["Tree"]["Everyone"])


class TestSpectraAnalysis:
    def test_kernel_shape_report_fields(self):
        encoder = NonlinearEncoder(10, 500, rng=0)
        report = kernel_shape_report(encoder)
        assert report.dim == 500
        assert report.in_features == 10
        assert report.q == pytest.approx(10 / 500)
        assert 0.0 < report.empirical_axis_ratio <= 1.0
        assert report.empirical_sv_max >= report.empirical_sv_min

    def test_axis_ratio_increases_with_dimension(self):
        small = kernel_shape_report(NonlinearEncoder(10, 100, rng=0))
        large = kernel_shape_report(NonlinearEncoder(10, 4000, rng=0))
        assert large.empirical_axis_ratio > small.empirical_axis_ratio

    def test_encoded_data_spread_keys_and_ranges(self, blobs):
        X, _ = blobs
        encoder = NonlinearEncoder(X.shape[1], 300, rng=0)
        spread = encoded_data_spread(encoder, X[:40])
        assert set(spread) == {"participation_ratio", "top10_variance_fraction"}
        assert 0.0 <= spread["participation_ratio"] <= 1.0
        assert 0.0 < spread["top10_variance_fraction"] <= 1.0
