"""Streaming multi-subject stress-monitoring service layer.

The paper's target deployment is *continuous* monitoring from wearables; the
rest of the repository scores pre-materialized window matrices.  This
subpackage is the missing layer between the two — it turns the fused batch
engine (:mod:`repro.engine`) into a long-running service:

* :mod:`repro.serving.session` — per-subject :class:`StreamSession` objects
  that ingest raw multi-channel samples and emit feature vectors via
  incremental (O(1)-per-sample) featurization, provably equal to the batch
  pipeline's :func:`repro.data.features.extract_features`;
* :mod:`repro.serving.scheduler` — :class:`MicroBatchScheduler` coalesces
  ready windows from any number of concurrent sessions into fused
  ``CompiledModel`` calls under ``max_batch`` / ``max_wait`` bounds, so
  service throughput scales with the engine's batch efficiency instead of
  degrading with session count;
* :mod:`repro.serving.registry` — :class:`ModelRegistry`, versioned
  npz-based save/load of fitted ``OnlineHD`` / ``BoostHD`` models (exact
  round trip, optional fixed-point hypervector storage, quantized-engine
  loads straight from stored codes via ``load(name, precision=...)``) so
  service processes never retrain;
* :mod:`repro.serving.adaptation` — :class:`DriftMonitor` (rolling
  score-margin drift detection) and :class:`AdaptiveModel` (opt-in OnlineHD
  style adaptation from labeled feedback, with automatic engine
  recompilation);
* :mod:`repro.serving.service` — :class:`StreamingService`, the facade
  wiring sessions into one scheduler;
* :mod:`repro.serving.shm` — zero-copy model distribution: a compiled
  engine's arrays laid once into a named ``multiprocessing.shared_memory``
  segment, rebuilt in any process as views over the shared pages;
* :mod:`repro.serving.fabric` — :class:`ServingFabric`, the multi-process
  scale-out: sessions sharded across N workers by a stable id hash, all
  scoring one shared model copy, with drift-gated blue/green hot swap.

Failure semantics across the layer come from :mod:`repro.resilience`:
bounded retries with dead-lettering and explicit load shedding in the
scheduler, per-shard circuit breakers / call timeouts / hung-worker
recovery in the fabric, checksum-verified segments and crash-safe registry
writes underneath — see ``docs/resilience.md``.

Quick start::

    registry = ModelRegistry("models")
    registry.save("stress", BoostHD(...).fit(X, y))
    service = StreamingService(
        registry.load_compiled("stress"),
        n_channels=len(CHANNELS), window_samples=640,
    )
    service.open_session("subject-0")
    for chunk in simulator.stream_chunks(state, n_chunks=10):
        for prediction in service.push("subject-0", chunk):
            print(prediction.session_id, prediction.label)
    service.drain()

``benchmarks/bench_serving.py`` holds the subsystem to its contract:
micro-batched scheduling at >= 2x the throughput of per-session scoring at
64 concurrent sessions with identical predictions, incremental features
within 1e-9 of the batch pipeline, and exact registry round trips.
"""

from .adaptation import AdaptiveModel, DriftMonitor
from .fabric import ServingFabric, SwapResult, shard_of
from .registry import ModelRecord, ModelRegistry, RegistryError
from .scheduler import (
    SHED,
    DeadLetter,
    MicroBatchScheduler,
    Prediction,
    SchedulerStats,
)
from .service import StreamingService
from .session import ReadyWindow, StreamSession
from .shm import (
    AttachedEngine,
    IntegrityError,
    SharedModel,
    attach_engine,
    cleanup_orphan_segments,
    publish_engine,
    verify_manifest,
)

__all__ = [
    "AdaptiveModel",
    "AttachedEngine",
    "DeadLetter",
    "DriftMonitor",
    "IntegrityError",
    "ModelRecord",
    "ModelRegistry",
    "RegistryError",
    "MicroBatchScheduler",
    "Prediction",
    "SchedulerStats",
    "SHED",
    "ServingFabric",
    "SharedModel",
    "StreamingService",
    "SwapResult",
    "ReadyWindow",
    "StreamSession",
    "attach_engine",
    "cleanup_orphan_segments",
    "publish_engine",
    "shard_of",
    "verify_manifest",
]
