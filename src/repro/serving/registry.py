"""Versioned on-disk registry for fitted HDC models.

A serving process must never retrain: training happens offline, the fitted
model is published to a :class:`ModelRegistry`, and any number of service
processes load it — exactly.  The registry persists everything a fitted
:class:`~repro.hdc.OnlineHD` or :class:`~repro.core.BoostHD` is made of
(projection bases, phase biases, bandwidths, class hypervectors, learner
importances, the shared-projection layout) into one ``npz`` archive plus a
JSON manifest per version:

.. code-block:: text

    registry_root/
        <name>/
            v1/
                model.npz     # exact float64 arrays (or fixed-point codes)
                meta.json     # kind, hyperparameters, user metadata
            v2/ ...

Round-trip guarantees, enforced by ``tests/test_serving.py``:

* the default float path stores arrays losslessly, so a loaded model's
  ``decision_function`` / ``predict`` — and the :class:`CompiledModel` built
  from it — are *byte-identical* to the original's;
* with ``quantize="fixed16"`` / ``"fixed8"`` the class hypervectors are
  stored as :mod:`repro.hdc.quantize` fixed-point codes (the wearable
  deployment format, and 4–8x smaller); a plain ``load()`` dequantises
  deterministically, so repeated load→save→load cycles are stable, while
  ``load(name, precision=...)`` serves the codes through the integer-domain
  engines of :mod:`repro.engine.quant` without ever dequantising.

Only trigonometric random-projection encoders are supported — the same
family the fused engine compiles — so everything the registry can store can
also be served through :meth:`load_compiled`.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.boosthd import BoostHD
from ..engine.compile import _shared_root, assemble_projection
from ..obs import OBS
from ..resilience.chaos import CHAOS
from ..hdc.encoder import Encoder, NonlinearEncoder, SlicedEncoder
from ..hdc.quantize import (
    SCHEME_BITS,
    SCHEME_DTYPES,
    FixedPointFormat,
    from_fixed_point,
    quantize_codes,
)
from ..hdc.onlinehd import OnlineHD

__all__ = ["ModelRecord", "ModelRegistry", "RegistryError"]

_VERSION_PATTERN = re.compile(r"^v(\d+)$")
_QUANTIZE_BITS = SCHEME_BITS
_QUANTIZE_DTYPES = SCHEME_DTYPES

#: Hyperparameters persisted per model kind (constructor arguments that are
#: plain values; encoder/partitioner objects are reconstructed from arrays).
_ONLINEHD_PARAMS = (
    "dim", "lr", "epochs", "bootstrap", "batch_size", "bandwidth", "seed"
)
_BOOSTHD_PARAMS = (
    "total_dim",
    "n_learners",
    "lr",
    "epochs",
    "bootstrap",
    "batch_size",
    "aggregation",
    "uniform_blend",
    "bandwidth",
    "learning_rate",
    "seed",
)


class RegistryError(RuntimeError):
    """Raised for unknown models/versions or unsupported model structure."""


#: BLAKE2b digest size (bytes) of the archive checksum in ``meta.json``.
_DIGEST_SIZE = 16


def _fsync_path(path: Path | str) -> None:
    """Flush one file or directory to stable storage.

    Needed on both sides of the publication rename: the archive/manifest
    bytes must be durable *before* the rename (or a crash publishes a
    version whose contents never hit disk), and the parent directory entry
    after it (or the rename itself can be lost).
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass(frozen=True)
class ModelRecord:
    """Manifest of one stored version (the parsed ``meta.json``)."""

    name: str
    version: int
    kind: str
    quantize: str | None
    shared_projection: bool
    params: dict
    metadata: dict
    path: Path
    #: BLAKE2b hex digest of ``model.npz`` (``None`` for pre-PR-9 artifacts).
    checksum: str | None = None


def _require_projection_root(encoder: Encoder) -> None:
    root = encoder
    if isinstance(root, SlicedEncoder):
        root, _, _ = root.flatten()
    if not isinstance(root, NonlinearEncoder):
        raise RegistryError(
            f"cannot persist a {type(root).__name__}; only trigonometric "
            "random-projection encoders (NonlinearEncoder and slices of it) "
            "are supported by the registry"
        )


def _store_hypervectors(
    arrays: dict[str, np.ndarray], prefix: str, hypervectors: np.ndarray, quantize: str | None
) -> None:
    if quantize is None:
        arrays[f"{prefix}hypervectors"] = np.asarray(hypervectors, dtype=np.float64)
        return
    # One quantisation point for the whole stack: the same quantize_codes
    # call the quantized engines compile with, so stored codes are
    # byte-identical to a freshly compiled FixedPointModel's.
    codes, fmt = quantize_codes(hypervectors, quantize)
    arrays[f"{prefix}codes"] = codes
    arrays[f"{prefix}scale"] = np.float64(fmt.scale)


def _load_hypervectors(archive, prefix: str, quantize: str | None) -> np.ndarray:
    if quantize is None:
        return np.asarray(archive[f"{prefix}hypervectors"], dtype=np.float64)
    fmt = FixedPointFormat(
        bits=_QUANTIZE_BITS[quantize], scale=float(archive[f"{prefix}scale"])
    )
    return from_fixed_point(archive[f"{prefix}codes"].astype(np.int64), fmt)


class ModelRegistry:
    """Filesystem-backed, versioned store of fitted HDC models.

    Parameters
    ----------
    root:
        Directory holding the registry (created on first save).  Multiple
        registries may coexist; a registry is just this directory layout, so
        it can be rsync'd/mounted read-only into service containers.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------- inventory
    def models(self) -> list[str]:
        """Names with at least one stored version, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[int]:
        """Stored version numbers for ``name``, ascending (empty if none)."""
        directory = self.root / name
        if not directory.is_dir():
            return []
        found = []
        for entry in directory.iterdir():
            match = _VERSION_PATTERN.match(entry.name)
            if match and (entry / "meta.json").is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"no versions of model {name!r} in {self.root}")
        return versions[-1]

    def describe(self, name: str, version: int | None = None) -> ModelRecord:
        """Parse one version's manifest without loading its arrays."""
        version = self.latest(name) if version is None else int(version)
        path = self.root / name / f"v{version}"
        manifest = path / "meta.json"
        if not manifest.is_file():
            raise RegistryError(f"model {name!r} has no version v{version} in {self.root}")
        meta = json.loads(manifest.read_text())
        return ModelRecord(
            name=name,
            version=version,
            kind=meta["kind"],
            quantize=meta.get("quantize"),
            shared_projection=bool(meta.get("shared_projection", False)),
            params=meta.get("params", {}),
            metadata=meta.get("metadata", {}),
            path=path,
            checksum=meta.get("checksum"),
        )

    # ------------------------------------------------------------------ save
    def _serialize_learners(
        self,
        learners: list[OnlineHD],
        arrays: dict[str, np.ndarray],
        quantize: str | None,
    ) -> bool:
        """Store every learner's encoder + hypervectors; return shared flag."""
        encoders = [learner.encoder for learner in learners]
        for encoder in encoders:
            _require_projection_root(encoder)
        root = _shared_root(encoders)
        if root is not None:
            if not isinstance(root, NonlinearEncoder):
                raise RegistryError(
                    f"cannot persist a shared {type(root).__name__} projection"
                )
            arrays["root_basis"] = np.asarray(root.basis, dtype=np.float64)
            arrays["root_bias"] = np.asarray(root.bias, dtype=np.float64)
            arrays["root_bandwidth"] = np.float64(root.bandwidth)
        for index, learner in enumerate(learners):
            prefix = f"learner_{index}_"
            arrays[f"{prefix}classes"] = learner.classes_
            _store_hypervectors(arrays, prefix, learner.class_hypervectors_, quantize)
            if root is not None:
                _, start, stop = learner.encoder.flatten()
                arrays[f"{prefix}slice"] = np.asarray([start, stop], dtype=np.int64)
            else:
                encoder = learner.encoder
                if isinstance(encoder, SlicedEncoder):
                    # A slice without the full shared layout: persist the
                    # sliced rows as an independent encoder (identical
                    # encodings, no parent to share).
                    flat_root, start, stop = encoder.flatten()
                    arrays[f"{prefix}basis"] = np.asarray(
                        flat_root.basis[start:stop], dtype=np.float64
                    )
                    arrays[f"{prefix}bias"] = np.asarray(
                        flat_root.bias[start:stop], dtype=np.float64
                    )
                    arrays[f"{prefix}bandwidth"] = np.float64(flat_root.bandwidth)
                else:
                    arrays[f"{prefix}basis"] = np.asarray(encoder.basis, dtype=np.float64)
                    arrays[f"{prefix}bias"] = np.asarray(encoder.bias, dtype=np.float64)
                    arrays[f"{prefix}bandwidth"] = np.float64(encoder.bandwidth)
        return root is not None

    def save(
        self,
        name: str,
        model: BoostHD | OnlineHD,
        *,
        metadata: dict | None = None,
        quantize: str | None = None,
    ) -> int:
        """Persist a fitted model as the next version of ``name``.

        Returns the new version number.  ``metadata`` is any JSON-serializable
        mapping (training dataset, accuracy, git revision ...) stored in the
        manifest; ``quantize`` selects the fixed-point hypervector format
        (``None`` keeps exact float64).
        """
        if not OBS.enabled:
            return self._save(name, model, metadata=metadata, quantize=quantize)
        with OBS.recorder.span("registry.save", model=name):
            start = time.perf_counter()
            version = self._save(name, model, metadata=metadata, quantize=quantize)
            seconds = time.perf_counter() - start
        self._record_artifact_io("save", name, version, seconds)
        return version

    def _save(
        self,
        name: str,
        model: BoostHD | OnlineHD,
        *,
        metadata: dict | None = None,
        quantize: str | None = None,
    ) -> int:
        if quantize is not None and quantize not in _QUANTIZE_BITS:
            raise RegistryError(
                f"unknown quantize scheme {quantize!r}; "
                f"available: {sorted(_QUANTIZE_BITS)} or None"
            )
        if not name or "/" in name or name.startswith("."):
            raise RegistryError(f"invalid model name {name!r}")
        metadata = dict(metadata or {})
        try:
            json.dumps(metadata)
        except TypeError as error:
            raise RegistryError(f"metadata is not JSON-serializable: {error}") from error

        arrays: dict[str, np.ndarray] = {}
        if isinstance(model, BoostHD):
            if model.learners_ is None:
                raise RegistryError("cannot save an unfitted BoostHD; call fit() first")
            kind = "boosthd"
            params = {key: getattr(model, key) for key in _BOOSTHD_PARAMS}
            arrays["classes"] = model.classes_
            arrays["learner_weights"] = np.asarray(model.learner_weights_, dtype=np.float64)
            arrays["learner_errors"] = np.asarray(model.learner_errors_, dtype=np.float64)
            shared = self._serialize_learners(model.learners_, arrays, quantize)
            params["n_learners"] = len(model.learners_)
            learner_params = [
                {key: getattr(learner, key) for key in _ONLINEHD_PARAMS}
                for learner in model.learners_
            ]
        elif isinstance(model, OnlineHD):
            if model.class_hypervectors_ is None:
                raise RegistryError("cannot save an unfitted OnlineHD; call fit() first")
            kind = "onlinehd"
            params = {key: getattr(model, key) for key in _ONLINEHD_PARAMS}
            arrays["classes"] = model.classes_
            shared = self._serialize_learners([model], arrays, quantize)
            learner_params = None
        else:
            raise RegistryError(
                f"cannot save {type(model).__name__}; expected BoostHD or OnlineHD"
            )

        version = (self.versions(name) or [0])[-1] + 1
        final_dir = self.root / name / f"v{version}"
        staging_dir = self.root / name / f".staging-v{version}"
        staging_dir.mkdir(parents=True, exist_ok=False)
        try:
            archive_path = staging_dir / "model.npz"
            np.savez_compressed(archive_path, **arrays)
            _fsync_path(archive_path)
            manifest = {
                "name": name,
                "version": version,
                "kind": kind,
                "quantize": quantize,
                "shared_projection": shared,
                "params": params,
                "metadata": metadata,
                "checksum": hashlib.blake2b(
                    archive_path.read_bytes(), digest_size=_DIGEST_SIZE
                ).hexdigest(),
            }
            if learner_params is not None:
                manifest["learner_params"] = learner_params
            (staging_dir / "meta.json").write_text(json.dumps(manifest, indent=2))
            # Contents durable before publication, directory entries after:
            # a crash can only ever leave a staging dir (invisible to
            # versions()) or a fully-written version — never a half artifact
            # under a version name.
            _fsync_path(staging_dir / "meta.json")
            _fsync_path(staging_dir)
            if CHAOS.enabled:
                fault = CHAOS.hit("registry.save", model=name, version=version)
                if fault is not None and fault.kind == "torn":
                    # Simulate a torn archive slipping through to publication
                    # (e.g. silent media damage after the checksum was taken):
                    # load-side verification must catch it.
                    with open(archive_path, "r+b") as handle:
                        handle.truncate(archive_path.stat().st_size // 2)
            os.rename(staging_dir, final_dir)
            _fsync_path(self.root / name)
        except BaseException:
            for leftover in staging_dir.glob("*"):
                leftover.unlink()
            if staging_dir.is_dir():
                staging_dir.rmdir()
            raise
        return version

    # ------------------------------------------------------------------ load
    def _open_archive(self, record: ModelRecord):
        """Open one version's ``model.npz``, verified against its checksum.

        Reads the archive bytes once, checks the BLAKE2b digest recorded in
        the manifest (artifacts saved before checksums existed load
        unverified), and serves ``np.load`` from the in-memory copy — the
        bytes that passed verification are exactly the bytes deserialized,
        with no window for the file to change in between.  A mismatch
        raises :exc:`RegistryError`; a torn or corrupted artifact can never
        silently become a serving model.
        """
        data = (record.path / "model.npz").read_bytes()
        if record.checksum is not None:
            digest = hashlib.blake2b(data, digest_size=_DIGEST_SIZE).hexdigest()
            if digest != record.checksum:
                raise RegistryError(
                    f"model {record.name!r} v{record.version} failed checksum "
                    f"verification (stored {record.checksum}, computed {digest}); "
                    "the archive is torn or corrupted — refusing to load"
                )
        return np.load(io.BytesIO(data))

    def _archive_header(
        self, record: ModelRecord, archive
    ) -> tuple[NonlinearEncoder | None, int, np.ndarray, str, np.ndarray]:
        """Parse an artifact's header arrays, shared by both loaders.

        Returns ``(shared_parent, n_learners, alphas, aggregation, classes)``
        — the model-level structure both the model loader and the quantized
        engine loader reconstruct, kept in one place so an archive-format
        change cannot make the two paths diverge.
        """
        shared_parent = None
        if record.shared_projection:
            shared_parent = NonlinearEncoder.from_params(
                archive["root_basis"],
                archive["root_bias"],
                bandwidth=float(archive["root_bandwidth"]),
            )
        if record.kind == "onlinehd":
            return shared_parent, 1, np.ones(1), "score", archive["learner_0_classes"]
        if record.kind != "boosthd":
            raise RegistryError(f"unknown model kind {record.kind!r} in manifest")
        params = record.params
        return (
            shared_parent,
            int(params["n_learners"]),
            np.asarray(archive["learner_weights"], dtype=np.float64),
            str(params["aggregation"]),
            archive["classes"],
        )

    def _deserialize_encoder(
        self, archive, index: int, shared_parent: NonlinearEncoder | None
    ) -> Encoder:
        prefix = f"learner_{index}_"
        if shared_parent is not None:
            start, stop = (int(value) for value in archive[f"{prefix}slice"])
            return shared_parent.slice(start, stop)
        return NonlinearEncoder.from_params(
            archive[f"{prefix}basis"],
            archive[f"{prefix}bias"],
            bandwidth=float(archive[f"{prefix}bandwidth"]),
        )

    def _deserialize_learner(
        self,
        archive,
        index: int,
        params: dict,
        quantize: str | None,
        shared_parent: NonlinearEncoder | None,
    ) -> OnlineHD:
        prefix = f"learner_{index}_"
        encoder = self._deserialize_encoder(archive, index, shared_parent)
        seed = params.get("seed")
        # .get(...) defaults keep pre-batch_size artifacts loadable.
        batch_size = params.get("batch_size")
        learner = OnlineHD(
            dim=encoder.dim,
            lr=float(params.get("lr", 0.035)),
            epochs=int(params.get("epochs", 20)),
            bootstrap=bool(params.get("bootstrap", True)),
            batch_size=None if batch_size is None else int(batch_size),
            bandwidth=float(params.get("bandwidth", 1.5)),
            encoder=encoder,
            seed=None if seed is None else int(seed),
        )
        learner.classes_ = archive[f"{prefix}classes"]
        learner.class_hypervectors_ = _load_hypervectors(archive, prefix, quantize)
        return learner

    def load(
        self,
        name: str,
        version: int | None = None,
        *,
        precision: str | None = None,
        **compile_options,
    ):
        """Reconstruct a stored model, ready to predict (or ``compile()``).

        Returns a ``BoostHD`` / ``OnlineHD`` model with the default
        ``precision=None``, and a compiled engine
        (:class:`~repro.engine.CompiledModel` or one of its quantized
        subclasses) when a ``precision`` is given.

        With the default ``precision=None`` the stored model object is
        rebuilt exactly as saved (fixed-point artifacts are dequantized to
        float64 — the historical behaviour).  Passing a ``precision``
        instead returns a *serving engine* at that precision:
        ``"bipolar-packed"`` / ``"fixed16"`` / ``"fixed8"`` construct the
        integer-domain engines of :mod:`repro.engine.quant` **directly from
        the stored codes, without dequantization** (sign bits and
        fixed-point codes are read as integers end-to-end),
        ``"cascade[-...]"`` builds both tiers of an early-exit
        :class:`~repro.engine.cascade.CascadeModel` the same way, and
        ``"float64"`` compiles the float engine.  ``compile_options``
        (``dtype``, ``chunk_size``, ``cache_size``, ``cache_bytes``,
        ``score_threads``; ``threshold`` for cascades) are forwarded to the
        engine constructor and are only valid with a ``precision``.
        """
        if precision is None:
            if compile_options:
                raise RegistryError(
                    "compile options require a precision; call "
                    "load(name, precision=...) or load_compiled()"
                )
            return self._load_model(name, version)
        return self.load_compiled(name, version, precision=precision, **compile_options)

    def _record_artifact_io(
        self, op: str, name: str, version: int | None, seconds: float
    ) -> None:
        """Account one save/load: op count, duration histogram, artifact bytes."""
        resolved = self.latest(name) if version is None else int(version)
        path = self.root / name / f"v{resolved}"
        nbytes = sum(
            entry.stat().st_size for entry in path.iterdir() if entry.is_file()
        )
        metrics = OBS.metrics
        metrics.counter(
            f"repro_registry_{op}s_total", f"Registry artifact {op} operations."
        ).inc()
        metrics.histogram(
            f"repro_registry_{op}_seconds", f"Registry artifact {op} duration."
        ).observe(seconds)
        metrics.counter(
            f"repro_registry_{op}_bytes_total",
            f"Artifact bytes touched by registry {op} operations.",
        ).inc(nbytes)

    def _load_model(self, name: str, version: int | None = None) -> BoostHD | OnlineHD:
        if not OBS.enabled:
            return self._load_model_exact(name, version)
        with OBS.recorder.span("registry.load", model=name, form="model"):
            start = time.perf_counter()
            model = self._load_model_exact(name, version)
            seconds = time.perf_counter() - start
        self._record_artifact_io("load", name, version, seconds)
        return model

    def _load_model_exact(
        self, name: str, version: int | None = None
    ) -> BoostHD | OnlineHD:
        record = self.describe(name, version)
        meta = json.loads((record.path / "meta.json").read_text())
        with self._open_archive(record) as archive:
            shared_parent, n_learners, _, _, _ = self._archive_header(record, archive)
            params = record.params
            if record.kind == "onlinehd":
                model = self._deserialize_learner(
                    archive, 0, params, record.quantize, shared_parent
                )
                if shared_parent is not None and model.encoder.dim == shared_parent.dim:
                    # A single learner spanning the whole root *is* the root.
                    model.encoder = shared_parent
                return model
            learner_params = meta.get("learner_params") or []
            batch_size = params.get("batch_size")
            ensemble = BoostHD(
                total_dim=int(params["total_dim"]),
                n_learners=int(params["n_learners"]),
                lr=float(params["lr"]),
                epochs=int(params["epochs"]),
                bootstrap=bool(params["bootstrap"]),
                batch_size=None if batch_size is None else int(batch_size),
                aggregation=str(params["aggregation"]),
                uniform_blend=float(params["uniform_blend"]),
                bandwidth=float(params["bandwidth"]),
                learning_rate=float(params["learning_rate"]),
                seed=None if params.get("seed") is None else int(params["seed"]),
            )
            ensemble.classes_ = archive["classes"]
            ensemble.learner_weights_ = np.asarray(archive["learner_weights"], dtype=np.float64)
            ensemble.learner_errors_ = np.asarray(archive["learner_errors"], dtype=np.float64)
            ensemble.learners_ = [
                self._deserialize_learner(
                    archive,
                    index,
                    learner_params[index] if index < len(learner_params) else params,
                    record.quantize,
                    shared_parent,
                )
                for index in range(n_learners)
            ]
            return ensemble

    def load_compiled(
        self,
        name: str,
        version: int | None = None,
        *,
        precision: str = "float64",
        **compile_options,
    ):
        """Load a stored model and compile it into a fused engine.

        Keyword options (``dtype``, ``chunk_size``, ``cache_size``,
        ``cache_bytes``) are forwarded to
        :func:`repro.engine.compile_model`; with the default
        ``precision="float64"`` the compiled scorer's predictions are
        byte-identical to compiling the original model with the same
        options.  Quantized precisions (``"bipolar-packed"`` /
        ``"fixed16"`` / ``"fixed8"``) build the integer-domain engines
        straight from the stored arrays: a fixed-point artifact loaded at
        its own (or a wider) precision reuses the stored integer codes
        byte-for-byte with **no** float64 dequantization; packed-bipolar
        reads only the stored sign bits.  Narrowing (a ``fixed16`` artifact
        at ``precision="fixed8"``) is the one case that requantizes through
        float, since the stored codes cannot represent the narrower format.

        Cascade precisions (``"cascade"`` / ``"cascade-fixed16"`` /
        ``"cascade-fixed8"`` / ``"cascade-float64"``) load *both* tiers the
        same way — the packed first tier packs the stored codes' sign bits
        and an integer second tier reuses the stored codes, neither through
        float — and accept an extra ``threshold`` compile option.
        """
        from ..engine import compile_model
        from ..engine.quant import QUANT_PRECISIONS

        if precision == "float64":
            return compile_model(self._load_model(name, version), **compile_options)
        if precision == "cascade" or precision.startswith("cascade-"):
            return self._load_cascade_engine(name, version, precision, compile_options)
        if precision not in QUANT_PRECISIONS:
            from ..engine.cascade import CASCADE_PRECISIONS

            raise RegistryError(
                f"unknown precision {precision!r}; available: "
                f"{('float64',) + QUANT_PRECISIONS + ('cascade',) + CASCADE_PRECISIONS}"
            )
        return self._load_quantized_engine(name, version, precision, compile_options)

    def _load_cascade_engine(
        self, name: str, version: int | None, precision: str, compile_options: dict
    ):
        """Build a two-tier cascade engine directly from stored arrays.

        Both tiers come from the same artifact with no dequantization: the
        packed first tier packs the stored representation's sign bits, a
        fixed-point second tier goes through the usual stored-code reuse
        rules, and a float64 second tier compiles the reconstructed model.
        The second tier never encodes (the cascade shares the first tier's
        encoder), so encoding-cache options apply to the first tier only.
        """
        from ..engine import compile_model
        from ..engine.cascade import (
            DEFAULT_THRESHOLD,
            CascadeModel,
            second_tier_precision,
        )

        try:
            second_precision = second_tier_precision(precision)
        except Exception as error:
            raise RegistryError(str(error)) from error
        threshold = compile_options.pop("threshold", DEFAULT_THRESHOLD)
        # _load_quantized_engine consumes its options dict; hand each tier
        # its own copy.  The second tier only ever scores pre-encoded rows,
        # so it gets no encoding cache.
        second_options = {
            key: value
            for key, value in compile_options.items()
            if key not in ("cache_size", "cache_bytes")
        }
        first = self._load_quantized_engine(
            name, version, "bipolar-packed", dict(compile_options)
        )
        if second_precision == "float64":
            second = compile_model(self._load_model(name, version), **second_options)
        else:
            second = self._load_quantized_engine(
                name, version, second_precision, second_options
            )
        return CascadeModel(first=first, second=second, threshold=threshold)

    def _load_quantized_engine(
        self, name: str, version: int | None, precision: str, compile_options: dict
    ):
        if not OBS.enabled:
            return self._load_quantized_engine_exact(
                name, version, precision, compile_options
            )
        with OBS.recorder.span("registry.load", model=name, form=precision):
            start = time.perf_counter()
            engine = self._load_quantized_engine_exact(
                name, version, precision, compile_options
            )
            seconds = time.perf_counter() - start
        self._record_artifact_io("load", name, version, seconds)
        return engine

    def _load_quantized_engine_exact(
        self, name: str, version: int | None, precision: str, compile_options: dict
    ):
        """Build a quantized engine directly from stored arrays.

        The stored class representation is converted to the engine's block
        form in the integer domain: sign packing reads raw code (or float)
        signs, matching fixed-point precisions reuse the stored codes
        byte-for-byte, widening reinterprets them under the same scale.
        Encoder arrays are float as always — quantization concerns the
        class-comparison stage, not the projection.
        """
        from ..engine.quant import (
            FixedPointModel,
            PackedBipolarModel,
            fixed_block,
            packed_block,
        )
        from ..hdc.hypervector import pack_signs

        record = self.describe(name, version)
        with self._open_archive(record) as archive:
            shared_parent, n_learners, alphas, aggregation, classes = (
                self._archive_header(record, archive)
            )

            encoders = [
                self._deserialize_encoder(archive, index, shared_parent)
                for index in range(n_learners)
            ]
            basis, bias, shared = assemble_projection(encoders)

            blocks = []
            start = 0
            for index in range(n_learners):
                prefix = f"learner_{index}_"
                stop = start + encoders[index].dim
                columns = np.searchsorted(classes, archive[f"{prefix}classes"])
                if precision == "bipolar-packed":
                    source = (
                        archive[f"{prefix}codes"]
                        if record.quantize is not None
                        else archive[f"{prefix}hypervectors"]
                    )
                    blocks.append(
                        packed_block(start, stop, alphas[index], columns, pack_signs(source))
                    )
                else:
                    codes, scale = self._stored_fixed_codes(archive, prefix, record, precision)
                    blocks.append(
                        fixed_block(start, stop, alphas[index], columns, codes, scale)
                    )
                start = stop

        options = dict(
            basis=basis,
            bias=bias,
            blocks=blocks,
            classes=classes,
            aggregation=aggregation,
            shared_projection=shared,
            dtype=np.dtype(compile_options.pop("dtype", np.float32)),
            **compile_options,
        )
        if precision == "bipolar-packed":
            return PackedBipolarModel(**options)
        return FixedPointModel(precision=precision, **options)

    @staticmethod
    def _stored_fixed_codes(
        archive, prefix: str, record: ModelRecord, precision: str
    ) -> tuple[np.ndarray, float]:
        """One learner's fixed-point codes at the requested precision.

        Stored codes are reused directly when the stored format fits in the
        requested one (same width: byte-for-byte; widening: the same integer
        values under the same scale are valid codes of the wider format).
        Only narrowing — or a float-stored artifact — derives fresh codes.
        """
        stored = record.quantize
        if stored is not None and _QUANTIZE_BITS[stored] <= _QUANTIZE_BITS[precision]:
            codes = archive[f"{prefix}codes"].astype(
                _QUANTIZE_DTYPES[precision], copy=False
            )
            return codes, float(archive[f"{prefix}scale"])
        if stored is not None:
            values = from_fixed_point(
                archive[f"{prefix}codes"].astype(np.int64),
                FixedPointFormat(
                    bits=_QUANTIZE_BITS[stored], scale=float(archive[f"{prefix}scale"])
                ),
            )
        else:
            values = archive[f"{prefix}hypervectors"]
        codes, fmt = quantize_codes(values, precision)
        return codes, fmt.scale
