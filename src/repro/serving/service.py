"""End-to-end streaming facade: sessions in, micro-batched predictions out.

:class:`StreamingService` wires the serving pieces together for the common
case — one scorer, many subjects:

* :meth:`open_session` registers a subject and its windowing configuration
  (a :class:`~repro.serving.session.StreamSession` per subject),
* :meth:`push` feeds raw samples for one subject, submits any completed
  windows to the shared :class:`~repro.serving.scheduler.MicroBatchScheduler`
  and returns whatever predictions the scheduler released,
* :meth:`drain` flushes the remaining partial batch (shutdown, or the end of
  a simulation tick).

The service itself is a thin loop over those parts; anything fancier
(per-session priorities, backpressure, an async transport) should compose
the parts directly rather than grow this facade.
"""

from __future__ import annotations

import numpy as np

from ..obs import OBS
from .scheduler import MicroBatchScheduler, Prediction
from .session import StreamSession

__all__ = ["StreamingService"]


class StreamingService:
    """Serve many concurrent physiological streams against one scorer.

    Parameters
    ----------
    scorer:
        Object with ``decision_function`` / ``classes_`` — typically a
        :class:`~repro.engine.CompiledModel` or
        :class:`~repro.serving.adaptation.AdaptiveModel`.
    window_samples, step_samples, smoothing_window, statistics:
        Default windowing/featurization for sessions opened without explicit
        overrides; must match what the scorer was trained on.
    n_channels:
        Channels per raw sample.
    max_batch, max_wait:
        Micro-batching policy, forwarded to the scheduler.
    transform:
        Optional callable applied to each window's ``(1, n_features)``
        feature row before scoring — typically the training dataset's fitted
        scaler (``dataset.scaler.transform``), since models are trained on
        standard-scaled features and live streams arrive raw.
    precision:
        Optional serving precision (``"float64"`` / ``"bipolar-packed"`` /
        ``"fixed16"`` / ``"fixed8"`` / ``"cascade[-...]"``).  A raw fitted
        model is compiled at that precision; an
        :class:`~repro.serving.adaptation.AdaptiveModel` is switched to it
        (subsequent feedback recompiles quantized).  An already-compiled
        engine must match — the service cannot requantize an engine without
        the source model.
    max_retries, max_pending:
        Scheduler bounds (see :class:`MicroBatchScheduler`): the retry
        budget before a window is dead-lettered, and the admission-queue
        bound beyond which the oldest window is shed as an explicit
        :data:`~repro.serving.scheduler.SHED` prediction.
    degrade_deadline:
        Optional per-window latency target, seconds.  When set, the service
        attaches a :class:`~repro.resilience.DegradationLadder` so batches
        at risk of blowing the deadline are scored by the packed-bipolar
        tier (predictions flagged ``degraded``) until pressure clears.
        Requires a scorer with a cheaper tier (cascade, fixed-point or
        float engine).
    """

    def __init__(
        self,
        scorer,
        *,
        n_channels: int,
        window_samples: int,
        step_samples: int | None = None,
        smoothing_window: int = 30,
        statistics: tuple[str, ...] = ("min", "max", "mean", "std"),
        max_batch: int = 64,
        max_wait: float = 0.010,
        transform=None,
        precision: str | None = None,
        max_retries: int | None = 5,
        max_pending: int | None = None,
        degrade_deadline: float | None = None,
    ) -> None:
        scorer = self._apply_precision(scorer, precision)
        self.degrade_deadline = degrade_deadline
        self.scheduler = MicroBatchScheduler(
            scorer,
            max_batch=max_batch,
            max_wait=max_wait,
            max_retries=max_retries,
            max_pending=max_pending,
            degradation=self._build_ladder(scorer, degrade_deadline),
        )
        self.n_channels = int(n_channels)
        self.window_samples = int(window_samples)
        self.step_samples = step_samples
        self.smoothing_window = int(smoothing_window)
        self.statistics = tuple(statistics)
        self.transform = transform
        self.sessions: dict[str, StreamSession] = {}

    @staticmethod
    def _build_ladder(scorer, deadline: float | None):
        """A degradation ladder for ``scorer``, or ``None`` when unconfigured."""
        if deadline is None:
            return None
        from ..resilience.degrade import DegradationLadder

        return DegradationLadder(scorer, deadline=deadline)

    @staticmethod
    def _apply_precision(scorer, precision: str | None):
        """Resolve the requested serving precision against the scorer type."""
        if precision is None:
            return scorer
        from ..core.boosthd import BoostHD
        from ..engine import CompiledModel, compile_model
        from ..hdc.onlinehd import OnlineHD
        from .adaptation import AdaptiveModel

        if isinstance(scorer, (BoostHD, OnlineHD)):
            return compile_model(scorer, precision=precision)
        if isinstance(scorer, AdaptiveModel):
            scorer.set_precision(precision)
            return scorer
        if isinstance(scorer, CompiledModel):
            if precision == "cascade":
                # The bare alias matches the default cascade second tier.
                precision = "cascade-fixed16"
            if scorer.precision != precision:
                raise ValueError(
                    f"scorer is already compiled at precision "
                    f"{scorer.precision!r}; cannot requantize to {precision!r} "
                    "without the source model"
                )
            return scorer
        raise TypeError(
            f"cannot apply a serving precision to {type(scorer).__name__}; "
            "expected a fitted model, an AdaptiveModel or a compiled engine"
        )

    def open_session(self, session_id: str, **overrides) -> StreamSession:
        """Register a subject's stream; keyword overrides reach StreamSession."""
        if session_id in self.sessions:
            raise ValueError(f"session {session_id!r} is already open")
        options = {
            "n_channels": self.n_channels,
            "window_samples": self.window_samples,
            "step_samples": self.step_samples,
            "smoothing_window": self.smoothing_window,
            "statistics": self.statistics,
        }
        options.update(overrides)
        session = StreamSession(session_id, **options)
        self.sessions[session_id] = session
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_serving_sessions_opened_total",
                "Stream sessions registered with the service.",
            ).inc()
            OBS.metrics.gauge(
                "repro_serving_open_sessions",
                "Currently registered stream sessions.",
            ).set(len(self.sessions))
        return session

    def close_session(self, session_id: str) -> StreamSession:
        """Deregister a subject (pending submitted windows still get scored)."""
        try:
            session = self.sessions.pop(session_id)
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_serving_sessions_closed_total",
                "Stream sessions deregistered from the service.",
            ).inc()
            OBS.metrics.gauge(
                "repro_serving_open_sessions",
                "Currently registered stream sessions.",
            ).set(len(self.sessions))
        return session

    def push(self, session_id: str, samples: np.ndarray) -> list[Prediction]:
        """Feed raw samples for one subject; return newly released predictions.

        Completed windows are featurized incrementally inside the session and
        submitted to the scheduler; the scheduler releases fused batches per
        its ``max_batch`` / ``max_wait`` policy, so the returned list may
        contain predictions for *other* sessions whose windows shared the
        batch — route them by ``Prediction.session_id``.
        """
        try:
            session = self.sessions[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None
        for ready in session.push(samples):
            features = ready.features
            if self.transform is not None:
                features = np.asarray(self.transform(features[None]))[0]
            self.scheduler.submit(ready.session_id, ready.window_index, features)
        return self.scheduler.pump()

    def drain(self) -> list[Prediction]:
        """Force-score every pending window (end of tick / shutdown)."""
        return self.scheduler.flush()

    @property
    def dead_letters(self):
        """Windows dead-lettered after exhausting their retry budget."""
        return self.scheduler.dead_letters

    def replay_dead_letters(self, *, flush: bool = True) -> tuple[int, list[Prediction]]:
        """Re-submit every dead letter's preserved features for scoring.

        The supported operator API over what used to be an internal detail
        (``scheduler.dead_letters[...].features``): once the scorer fault
        behind the dead-lettering is fixed, replaying re-enters each window
        into the normal admission queue (fresh retry budget, subject to the
        ``max_pending`` shed bound) and — with ``flush`` (the default) —
        scores it immediately.  Returns ``(replayed_count, predictions)``;
        with ``flush=False`` the windows ride along with the next regular
        batch instead and the prediction list only carries whatever
        :meth:`MicroBatchScheduler.pump` releases right away.  Replayed
        windows are counted in ``repro_scheduler_dead_letters_replayed_total``.
        """
        replayed = self.scheduler.replay_dead_letters()
        if replayed == 0:
            return 0, []
        if flush:
            return replayed, self.scheduler.flush()
        return replayed, self.scheduler.pump()

    def swap_scorer(self, scorer, *, precision: str | None = None) -> list[Prediction]:
        """Atomically replace the scorer, flushing pending windows first.

        Every window already submitted is scored against the *old* scorer
        (their predictions are returned), then the scheduler switches to the
        new one — no window is ever scored against a half-swapped model.
        This is the in-process primitive under the fabric's blue/green hot
        swap (:meth:`repro.serving.fabric.ServingFabric.swap`).
        """
        scorer = self._apply_precision(scorer, precision)
        flushed = self.scheduler.flush()
        self.scheduler.scorer = scorer
        self.scheduler.degradation = self._build_ladder(scorer, self.degrade_deadline)
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_serving_scorer_swaps_total",
                "Hot scorer replacements performed by the service.",
            ).inc()
        return flushed

    @property
    def stats(self):
        """The scheduler's accumulated :class:`SchedulerStats`."""
        return self.scheduler.stats
