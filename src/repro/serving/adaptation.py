"""Drift monitoring and opt-in online adaptation for served models.

Physiological baselines drift — circadian temperature cycles, sensor
re-placement, habituation to a stressor — so a model that was accurate at
deployment time degrades silently.  Serving-side, drift shows up *before*
labels do, as shrinking decision confidence: the margin between the best and
second-best class score contracts when queries move away from the training
distribution.  :class:`DriftMonitor` tracks a rolling mean of that margin
against the baseline established right after deployment and flags when it
collapses.

When labeled feedback *is* available (periodic self-reports, a clinician
annotating flagged episodes), :class:`AdaptiveModel` applies OnlineHD-style
adaptive updates — the same rule the weak learners were trained with, via
:meth:`repro.hdc.OnlineHD.partial_fit` — to the served model without a
retrain, and invalidates/recompiles the fused engine so subsequent
micro-batches score against the updated class hypervectors.  Adaptation is
strictly opt-in: :meth:`AdaptiveModel.feedback` is the only mutating entry
point, and a monitor-only deployment never touches the model.

``partial_fit`` routes through the fused training engine
(:mod:`repro.engine.train`): a BoostHD feedback batch is encoded once for
the whole ensemble and each weak learner adapts on its pre-encoded slice
with the exact fast pass — bit-identical to the historical per-learner
loop, just cheaper, which matters because feedback runs inline with
serving.  A model constructed with ``batch_size`` set applies its feedback
epochs with the vectorised mini-batch trainer instead.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.boosthd import BoostHD
from ..hdc.onlinehd import OnlineHD
from ..obs import OBS

__all__ = ["DriftMonitor", "AdaptiveModel"]


class DriftMonitor:
    """Rolling score-margin monitor flagging confidence collapse.

    The *margin* of one scored window is ``top1 - top2`` of its per-class
    scores (for cosine-similarity scores this is scale-free).  The first
    ``baseline_window`` margins define the deployment baseline; afterwards
    the monitor reports drift when the mean margin over the last ``window``
    scores falls below ``ratio * baseline`` (or below ``min_margin``, when
    given — an absolute floor independent of the baseline).

    Parameters
    ----------
    window:
        Number of recent margins in the rolling mean.
    baseline_window:
        Number of initial margins frozen into the baseline.
    ratio:
        Fraction of the baseline margin below which drift is declared.
    min_margin:
        Optional absolute margin floor that also triggers drift.
    """

    def __init__(
        self,
        *,
        window: int = 256,
        baseline_window: int = 256,
        ratio: float = 0.5,
        min_margin: float | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if baseline_window < 1:
            raise ValueError(f"baseline_window must be >= 1, got {baseline_window}")
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.window = int(window)
        self.baseline_window = int(baseline_window)
        self.ratio = float(ratio)
        self.min_margin = None if min_margin is None else float(min_margin)
        self.observed = 0
        self._recent: deque[float] = deque(maxlen=self.window)
        self._baseline_sum = 0.0
        self._baseline_count = 0

    @staticmethod
    def margins(scores: np.ndarray) -> np.ndarray:
        """Per-row ``top1 - top2`` margins of a ``(n, n_classes)`` score matrix."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim == 1:
            scores = scores[None, :]
        if scores.shape[1] < 2:
            raise ValueError("need at least two classes to compute a margin")
        top2 = np.partition(scores, -2, axis=1)[:, -2:]
        return top2[:, 1] - top2[:, 0]

    def update(self, scores: np.ndarray) -> None:
        """Fold a batch of per-class scores into the rolling statistics."""
        for margin in self.margins(scores):
            value = float(margin)
            self.observed += 1
            if self._baseline_count < self.baseline_window:
                self._baseline_sum += value
                self._baseline_count += 1
            self._recent.append(value)

    @property
    def baseline_margin(self) -> float | None:
        """Mean margin of the deployment baseline (None until established)."""
        if self._baseline_count < self.baseline_window:
            return None
        return self._baseline_sum / self._baseline_count

    @property
    def rolling_margin(self) -> float | None:
        """Mean margin over the most recent ``window`` scores."""
        if not self._recent:
            return None
        return float(np.mean(self._recent))

    @property
    def drifted(self) -> bool:
        """True when recent confidence fell below the configured floor."""
        rolling = self.rolling_margin
        if rolling is None:
            return False
        if self.min_margin is not None and rolling < self.min_margin:
            return True
        baseline = self.baseline_margin
        return baseline is not None and rolling < self.ratio * baseline

    def reset_baseline(self) -> None:
        """Re-anchor the baseline on the next ``baseline_window`` scores.

        Call after adapting the model: the old confidence level no longer
        describes the updated class hypervectors.
        """
        self._baseline_sum = 0.0
        self._baseline_count = 0

    def __repr__(self) -> str:
        baseline = self.baseline_margin
        rolling = self.rolling_margin
        return (
            f"DriftMonitor(observed={self.observed}, "
            f"baseline={'-' if baseline is None else f'{baseline:.4f}'}, "
            f"rolling={'-' if rolling is None else f'{rolling:.4f}'}, "
            f"drifted={self.drifted})"
        )


class AdaptiveModel:
    """A served model plus its compiled engine, drift monitor and update path.

    Wraps a fitted :class:`~repro.hdc.OnlineHD` or
    :class:`~repro.core.BoostHD`.  :attr:`compiled` lazily builds (and after
    feedback, rebuilds) the fused :class:`~repro.engine.CompiledModel`;
    :meth:`score` routes a feature batch through the engine while feeding the
    drift monitor; :meth:`feedback` applies one adaptive epoch of labeled
    feedback and marks the engine stale.  A
    :class:`~repro.serving.scheduler.MicroBatchScheduler` can point directly
    at an ``AdaptiveModel`` (it exposes ``decision_function``/``classes_``),
    so adaptation slots into a running service without rewiring.

    Parameters
    ----------
    model:
        Fitted model to serve.
    monitor:
        Drift monitor fed by every :meth:`score`/:meth:`decision_function`
        call (default: a fresh :class:`DriftMonitor`).
    compile_options:
        Keyword options for :func:`repro.engine.compile_model` used on every
        (re)compile, e.g. ``{"dtype": np.float32, "cache_size": 32}``.
    precision:
        Serving precision of the compiled engine (``"float64"`` /
        ``"bipolar-packed"`` / ``"fixed16"`` / ``"fixed8"`` /
        ``"cascade[-...]"``).  The *model*
        stays full-precision — adaptation updates float class hypervectors —
        and every (re)compile quantizes the updated hypervectors into a
        fresh integer-domain engine, so feedback invalidates and rebuilds
        the quantized engine exactly like the float one.
    """

    def __init__(
        self,
        model: BoostHD | OnlineHD,
        *,
        monitor: DriftMonitor | None = None,
        compile_options: dict | None = None,
        precision: str | None = None,
    ) -> None:
        if not isinstance(model, (BoostHD, OnlineHD)):
            raise TypeError(
                f"expected BoostHD or OnlineHD, got {type(model).__name__}"
            )
        self.model = model
        self.monitor = monitor or DriftMonitor()
        self.compile_options = dict(compile_options or {})
        if precision is not None:
            self._validate_precision(precision)
            self.compile_options["precision"] = precision
        self._compiled = None
        self.recompiles = 0
        self.feedback_samples = 0
        self._drift_flagged = False

    # ------------------------------------------------------------ the engine
    @staticmethod
    def _validate_precision(precision: str) -> None:
        """Fail at configuration time, not on the first scoring call."""
        from ..engine.cascade import CASCADE_PRECISIONS
        from ..engine.quant import QUANT_PRECISIONS

        known = ("float64",) + QUANT_PRECISIONS + ("cascade",) + CASCADE_PRECISIONS
        if precision not in known:
            raise ValueError(
                f"unknown serving precision {precision!r}; available: {known}"
            )

    @property
    def precision(self) -> str:
        """Serving precision of the (next) compiled engine."""
        return self.compile_options.get("precision", "float64")

    def set_precision(self, precision: str) -> None:
        """Change the serving precision; invalidates the compiled engine."""
        if precision != self.precision:
            self._validate_precision(precision)
            self.compile_options["precision"] = precision
            self._compiled = None

    @property
    def stale(self) -> bool:
        """True when feedback invalidated the compiled engine."""
        return self._compiled is None

    @property
    def compiled(self):
        """The fused engine for the *current* model state (rebuilt if stale)."""
        if self._compiled is None:
            from ..engine import compile_model

            self._compiled = compile_model(self.model, **self.compile_options)
            self.recompiles += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_serving_recompiles_total",
                    "Engine (re)builds by adaptive serving models.",
                ).inc()
        return self._compiled

    @property
    def classes_(self) -> np.ndarray:
        return self.model.classes_

    # --------------------------------------------------------------- scoring
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Fused per-class scores; every call also feeds the drift monitor."""
        scores = self.compiled.decision_function(X)
        self.monitor.update(scores)
        if OBS.enabled:
            drifted = self.monitor.drifted
            if drifted and not self._drift_flagged:
                OBS.metrics.counter(
                    "repro_serving_drift_events_total",
                    "Drift-monitor transitions into the drifted state.",
                ).inc()
            self._drift_flagged = drifted
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Convenience: ``(labels, scores)`` of one monitored fused call."""
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)], scores

    # ------------------------------------------------------------ adaptation
    def feedback(self, X: np.ndarray, y: np.ndarray) -> None:
        """Apply one adaptive epoch of labeled feedback and invalidate the engine.

        One ``partial_fit`` epoch on the served model — a single
        :meth:`~repro.hdc.OnlineHD.partial_fit` for OnlineHD, or
        :meth:`~repro.core.BoostHD.partial_fit` (every weak learner, fixed
        boosting importances) for an ensemble.  Either way the epoch runs on
        the fused training engine (:mod:`repro.engine.train`): one ensemble
        encoding of the feedback batch, exact fast adaptive passes.

        The compiled engine is dropped and rebuilt on next use, and the drift
        baseline re-anchors so post-adaptation confidence defines the new
        normal.
        """
        X = np.asarray(X, dtype=np.float64)
        with OBS.recorder.span("serving.feedback", samples=len(X)):
            self.model.partial_fit(X, y)
        self.feedback_samples += len(X)
        self._compiled = None
        self.monitor.reset_baseline()
        if OBS.enabled:
            metrics = OBS.metrics
            metrics.counter(
                "repro_serving_feedback_batches_total",
                "Labeled feedback batches applied to served models.",
            ).inc()
            metrics.counter(
                "repro_serving_feedback_samples_total",
                "Labeled feedback samples applied to served models.",
            ).inc(len(X))
