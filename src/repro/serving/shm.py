"""Zero-copy model distribution over POSIX shared memory.

The serving fabric (:mod:`repro.serving.fabric`) runs one scoring engine per
worker process.  Engines are mostly *read-only array bundles* — the fused
projection, the phase bias, and the per-learner class representations — so
instead of pickling a model into every worker (N full copies), a single
writer lays every array of a compiled engine into one named
:class:`multiprocessing.shared_memory.SharedMemory` segment and hands the
workers a small picklable *manifest* describing the layout.  Each worker
attaches the segment and rebuilds the engine with the ``from_prepared``
constructors (:meth:`repro.engine.CompiledModel.from_prepared`,
:func:`repro.engine.quant.packed_block_from_words`,
:func:`repro.engine.quant.fixed_block_from_codes`): every large array is an
ndarray *view* into the shared mapping, so N workers cost one copy of the
model plus kilobytes of per-worker bookkeeping.  The packed/fixed engines
(~62x smaller class payloads than float64) make the segments small enough to
hot-swap freely.

Segment lifecycle
-----------------
* :func:`publish_engine` creates a segment named
  ``repro_fabric_{pid}.{start_token}_{token}_g{generation}`` and returns a
  :class:`SharedModel` (the writer-side handle).  The *publisher* owns the
  segment: workers only ever attach and ``close()``; the publisher calls
  :meth:`SharedModel.unlink` when the generation is retired (blue/green
  swap) or the fabric shuts down.
* :func:`attach_engine` maps an existing segment read-only, verifies every
  array against the per-array BLAKE2b digests recorded in the manifest
  (refusing a corrupted segment with :exc:`IntegrityError` — a flipped bit
  must never silently skew predictions), and returns an
  :class:`AttachedEngine` whose ``.engine`` scores directly over the shared
  buffers.  The handle keeps the mapping alive — drop all engine references
  before :meth:`AttachedEngine.close`.
* :func:`cleanup_orphan_segments` reclaims segments whose publishing process
  died without unlinking.  The name embeds both the publisher pid *and* its
  ``/proc`` start token, so a recycled pid (a new unrelated process that
  happens to reuse a dead publisher's number) cannot keep a corpse segment
  alive — the token distinguishes the two incarnations.

Attach-side handles deregister from the stdlib ``resource_tracker`` —
otherwise every worker's tracker would try to unlink the segment at exit,
destroying it while siblings still serve from it.
"""

from __future__ import annotations

import hashlib
import os
import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..engine.compile import CompiledModel, EngineError, LearnerBlock
from ..engine.quant import (
    FixedBlock,
    FixedPointModel,
    PackedBipolarModel,
    PackedBlock,
    fixed_block_from_codes,
    packed_block_from_words,
)
from ..resilience.chaos import CHAOS, corrupt_bytes

__all__ = [
    "AttachedEngine",
    "IntegrityError",
    "SEGMENT_PREFIX",
    "SharedModel",
    "attach_engine",
    "cleanup_orphan_segments",
    "publish_engine",
    "verify_manifest",
]

#: Prefix of every fabric shared-memory segment; orphan cleanup scans for it.
SEGMENT_PREFIX = "repro_fabric_"

#: Byte alignment of each array inside a segment.  64 covers every dtype the
#: engines use (the uint64 sign words need 8) and keeps rows cache-friendly.
_ALIGN = 64

_SHM_DIR = "/dev/shm"

#: BLAKE2b digest size (bytes) of the per-array checksums in a manifest.
_DIGEST_SIZE = 16


class IntegrityError(EngineError):
    """A shared segment's contents do not match the manifest checksums."""


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from unlinking an *attached* segment.

    CPython registers attach-side handles with the shared-memory resource
    tracker (bpo-39959); at worker exit the tracker would unlink segments
    the publisher still owns.  Publisher-side handles stay registered so a
    crashed publisher's tracker still reclaims them.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass


def _process_start_token(pid: int) -> str:
    """The kernel start time of ``pid`` — a pid-incarnation fingerprint.

    Field 22 of ``/proc/<pid>/stat`` (``starttime``, clock ticks since boot)
    is fixed for the life of a process and differs between two processes
    that recycle the same pid.  Returns ``""`` where procfs is unavailable
    (cleanup then falls back to the liveness check alone).
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
    except OSError:
        return ""
    # comm may contain spaces/parens; everything after the closing paren is
    # whitespace-separated, with starttime at index 19 of those fields.
    fields = stat.rpartition(")")[2].split()
    if len(fields) <= 19:  # pragma: no cover - malformed stat line
        return ""
    return fields[19]


def _segment_name(generation: int) -> str:
    pid = os.getpid()
    token = _process_start_token(pid)
    head = f"{pid}.{token}" if token else f"{pid}"
    return f"{SEGMENT_PREFIX}{head}_{secrets.token_hex(4)}_g{int(generation)}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def _engine_kind(engine: CompiledModel) -> str:
    if not isinstance(engine, CompiledModel) or not engine.blocks:
        raise EngineError(
            f"cannot publish {type(engine).__name__} to shared memory; "
            f"expected a compiled engine with learner blocks"
        )
    block = engine.blocks[0]
    if isinstance(engine, FixedPointModel) and isinstance(block, FixedBlock):
        return "fixed"
    if isinstance(engine, PackedBipolarModel) and isinstance(block, PackedBlock):
        return "packed"
    if type(engine) is CompiledModel and isinstance(block, LearnerBlock):
        return "float"
    raise EngineError(
        f"cannot publish {type(engine).__name__} to shared memory; supported "
        f"engines: CompiledModel, PackedBipolarModel, FixedPointModel "
        f"(publish cascade stages individually)"
    )


# ------------------------------------------------------------------ publish
@dataclass
class SharedModel:
    """Writer-side handle of a published model segment.

    Holds the manifest workers attach with, and owns the segment: call
    :meth:`unlink` exactly once when the generation is retired.
    """

    manifest: dict
    _shm: shared_memory.SharedMemory = field(repr=False)

    @property
    def name(self) -> str:
        return self.manifest["segment"]

    @property
    def generation(self) -> int:
        return self.manifest["generation"]

    @property
    def nbytes(self) -> int:
        """Bytes of model payload laid into the segment (excluding padding)."""
        return self.manifest["payload_bytes"]

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment.  Attached workers keep their mappings until
        they close, but no new attach can succeed afterwards."""
        self._shm.close()
        try:
            # Forked workers share the publisher's resource tracker, so an
            # attach-side ``_untrack`` may have dropped this segment's entry;
            # re-register so the unregister inside ``unlink()`` always pairs
            # (re-registration is a set update — a no-op when still present).
            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass

    def __repr__(self) -> str:
        return (
            f"SharedModel(name={self.name!r}, generation={self.generation}, "
            f"kind={self.manifest['kind']!r}, nbytes={self.nbytes})"
        )


def publish_engine(
    engine: CompiledModel, *, generation: int = 0, name: str | None = None
) -> SharedModel:
    """Lay a compiled engine's arrays into one named shared-memory segment.

    Copies every model array — the fused projection ``_basis2``, the phase
    bias pair, and each block's class payload (float weights, padded sign
    words, or transposed fixed-point codes with their reciprocal norms) —
    into a fresh segment, exactly once.  Returns the :class:`SharedModel`
    whose picklable ``manifest`` lets any process rebuild the engine over
    the shared buffers via :func:`attach_engine`.
    """
    kind = _engine_kind(engine)
    arrays: list[tuple[str, np.ndarray]] = [
        ("basis2", engine._basis2),
        ("bias", engine._bias),
        ("sin_bias", engine._sin_bias),
    ]
    blocks: list[dict] = []
    for i, block in enumerate(engine.blocks):
        entry: dict = {
            "start": int(block.start),
            "stop": int(block.stop),
            "alpha": float(block.alpha),
            "columns": np.asarray(block.columns),
        }
        if kind == "float":
            arrays.append((f"block{i}.class_weights", block.class_weights))
        elif kind == "packed":
            arrays.append((f"block{i}.words", block.words))
        else:
            entry["scale"] = float(block.scale)
            arrays.append((f"block{i}.codes", block.codes))
            arrays.append((f"block{i}.inv_norms", block.inv_norms))
        blocks.append(entry)

    specs: dict[str, dict] = {}
    offset = 0
    payload = 0
    for key, array in arrays:
        array = np.ascontiguousarray(array)
        offset = -(-offset // _ALIGN) * _ALIGN
        specs[key] = {
            "dtype": array.dtype.str,
            "shape": tuple(int(s) for s in array.shape),
            "offset": offset,
        }
        offset += array.nbytes
        payload += array.nbytes

    segment = name or _segment_name(generation)
    shm = shared_memory.SharedMemory(name=segment, create=True, size=max(offset, 1))
    try:
        for key, array in arrays:
            spec = specs[key]
            contiguous = np.ascontiguousarray(array)
            view = np.ndarray(
                spec["shape"],
                dtype=np.dtype(spec["dtype"]),
                buffer=shm.buf,
                offset=spec["offset"],
            )
            view[...] = contiguous
            # Checksum the source bytes, not the segment: if anything damages
            # the segment between write and attach, verification must notice.
            spec["blake2b"] = hashlib.blake2b(
                contiguous.tobytes(), digest_size=_DIGEST_SIZE
            ).hexdigest()
            del view
        if CHAOS.enabled:
            fault = CHAOS.hit("shm.publish", segment=segment, kind=kind)
            if fault is not None and fault.kind == "corrupt":
                corrupt_bytes(shm.buf, CHAOS.spec_rng(fault))
    except BaseException:
        shm.close()
        shm.unlink()
        raise

    publisher_pid = os.getpid()
    manifest = {
        "segment": segment,
        "generation": int(generation),
        "kind": kind,
        "publisher_pid": publisher_pid,
        "publisher_token": _process_start_token(publisher_pid),
        "precision": getattr(engine, "precision", "float64"),
        "dtype": engine.dtype.str,
        "aggregation": engine.aggregation,
        "chunk_size": engine.chunk_size,
        "shared_projection": engine.shared_projection,
        "score_threads": engine.score_threads,
        "classes": np.asarray(engine.classes_),
        "arrays": specs,
        "blocks": blocks,
        "payload_bytes": payload,
    }
    return SharedModel(manifest=manifest, _shm=shm)


# ---------------------------------------------------------------- integrity
def _verify_arrays(manifest: dict, buf) -> None:
    """Check every manifest array's bytes against its recorded digest.

    Raises :exc:`IntegrityError` naming the damaged arrays.  Manifests
    published before checksums existed (no ``blake2b`` entries) pass — there
    is nothing to verify against.
    """
    damaged = []
    for key, spec in manifest["arrays"].items():
        expected = spec.get("blake2b")
        if expected is None:
            continue
        nbytes = int(np.dtype(spec["dtype"]).itemsize * np.prod(spec["shape"] or (1,)))
        start = spec["offset"]
        digest = hashlib.blake2b(
            bytes(buf[start : start + nbytes]), digest_size=_DIGEST_SIZE
        ).hexdigest()
        if digest != expected:
            damaged.append(key)
    if damaged:
        raise IntegrityError(
            f"segment {manifest['segment']!r} failed checksum verification; "
            f"damaged arrays: {', '.join(sorted(damaged))} — refusing to "
            "serve from a corrupted model"
        )


def verify_manifest(manifest: dict) -> None:
    """Attach a published segment just long enough to verify its checksums.

    The parent-side guard of the fabric's blue/green swap: a corrupted
    incoming generation is rejected *before* any worker is asked to attach
    it.  Raises :exc:`IntegrityError` on damage, ``FileNotFoundError`` if
    the segment is gone.
    """
    shm = shared_memory.SharedMemory(name=manifest["segment"], create=False)
    _untrack(shm)
    try:
        _verify_arrays(manifest, shm.buf)
    finally:
        shm.close()


# ------------------------------------------------------------------- attach
class AttachedEngine:
    """A scoring engine built as views over an attached shared segment.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory` mapping
    alive for as long as ``engine`` exists; every large array of ``engine``
    aliases the shared buffer (read-only), so the attach costs no model
    copy.  Call :meth:`close` only after dropping every reference to
    ``engine`` and to predictions' borrowed arrays.

    With ``verify=True`` (the default) the mapping's bytes are checked
    against the manifest's per-array BLAKE2b digests before the engine is
    built; a mismatch raises :exc:`IntegrityError` and nothing attaches.
    """

    def __init__(self, manifest: dict, *, verify: bool = True) -> None:
        self.manifest = manifest
        self.generation = int(manifest["generation"])
        self.segment = manifest["segment"]
        self._shm = shared_memory.SharedMemory(name=self.segment, create=False)
        _untrack(self._shm)
        try:
            if verify:
                _verify_arrays(manifest, self._shm.buf)
            self.engine = self._build()
        except BaseException:
            self._shm.close()
            raise

    def _view(self, key: str) -> np.ndarray:
        spec = self.manifest["arrays"][key]
        view = np.ndarray(
            spec["shape"],
            dtype=np.dtype(spec["dtype"]),
            buffer=self._shm.buf,
            offset=spec["offset"],
        )
        view.flags.writeable = False
        return view

    def _build(self) -> CompiledModel:
        manifest = self.manifest
        kind = manifest["kind"]
        blocks = []
        for i, entry in enumerate(manifest["blocks"]):
            start, stop = entry["start"], entry["stop"]
            alpha, columns = entry["alpha"], entry["columns"]
            if kind == "float":
                blocks.append(
                    LearnerBlock(
                        start=start,
                        stop=stop,
                        alpha=alpha,
                        columns=columns,
                        class_weights=self._view(f"block{i}.class_weights"),
                    )
                )
            elif kind == "packed":
                blocks.append(
                    packed_block_from_words(
                        start, stop, alpha, columns, self._view(f"block{i}.words")
                    )
                )
            else:
                blocks.append(
                    fixed_block_from_codes(
                        start,
                        stop,
                        alpha,
                        columns,
                        self._view(f"block{i}.codes"),
                        entry["scale"],
                        self._view(f"block{i}.inv_norms"),
                    )
                )
        options = dict(
            basis2=self._view("basis2"),
            bias=self._view("bias"),
            sin_bias=self._view("sin_bias"),
            blocks=blocks,
            classes=manifest["classes"],
            aggregation=manifest["aggregation"],
            dtype=np.dtype(manifest["dtype"]),
            chunk_size=manifest["chunk_size"],
            shared_projection=manifest["shared_projection"],
            score_threads=manifest["score_threads"],
        )
        if kind == "float":
            return CompiledModel.from_prepared(**options)
        if kind == "packed":
            return PackedBipolarModel.from_prepared(**options)
        return FixedPointModel.from_prepared(precision=manifest["precision"], **options)

    def close(self) -> None:
        """Drop the engine and this process's mapping of the segment."""
        self.engine = None
        self._shm.close()

    def __repr__(self) -> str:
        return (
            f"AttachedEngine(segment={self.segment!r}, "
            f"generation={self.generation}, kind={self.manifest['kind']!r})"
        )


def attach_engine(manifest: dict, *, verify: bool = True) -> AttachedEngine:
    """Attach a published segment and rebuild its engine over shared buffers.

    Verifies the segment against the manifest checksums first (see
    :class:`AttachedEngine`); pass ``verify=False`` only when the same
    manifest was just verified through :func:`verify_manifest`.
    """
    return AttachedEngine(manifest, verify=verify)


# ------------------------------------------------------------------ cleanup
def cleanup_orphan_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Unlink fabric segments whose publishing process is gone.

    Scans the POSIX shm filesystem for ``{prefix}{pid}.{token}_...`` names
    (and the older ``{prefix}{pid}_...`` form), checks whether the embedded
    publisher pid is still alive — *and*, when a start token is present,
    whether the live process is the same incarnation that published the
    segment.  A recycled pid (new process, same number) therefore cannot
    shield a dead publisher's segment from reclamation, and conversely a
    live publisher can never lose a segment to cleanup: its token matches.
    Run at fabric startup so a crashed predecessor cannot leak /dev/shm
    space indefinitely.  Returns the reclaimed names; returns ``[]``
    (touching nothing) where the shm filesystem is absent.
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return []
    reclaimed = []
    for entry in names:
        if not entry.startswith(prefix):
            continue
        suffix = entry[len(prefix) :]
        pid_text, _, token = suffix.split("_", 1)[0].partition(".")
        if not pid_text.isdigit():
            continue
        pid = int(pid_text)
        if _pid_alive(pid) and (not token or _process_start_token(pid) == token):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
        except OSError:  # pragma: no cover - raced with another cleaner
            continue
        reclaimed.append(entry)
    return reclaimed
