"""Multi-process serving fabric: sharded sessions, shared models, hot swap.

One Python process caps streaming throughput at the GIL long before the
scoring kernels saturate a machine.  :class:`ServingFabric` scales the
:class:`~repro.serving.service.StreamingService` horizontally inside one
host:

* **Session sharding** — every session is pinned to one of N worker
  processes by a *stable* hash of its id (:func:`shard_of`).  All of a
  session's windows land on the same worker, so windowing state, smoothing
  and micro-batching behave exactly as in the single-process service.
  (Python's builtin ``hash`` is salted per process, so the fabric hashes
  with BLAKE2b — the routing must agree across restarts and processes.)
* **Zero-copy models** — the model is published once into a named
  shared-memory segment (:mod:`repro.serving.shm`); every worker attaches
  and scores through ndarray views of the same physical pages.  N workers
  cost ~one copy of the model, not N.
* **Blue/green hot swap** — :meth:`ServingFabric.swap` publishes the new
  model as a fresh segment (generation ``g+1``), then walks the shards:
  each flushes its pending windows against the *old* engine, atomically
  switches its scorer to the new attachment, and drops its old mapping.
  Only after every shard acknowledges does the fabric unlink the old
  segment.  No window is ever scored against a half-swapped model, none is
  dropped or double-scored, and promotion can be gated on a
  :class:`~repro.serving.adaptation.DriftMonitor`.
* **Worker recovery** — a killed worker breaks its (single-process) pool;
  the fabric rebuilds the pool, re-attaches the current generation,
  re-opens the shard's sessions from the parent-side ledger, and retries
  the call once.  Recovered sessions restart their windowing state (the
  raw-sample tail of a dead process is not recoverable by design).
* **Resilience** (:mod:`repro.resilience`) — every worker call carries a
  ``call_timeout``; a *wedged* (hung, not dead) worker is SIGKILLed on
  timeout and recovered like a crash, so drain and swap can never block
  forever.  One :class:`~repro.resilience.CircuitBreaker` per shard counts
  *unrecovered* transport failures (timeout / broken pool where the
  rebuild-and-retry also failed); a tripped shard fails fast with
  :class:`~repro.resilience.CircuitOpenError` until a probe is due, and
  the probe itself is a full recovery attempt.  Scorer exceptions inside a
  worker are application failures and never count toward the breaker.
  Published segments carry per-array checksums (:mod:`repro.serving.shm`):
  a corrupted incoming generation is rejected parent-side before any
  worker attaches it, and a worker that finds its segment damaged falls
  back to copy-loading the model from a :class:`ModelRegistry` when the
  fabric was given a ``fallback`` spec.  An installed chaos plan
  (:mod:`repro.resilience.chaos`) is forwarded to every worker.

Worker counts resolve like every other pool in the repo
(:func:`repro.runtime.executor.resolve_max_workers`), consulting
``REPRO_FABRIC_WORKERS`` then ``REPRO_MAX_WORKERS``; one worker — or a
platform where process pools are unavailable — degrades to an in-process
serial fabric with identical routing and results.
"""

from __future__ import annotations

import hashlib
import os
import signal
from collections import defaultdict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from ..obs import OBS
from ..resilience.chaos import CHAOS, FaultPlan, install as install_chaos
from ..resilience.policy import CircuitBreaker, CircuitOpenError, Deadline
from ..runtime.executor import resolve_max_workers
from .scheduler import Prediction
from .service import StreamingService
from .shm import (
    AttachedEngine,
    IntegrityError,
    attach_engine,
    cleanup_orphan_segments,
    publish_engine,
    verify_manifest,
)

__all__ = [
    "ServingFabric",
    "SwapResult",
    "process_uss",
    "shard_of",
]

#: Environment variables consulted (in order) when ``n_workers`` is None.
WORKER_ENV = ("REPRO_FABRIC_WORKERS", "REPRO_MAX_WORKERS")


def shard_of(session_id: str, n_shards: int) -> int:
    """The worker index a session id is pinned to — stable across processes.

    BLAKE2b rather than builtin ``hash``: the latter is salted per process
    (PYTHONHASHSEED), which would route the same session to different
    workers in different processes or across restarts.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.blake2b(str(session_id).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big") % n_shards


def process_uss() -> int | None:
    """This process's unique set size in bytes (``None`` where unavailable).

    USS (private pages only) rather than RSS: shared-memory model pages are
    resident in *every* attached worker, so RSS would count the one model
    copy N times and make zero-copy distribution look like N copies.
    """
    try:
        with open("/proc/self/smaps_rollup") as stream:
            text = stream.read()
    except OSError:
        return None
    total = 0
    for line in text.splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            total += int(line.split()[1])
    return total * 1024


# ----------------------------------------------------------------- runtime
class _CopyLoadedEngine:
    """Attachment-shaped handle over a registry copy-load.

    Stands in for :class:`AttachedEngine` when a worker refused a corrupted
    shared segment and fell back to loading the model from the registry:
    same ``engine`` / ``generation`` / ``close()`` surface, but the arrays
    are a private copy — correctness is preserved at the cost of the
    zero-copy memory win, until the next healthy swap re-attaches.
    """

    def __init__(self, engine, generation: int) -> None:
        self.engine = engine
        self.generation = int(generation)

    def close(self) -> None:
        self.engine = None


def _fallback_engine(spec: dict):
    """Copy-load the fabric's model from a registry fallback spec."""
    from .registry import ModelRegistry

    registry = ModelRegistry(spec["root"])
    return registry.load_compiled(
        spec["name"],
        spec.get("version"),
        precision=spec.get("precision", "float64"),
        **dict(spec.get("compile_options") or {}),
    )


class _ShardRuntime:
    """One shard's in-worker state: the attached engine and its service."""

    def __init__(
        self,
        manifest: dict,
        service_options: dict,
        index: int,
        fallback: dict | None = None,
    ) -> None:
        self.index = index
        self.fallback = fallback
        self.integrity_fallbacks = 0
        self.attached = self._attach(manifest)
        self.service = StreamingService(self.attached.engine, **service_options)

    def _attach(self, manifest: dict) -> AttachedEngine | _CopyLoadedEngine:
        """Attach a verified segment, or copy-load from the registry fallback.

        A segment that fails checksum verification is *never* served from;
        with no fallback configured the :exc:`IntegrityError` propagates
        (the shard refuses to come up on corrupt data — loud beats wrong).
        """
        try:
            return attach_engine(manifest)
        except IntegrityError:
            if self.fallback is None:
                raise
            engine = _fallback_engine(self.fallback)
            self.integrity_fallbacks += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_fabric_integrity_fallbacks_total",
                    "Workers that refused a corrupt segment and copy-loaded "
                    "the model from the registry.",
                ).inc()
            return _CopyLoadedEngine(engine, manifest["generation"])

    @property
    def generation(self) -> int:
        return self.attached.generation

    def open(self, session_id: str, overrides: dict) -> str:
        self.service.open_session(session_id, **overrides)
        return session_id

    def close_session(self, session_id: str) -> str:
        self.service.close_session(session_id)
        return session_id

    def push_many(self, batch: list) -> list[Prediction]:
        predictions: list[Prediction] = []
        for session_id, samples in batch:
            predictions.extend(self.service.push(session_id, samples))
        return predictions

    def drain(self) -> list[Prediction]:
        return self.service.drain()

    def swap(self, manifest: dict) -> list[Prediction]:
        """Flush on the old engine, switch to the new segment, drop the old.

        The flush inside :meth:`StreamingService.swap_scorer` happens while
        the old engine is still the scheduler's scorer, so every in-flight
        window scores against exactly one complete model.
        """
        incoming = self._attach(manifest)
        flushed = self.service.swap_scorer(incoming.engine)
        outgoing, self.attached = self.attached, incoming
        try:
            outgoing.close()
        except BufferError:  # pragma: no cover - a borrowed view still live
            pass
        return flushed

    def stats(self) -> dict:
        stats = self.service.stats
        return {
            "windows": stats.windows_scored,
            "batches": stats.batches,
            "score_failures": stats.score_failures,
            "mean_batch": stats.mean_batch_size,
            "windows_submitted": stats.windows_submitted,
            "windows_shed": stats.windows_shed,
            "windows_dead": stats.windows_dead,
            "integrity_fallbacks": self.integrity_fallbacks,
        }

    def info(self) -> dict:
        return {
            "pid": os.getpid(),
            "generation": self.generation,
            "sessions": len(self.service.sessions),
            "uss_bytes": process_uss(),
        }

    def shutdown(self) -> list[Prediction]:
        flushed = self.service.drain()
        try:
            self.attached.close()
        except BufferError:  # pragma: no cover
            pass
        return flushed


_RUNTIME: _ShardRuntime | None = None


def _worker_init(
    manifest: dict,
    service_options: dict,
    index: int,
    obs_enabled: bool,
    chaos_json: str | None = None,
    fallback: dict | None = None,
) -> None:
    global _RUNTIME
    if obs_enabled:
        # Same policy as the grid executor's workers: a fresh registry per
        # worker, never the fork-inherited parent counts.
        from ..obs import enable
        from ..obs.metrics import MetricsRegistry
        from ..obs.trace import SpanRecorder

        enable(MetricsRegistry(), SpanRecorder())
    if chaos_json:
        # The parent's fault plan, replayed in this worker: same seed, same
        # per-spec RNG streams, independent hit counters.
        install_chaos(FaultPlan.from_json(chaos_json))
    _RUNTIME = _ShardRuntime(manifest, service_options, index, fallback)


def _worker_call(method: str, *args):
    if CHAOS.enabled:
        CHAOS.hit(
            "fabric.worker.call",
            method=method,
            shard=None if _RUNTIME is None else _RUNTIME.index,
        )
    return getattr(_RUNTIME, method)(*args)


# ------------------------------------------------------------------ shards
class _LocalShard:
    """In-process shard: the serial fallback, same routing, same results."""

    def __init__(
        self, index, manifest, service_options, obs_enabled, fallback=None
    ) -> None:
        self.index = index
        self.manifest = manifest
        self.pid = os.getpid()
        self.runtime = _ShardRuntime(manifest, service_options, index, fallback)

    def submit(self, method: str, *args) -> Future:
        future: Future = Future()
        try:
            future.set_result(getattr(self.runtime, method)(*args))
        except BaseException as error:
            future.set_exception(error)
        return future

    def kill(self) -> None:
        """No-op: an in-process shard cannot be killed without the fabric."""

    def shutdown(self) -> None:
        self.runtime.shutdown()


class _ProcessShard:
    """One worker process, owned exclusively by one shard.

    A dedicated single-worker pool per shard (rather than one shared pool)
    is what gives sessions *state affinity*: ``ProcessPoolExecutor`` offers
    no way to route a task to a chosen worker, but a one-worker pool has
    only one place to go.
    """

    def __init__(
        self, index, manifest, service_options, obs_enabled, fallback=None
    ) -> None:
        self.index = index
        self.manifest = manifest
        self._service_options = service_options
        self._obs_enabled = obs_enabled
        self._fallback = fallback
        self.pid: int | None = None
        self.pool = self._spawn()

    def _spawn(self) -> ProcessPoolExecutor:
        chaos_json = CHAOS.plan.to_json() if CHAOS.enabled else None
        pool = ProcessPoolExecutor(
            max_workers=1,
            initializer=_worker_init,
            initargs=(
                self.manifest,
                self._service_options,
                self.index,
                self._obs_enabled,
                chaos_json,
                self._fallback,
            ),
        )
        # Force the worker up now so initializer failures surface here, not
        # on some later scoring call — and learn the worker pid, which is
        # what lets a wedged (hung, not dead) worker be killed on timeout.
        self.pid = pool.submit(_worker_call, "info").result()["pid"]
        return pool

    def submit(self, method: str, *args) -> Future:
        try:
            return self.pool.submit(_worker_call, method, *args)
        except BrokenProcessPool as error:
            # An already-broken pool refuses submissions synchronously; hand
            # the breakage back as a failed future so recovery is handled in
            # exactly one place (:meth:`ServingFabric._result`).
            future: Future = Future()
            future.set_exception(error)
            return future

    def kill(self) -> None:
        """SIGKILL the worker process (used when a call times out).

        A hung worker holds its pool hostage: futures never resolve and a
        graceful shutdown joins forever.  Killing the process breaks the
        pool, which converts the hang into the crash path the fabric
        already knows how to recover from.
        """
        if self.pid is None:
            return
        try:
            os.kill(self.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):  # pragma: no cover
            pass

    def rebuild(self) -> None:
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = self._spawn()

    def shutdown(self) -> None:
        try:
            self.pool.submit(_worker_call, "shutdown").result(timeout=30)
        except Exception:
            # Dead or wedged worker: kill it so the pool teardown cannot
            # join a process that will never exit on its own.
            self.kill()
            self.pool.shutdown(wait=False, cancel_futures=True)
            return
        self.pool.shutdown()


# ------------------------------------------------------------------ fabric
@dataclass(frozen=True)
class SwapResult:
    """Outcome of a :meth:`ServingFabric.swap` attempt."""

    promoted: bool
    generation: int
    flushed: tuple = ()
    reason: str = ""


class ServingFabric:
    """Shard streaming sessions across N worker processes over one shared model.

    Parameters
    ----------
    engine:
        A compiled scoring engine (:class:`~repro.engine.CompiledModel`,
        :class:`~repro.engine.PackedBipolarModel` or
        :class:`~repro.engine.FixedPointModel`) — published once into
        shared memory; workers attach, never copy.
    n_workers:
        Worker count; ``None`` consults ``REPRO_FABRIC_WORKERS`` then
        ``REPRO_MAX_WORKERS`` and falls back to the in-process serial
        fabric; ``"auto"`` uses the available CPU count.
    serial:
        Force the in-process fallback regardless of ``n_workers`` (shards
        still exist and route identically — they just share one process).
    cleanup_orphans:
        Reclaim shared-memory segments leaked by dead fabrics at startup
        (:func:`repro.serving.shm.cleanup_orphan_segments`).
    call_timeout:
        Per-call timeout, seconds, on every worker future (``None`` =
        unbounded, the pre-PR-9 behaviour).  A timed-out worker is treated
        as wedged: SIGKILLed and recovered like a crash, so no drain or
        swap can block forever on one hung process.
    breaker_options:
        Keyword arguments for each shard's
        :class:`~repro.resilience.CircuitBreaker` (``failure_threshold``,
        ``probe_interval``, ``success_threshold``).
    fallback:
        Registry copy-load spec — ``{"root", "name", "version",
        "precision", "compile_options"}`` — a worker uses when its shared
        segment fails checksum verification.  :meth:`from_registry` fills
        this in automatically.
    **service_options:
        Forwarded to each worker's :class:`StreamingService` —
        ``n_channels``, ``window_samples``, ``max_batch``, ``max_wait``,
        etc.  Everything must be picklable (a ``transform`` lambda is not).
    """

    def __init__(
        self,
        engine,
        *,
        n_workers: int | str | None = None,
        serial: bool = False,
        cleanup_orphans: bool = True,
        call_timeout: float | None = 30.0,
        breaker_options: dict | None = None,
        fallback: dict | None = None,
        **service_options,
    ) -> None:
        if cleanup_orphans:
            cleanup_orphan_segments()
        self.n_workers = resolve_max_workers(n_workers, env=WORKER_ENV)
        self._service_options = dict(service_options)
        self.call_timeout = None if call_timeout is None else float(call_timeout)
        self.fallback = fallback
        self._shared = publish_engine(engine, generation=0)
        self._session_specs: dict[str, dict] = {}
        self.restarts = 0
        self.swaps = 0
        self.timeouts = 0
        self.serial = bool(serial) or self.n_workers <= 1
        self._shards: list = []
        self.breakers = [
            CircuitBreaker(name=f"shard{index}", **dict(breaker_options or {}))
            for index in range(self.n_workers)
        ]
        try:
            self._build_shards()
        except BaseException:
            self._shared.unlink()
            raise

    def _build_shards(self) -> None:
        manifest = self._shared.manifest
        obs_enabled = OBS.enabled
        if not self.serial:
            try:
                for index in range(self.n_workers):
                    self._shards.append(
                        _ProcessShard(
                            index,
                            manifest,
                            self._service_options,
                            obs_enabled,
                            self.fallback,
                        )
                    )
            except Exception:
                # Pools unavailable (sandboxed platform, missing sem support,
                # broken fork): degrade to the in-process fabric.
                for shard in self._shards:
                    shard.shutdown()
                self._shards = []
                self.serial = True
        if self.serial:
            self._shards = [
                _LocalShard(
                    index, manifest, self._service_options, obs_enabled, self.fallback
                )
                for index in range(self.n_workers)
            ]

    # ------------------------------------------------------------- plumbing
    @classmethod
    def from_registry(
        cls,
        registry,
        name: str,
        version: int | None = None,
        *,
        precision: str = "float64",
        n_workers: int | str | None = None,
        **options,
    ) -> "ServingFabric":
        """Build a fabric straight from a stored registry artifact."""
        compile_options = {
            key: options.pop(key)
            for key in ("dtype", "chunk_size", "cache_size", "cache_bytes")
            if key in options
        }
        engine = registry.load_compiled(
            name, version, precision=precision, **compile_options
        )
        options.setdefault(
            "fallback",
            {
                "root": str(registry.root),
                "name": name,
                "version": registry.latest(name) if version is None else int(version),
                "precision": precision,
                "compile_options": dict(compile_options),
            },
        )
        return cls(engine, n_workers=n_workers, **options)

    def _admit(self, shard_index: int) -> None:
        """Consult the shard's breaker; fail fast when the circuit is open."""
        breaker = self.breakers[shard_index]
        if not breaker.allow():
            raise CircuitOpenError(
                f"shard {shard_index} circuit is open "
                f"(trips={breaker.trips}); failing fast",
                retry_in=breaker.time_until_probe(),
            )

    def _timeout(self, deadline: Deadline | None) -> float | None:
        if deadline is None:
            return self.call_timeout
        return deadline.budget(self.call_timeout)

    def _call(self, shard_index: int, method: str, *args, deadline=None):
        """One shard call: breaker admission, timeout, single-retry recovery."""
        self._admit(shard_index)
        future = self._shards[shard_index].submit(method, *args)
        return self._result(shard_index, future, method, args, deadline=deadline)

    def _result(
        self,
        shard_index: int,
        future: Future,
        method: str,
        args,
        *,
        deadline: Deadline | None = None,
    ):
        """Resolve one worker future under the shard's failure policy.

        Transport failures — a broken pool, or a timeout (the worker is
        wedged and gets SIGKILLed first) — trigger one rebuild-and-retry;
        the shard's breaker records a failure only when the *retry* also
        fails, so a breaker trip means the shard is unrecoverable right
        now, not merely that one worker died.  When the breaker is open, a
        due probe admitted by :meth:`_admit` runs this exact path — the
        probe *is* a recovery attempt.  Application exceptions raised by
        the scorer pass through untouched and never count.
        """
        breaker = self.breakers[shard_index]
        try:
            result = future.result(timeout=self._timeout(deadline))
        except (BrokenProcessPool, FuturesTimeoutError) as error:
            if isinstance(error, FuturesTimeoutError):
                self._handle_timeout(shard_index, method)
            try:
                self._recover(shard_index)
                if deadline is not None:
                    deadline.check(f"fabric {method} call")
                retry = self._shards[shard_index].submit(method, *args)
                result = retry.result(timeout=self._timeout(deadline))
            except BaseException:
                breaker.record_failure()
                raise
        breaker.record_success()
        return result

    def _handle_timeout(self, shard_index: int, method: str) -> None:
        """Convert a hung worker into the crash path: SIGKILL + account."""
        self._shards[shard_index].kill()
        self.timeouts += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_fabric_call_timeouts_total",
                "Worker calls that exceeded call_timeout (worker killed).",
            ).inc()

    def _recover(self, shard_index: int) -> None:
        """Rebuild a dead worker and replay its session registrations."""
        shard = self._shards[shard_index]
        shard.manifest = self._shared.manifest
        shard.rebuild()
        for session_id, overrides in self._session_specs.items():
            if shard_of(session_id, self.n_workers) == shard_index:
                shard.submit("open", session_id, overrides).result(
                    timeout=self.call_timeout
                )
        self.restarts += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_fabric_worker_restarts_total",
                "Fabric workers rebuilt after an unexpected death.",
            ).inc()

    # -------------------------------------------------------------- serving
    def open_session(self, session_id: str, **overrides) -> int:
        """Register a session on its shard; returns the shard index."""
        if session_id in self._session_specs:
            raise ValueError(f"session {session_id!r} is already open")
        shard = shard_of(session_id, self.n_workers)
        self._call(shard, "open", session_id, overrides)
        self._session_specs[session_id] = dict(overrides)
        return shard

    def close_session(self, session_id: str) -> None:
        """Deregister a session from its shard."""
        if session_id not in self._session_specs:
            raise KeyError(f"no open session {session_id!r}")
        shard = shard_of(session_id, self.n_workers)
        self._call(shard, "close_session", session_id)
        del self._session_specs[session_id]

    def push(self, session_id: str, samples: np.ndarray) -> list[Prediction]:
        """Feed raw samples for one session; returns released predictions."""
        if session_id not in self._session_specs:
            raise KeyError(f"no open session {session_id!r}")
        shard = shard_of(session_id, self.n_workers)
        return self._call(shard, "push_many", [(session_id, np.asarray(samples))])

    def route(self, items) -> list[Prediction]:
        """Push many ``(session_id, samples)`` pairs, fanned out per shard.

        Items are grouped by shard and dispatched to every worker
        concurrently — this is the fabric's throughput path.  Within one
        shard, items apply in the order given, so per-session sample order
        is preserved (a session only ever lives on one shard).
        """
        groups: dict[int, list] = defaultdict(list)
        for session_id, samples in items:
            if session_id not in self._session_specs:
                raise KeyError(f"no open session {session_id!r}")
            shard = shard_of(session_id, self.n_workers)
            groups[shard].append((session_id, np.asarray(samples)))
        for shard in groups:
            self._admit(shard)
        futures = {
            shard: self._shards[shard].submit("push_many", batch)
            for shard, batch in groups.items()
        }
        predictions: list[Prediction] = []
        for shard, future in futures.items():
            predictions.extend(
                self._result(shard, future, "push_many", (groups[shard],))
            )
        return predictions

    def drain(self, *, deadline: Deadline | None = None) -> list[Prediction]:
        """Force-score every pending window on every shard.

        An optional :class:`~repro.resilience.Deadline` bounds the whole
        drain: each shard's wait gets the remaining budget (capped by
        ``call_timeout``), so one wedged worker cannot stall shutdown past
        the budget — it is killed and recovered like any timed-out call.
        """
        for index in range(len(self._shards)):
            self._admit(index)
        futures = [
            (index, shard.submit("drain")) for index, shard in enumerate(self._shards)
        ]
        predictions: list[Prediction] = []
        for index, future in futures:
            predictions.extend(
                self._result(index, future, "drain", (), deadline=deadline)
            )
        return predictions

    # ------------------------------------------------------------- hot swap
    @property
    def generation(self) -> int:
        """The currently promoted model generation."""
        return self._shared.generation

    def swap(self, engine, *, gate=None, deadline: Deadline | None = None) -> SwapResult:
        """Blue/green hot swap to a new engine, optionally drift-gated.

        ``gate`` may be ``None`` (always promote), a
        :class:`~repro.serving.adaptation.DriftMonitor` (promote only when
        ``.drifted`` — roll a refreshed model in response to score-margin
        drift), or any callable returning truthiness.  On promotion the new
        model is published as generation ``g+1`` and its segment is
        *verified against the manifest checksums parent-side* — a corrupted
        publication is unlinked and declined (``promoted=False``) before
        any worker is asked to attach it.  Each shard then flushes its
        pending windows on the old engine (those predictions are returned),
        switches, and drops its old mapping; the old segment is unlinked
        only after every shard has acknowledged.  A declined gate leaves
        the fabric untouched.  ``deadline`` bounds the shard walk the same
        way it bounds :meth:`drain`.
        """
        if gate is not None:
            drifted = getattr(gate, "drifted", None)
            promoted = bool(drifted) if drifted is not None else bool(
                gate() if callable(gate) else gate
            )
            if not promoted:
                return SwapResult(
                    promoted=False,
                    generation=self.generation,
                    reason="gate declined promotion",
                )
        incoming = publish_engine(engine, generation=self.generation + 1)
        try:
            verify_manifest(incoming.manifest)
        except IntegrityError as error:
            incoming.unlink()
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_fabric_swaps_rejected_total",
                    "Swap attempts declined because the incoming segment "
                    "failed checksum verification.",
                ).inc()
            return SwapResult(
                promoted=False,
                generation=self.generation,
                reason=f"integrity check failed: {error}",
            )
        flushed: list[Prediction] = []
        try:
            for index in range(len(self._shards)):
                flushed.extend(
                    self._call(index, "swap", incoming.manifest, deadline=deadline)
                )
        except BaseException:
            incoming.unlink()
            raise
        outgoing, self._shared = self._shared, incoming
        for shard in self._shards:
            shard.manifest = incoming.manifest
        outgoing.unlink()
        self.swaps += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_fabric_swaps_total",
                "Model generations promoted across the fabric.",
            ).inc()
        return SwapResult(
            promoted=True,
            generation=self.generation,
            flushed=tuple(flushed),
            reason="promoted",
        )

    def swap_from_registry(
        self,
        registry,
        name: str,
        version: int | None = None,
        *,
        precision: str = "float64",
        gate=None,
        **compile_options,
    ) -> SwapResult:
        """Hot-swap to a registry artifact (the registry-driven rollout path)."""
        engine = registry.load_compiled(
            name, version, precision=precision, **compile_options
        )
        return self.swap(engine, gate=gate)

    # ------------------------------------------------------------ inspection
    def worker_info(self) -> list[dict]:
        """Per-shard ``{pid, generation, sessions, uss_bytes}`` snapshots."""
        futures = [
            (index, shard.submit("info")) for index, shard in enumerate(self._shards)
        ]
        return [self._result(index, future, "info", ()) for index, future in futures]

    def worker_pids(self) -> list[int]:
        return [info["pid"] for info in self.worker_info()]

    def stats(self) -> list[dict]:
        """Per-shard scheduler statistics dictionaries."""
        futures = [
            (index, shard.submit("stats")) for index, shard in enumerate(self._shards)
        ]
        return [self._result(index, future, "stats", ()) for index, future in futures]

    @property
    def sessions(self) -> tuple[str, ...]:
        """Ids of every open session, across all shards."""
        return tuple(self._session_specs)

    @property
    def model_bytes(self) -> int:
        """Bytes of the one shared model copy all workers score against."""
        return self._shared.nbytes

    # -------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Stop every worker and destroy the published segment."""
        for shard in self._shards:
            try:
                shard.shutdown()
            except Exception:  # pragma: no cover - dead worker at shutdown
                pass
        self._shards = []
        self._session_specs = {}
        self._shared.unlink()

    def __enter__(self) -> "ServingFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ServingFabric(n_workers={self.n_workers}, serial={self.serial}, "
            f"generation={self.generation}, sessions={len(self._session_specs)}, "
            f"model_bytes={self.model_bytes}, swaps={self.swaps}, "
            f"restarts={self.restarts}, timeouts={self.timeouts})"
        )
