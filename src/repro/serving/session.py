"""Per-subject streaming sessions with incremental featurization.

A :class:`StreamSession` accepts raw multi-channel samples one at a time (or
in chunks), maintains the sliding-window layout of the offline pipeline, and
emits the *same* feature vectors :func:`repro.data.features.extract_features`
would compute on the materialised windows — without ever re-running the
length-30 moving-average convolution or re-scanning a window for its
statistics.

How the incremental math matches the batch pipeline
---------------------------------------------------

The batch pipeline smooths each window with a *causal* moving average whose
prefix grows from 1 to ``min(smoothing_window, window_samples)`` samples
(:func:`repro.data.features.moving_average`), then reduces the smoothed
window to per-channel min/max/mean/std.  Two observations make this
incremental:

1.  The smoothed value at in-window position ``t`` is the mean of the last
    ``c = min(effective, t + 1)`` *raw* samples, where ``effective =
    min(smoothing_window, window_samples)``.  For ``t >= effective - 1``
    those samples are simply the stream's most recent ``effective`` samples —
    one shared ring-buffer rolling sum serves every overlapping window.  For
    the prefix (``t < effective - 1``) the mean is over samples since *that
    window's* start, so each open window keeps its own prefix accumulator —
    a per-sample scalar add, not a convolution.
2.  The window statistics cover the *whole* smoothed window (nothing ever
    slides out), so running min/max and a Welford mean/variance accumulator
    per open window are exact O(1)-per-sample reductions.

Overlapping windows (``step_samples < window_samples``) simply mean several
windows are open at once — at most ``ceil(window / step)`` — and each sample
updates all of them.  Equality with the batch pipeline to ``<= 1e-9`` is
enforced by a property-based test in ``tests/test_serving.py``; the rolling
sum is periodically re-synchronised from the ring buffer so float drift
cannot accumulate over unbounded streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.features import STATISTICS

__all__ = ["ReadyWindow", "StreamSession"]

#: Re-sum the ring buffer after this many rolling add/subtract updates, so
#: floating-point drift in the rolling sum stays bounded on infinite streams.
_RESYNC_INTERVAL = 4096


@dataclass(frozen=True)
class ReadyWindow:
    """One completed window's features, ready for scoring.

    Attributes
    ----------
    session_id:
        Identifier of the emitting session (opaque to the serving layer).
    window_index:
        0-based index of the window within the session's stream.
    features:
        Flat feature vector, identical in layout and value to one row of
        :func:`repro.data.features.extract_features`.
    end_sample:
        Stream index (0-based, inclusive) of the window's last raw sample —
        the deadline-relevant timestamp for latency accounting.
    """

    session_id: str
    window_index: int
    features: np.ndarray
    end_sample: int


class _OpenWindow:
    """Accumulators for one in-flight window (vectorised across channels)."""

    __slots__ = ("index", "count", "prefix_sum", "mean", "m2", "minimum", "maximum")

    def __init__(self, index: int, n_channels: int) -> None:
        self.index = index
        self.count = 0
        self.prefix_sum = np.zeros(n_channels)
        self.mean = np.zeros(n_channels)
        self.m2 = np.zeros(n_channels)
        self.minimum = np.full(n_channels, np.inf)
        self.maximum = np.full(n_channels, -np.inf)

    def update(self, smoothed: np.ndarray) -> None:
        """Welford mean/variance plus running min/max on one smoothed sample."""
        self.count += 1
        delta = smoothed - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (smoothed - self.mean)
        np.minimum(self.minimum, smoothed, out=self.minimum)
        np.maximum(self.maximum, smoothed, out=self.maximum)


@dataclass
class StreamSession:
    """Incremental featurizer for one subject's raw multi-channel stream.

    Parameters
    ----------
    session_id:
        Opaque identifier attached to every emitted :class:`ReadyWindow`.
    n_channels:
        Channels per sample (e.g. ``len(repro.data.CHANNELS)``).
    window_samples:
        Samples per emitted window (the offline pipeline's window length).
    step_samples:
        Stride between consecutive window starts; defaults to
        ``window_samples`` (non-overlapping).  Values smaller than
        ``window_samples`` produce overlapping windows, larger values leave
        gaps — both match the batch windowing they imitate.
    smoothing_window:
        Moving-average length of the feature pipeline (paper: 30).
    statistics:
        Ordered subset of :data:`repro.data.features.STATISTICS` names; the
        emitted layout is channel-major, matching ``extract_features``.
    """

    session_id: str
    n_channels: int
    window_samples: int
    step_samples: int | None = None
    smoothing_window: int = 30
    statistics: tuple[str, ...] = ("min", "max", "mean", "std")
    _samples_seen: int = field(init=False, default=0, repr=False)
    _windows_emitted: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {self.n_channels}")
        if self.window_samples < 1:
            raise ValueError(f"window_samples must be >= 1, got {self.window_samples}")
        if self.step_samples is None:
            self.step_samples = self.window_samples
        if self.step_samples < 1:
            raise ValueError(f"step_samples must be >= 1, got {self.step_samples}")
        if self.smoothing_window < 1:
            raise ValueError(
                f"smoothing_window must be >= 1, got {self.smoothing_window}"
            )
        unknown = [name for name in self.statistics if name not in STATISTICS]
        if unknown:
            raise ValueError(
                f"unknown statistics {unknown}; available: {sorted(STATISTICS)}"
            )
        self.statistics = tuple(self.statistics)
        self._effective = min(self.smoothing_window, self.window_samples)
        self._ring = np.zeros((self._effective, self.n_channels))
        self._rolling_sum = np.zeros(self.n_channels)
        self._carry = np.zeros(self.n_channels)  # Kahan compensation
        self._since_resync = 0
        self._open: list[_OpenWindow] = []

    # ------------------------------------------------------------ properties
    @property
    def feature_width(self) -> int:
        """Length of emitted feature vectors (``n_channels * len(statistics)``)."""
        return self.n_channels * len(self.statistics)

    @property
    def samples_seen(self) -> int:
        return self._samples_seen

    @property
    def windows_emitted(self) -> int:
        return self._windows_emitted

    @property
    def open_windows(self) -> int:
        """Number of windows currently accumulating (bounded by ceil(W/step))."""
        return len(self._open)

    # -------------------------------------------------------------- internals
    def _finalize(self, window: _OpenWindow, end_sample: int) -> ReadyWindow:
        columns = {
            "min": window.minimum,
            "max": window.maximum,
            "mean": window.mean,
            "std": np.sqrt(window.m2 / window.count),
        }
        features = np.stack(
            [columns[name] for name in self.statistics], axis=1
        ).reshape(-1)
        ready = ReadyWindow(
            session_id=self.session_id,
            window_index=window.index,
            features=features,
            end_sample=end_sample,
        )
        self._windows_emitted += 1
        return ready

    def _push_one(self, sample: np.ndarray) -> ReadyWindow | None:
        position = self._samples_seen
        if position % self.step_samples == 0:
            self._open.append(
                _OpenWindow(position // self.step_samples, self.n_channels)
            )

        # Shared ring-buffer moving average over the raw stream.  The update
        # is Kahan-compensated: the increment itself is exact when old and
        # new sample are of similar magnitude (Sterbenz), and compensation
        # keeps the accumulated error O(eps * |sum|) regardless of stream
        # length instead of random-walking with every update.
        slot = position % self._effective
        increment = (sample - self._ring[slot]) - self._carry
        updated = self._rolling_sum + increment
        self._carry = (updated - self._rolling_sum) - increment
        self._rolling_sum = updated
        self._ring[slot] = sample
        self._since_resync += 1
        if self._since_resync >= _RESYNC_INTERVAL:
            self._rolling_sum = self._ring.sum(axis=0)
            self._carry[:] = 0.0
            self._since_resync = 0
        shared_smoothed = self._rolling_sum / self._effective

        completed: ReadyWindow | None = None
        survivors: list[_OpenWindow] = []
        for window in self._open:
            t = window.count  # in-window position of this sample
            if t < self._effective - 1:
                window.prefix_sum += sample
                smoothed = window.prefix_sum / (t + 1)
            else:
                # The stream's last `effective` samples all lie inside this
                # window, so the shared rolling mean is this window's causal
                # moving average here.
                smoothed = shared_smoothed
            window.update(smoothed)
            if window.count == self.window_samples:
                completed = self._finalize(window, position)
            else:
                survivors.append(window)
        self._open = survivors
        self._samples_seen += 1
        return completed

    # ------------------------------------------------------------------- API
    def push(self, samples: np.ndarray) -> list[ReadyWindow]:
        """Feed raw samples; return the windows they completed, in order.

        ``samples`` is one multi-channel sample of shape ``(n_channels,)`` or
        a chunk of shape ``(n_channels, k)`` — the layout produced by
        :meth:`repro.data.SignalSimulator.stream_chunks`.  At most one window
        completes per sample (windows are distinct in their end sample), so a
        ``k``-sample chunk yields at most ``k`` ready windows.
        """
        array = np.asarray(samples, dtype=np.float64)
        if array.ndim == 1:
            array = array[:, None]
        if array.ndim != 2 or array.shape[0] != self.n_channels:
            raise ValueError(
                f"samples must have shape ({self.n_channels},) or "
                f"({self.n_channels}, k), got {np.shape(samples)}"
            )
        if not np.all(np.isfinite(array)):
            raise ValueError("samples contain NaN or infinite values")
        ready: list[ReadyWindow] = []
        for column in array.T:
            completed = self._push_one(column)
            if completed is not None:
                ready.append(completed)
        return ready
