"""Micro-batching scheduler: coalesce many sessions into one fused call.

Scoring a single 1-row window through :class:`~repro.engine.CompiledModel`
pays full per-call overhead (validation, chunk resolution, a BLAS call on a
degenerate ``(1, f)`` operand) for one prediction.  The engine's whole design
point — PR 1's >= 3x speedup — is that one ``(B, f)`` batch costs barely more
than one row, so a service juggling many concurrent
:class:`~repro.serving.session.StreamSession` streams should never score
windows one at a time.  :class:`MicroBatchScheduler` buffers ready windows
from any number of sessions and releases them in fused batches, bounded by

* ``max_batch`` — release as soon as this many windows are pending (caps
  per-window latency *and* the fused call's memory), and
* ``max_wait`` — release a partial batch once its oldest window has waited
  this long (bounds tail latency under light traffic).

The scheduler is synchronous and single-threaded by design: the event loop
of the host service calls :meth:`submit` as windows appear and :meth:`pump`
whenever it is willing to run a fused call (:meth:`flush` forces one at
shutdown).  All timing bookkeeping — queue waits, batch sizes, per-window
end-to-end latency — accumulates in :class:`SchedulerStats`, which the
serving benchmark reads for its throughput and p50/p99 report.

Failure semantics: a batch is popped off the queue only *after* its fused
call succeeds.  If ``scorer.decision_function`` raises, every window of the
batch stays queued with its original ``enqueued_at`` (so queue-wait
accounting and ``max_wait`` ordering survive the retry), the failure is
counted in :attr:`SchedulerStats.score_failures` (and the
``repro_scheduler_score_failures_total`` obs counter), and the exception
propagates to the caller — windows are never silently dropped.  Retries
are *bounded*: a window that has been part of more than ``max_retries``
failed fused calls is moved to :attr:`MicroBatchScheduler.dead_letters`
(counted in ``repro_scheduler_windows_dead_total``) instead of being
re-queued forever — a deterministically failing scorer can no longer wedge
the queue on one poisonous batch.

Overload semantics (:mod:`repro.resilience` wiring, all opt-in):

* ``max_pending`` bounds the admission queue.  When a submit would exceed
  it, the *oldest* pending window is shed — delivered as an explicit
  :data:`SHED` prediction (NaN scores, ``prediction.shed`` true, counted
  in ``repro_scheduler_windows_shed_total``) on the next :meth:`pump` /
  :meth:`flush`, never silently dropped.  Shedding oldest-first keeps the
  freshest signal flowing when a consumer cannot keep up.
* ``degradation`` attaches a
  :class:`~repro.resilience.DegradationLadder`: when the oldest queued
  window's wait approaches the ladder's deadline, batches are scored by
  the packed-bipolar tier (predictions flagged ``degraded=True``) until
  pressure clears.  With no ladder — or a ladder that never activates —
  predictions are bit-identical to the historical scheduler.

The accounting identity ``windows_submitted == windows_scored +
windows_shed + windows_dead + pending`` holds at every quiescent point and
is asserted by ``tests/test_resilience.py``.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs import OBS
from ..obs.metrics import Counter, Histogram
from ..resilience.chaos import CHAOS

__all__ = [
    "DeadLetter",
    "MicroBatchScheduler",
    "Prediction",
    "SchedulerStats",
    "SHED",
]


class _ShedLabel:
    """Singleton sentinel label of shed predictions (reprs as ``SHED``)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "SHED"

    def __reduce__(self):  # unpickles to the same singleton across processes
        return (_shed_label, ())


def _shed_label() -> "_ShedLabel":
    return SHED


#: The label carried by shed predictions — never a real class label.
SHED = _ShedLabel()


@dataclass(frozen=True, eq=False)
class Prediction:
    """Scored window routed back to its session.

    ``queue_seconds`` is the time the window spent waiting for its batch,
    ``score_seconds`` the duration of the fused call that scored it (shared
    by every window in the batch), and ``batch_size`` how many windows that
    call coalesced.

    ``scores`` is a read-only per-row *copy* of the fused call's score
    matrix: retaining a prediction never pins the whole ``(B, k)`` batch
    array in memory, and no write through one prediction can alias another.
    Equality is defined field-wise with :func:`numpy.array_equal` on the
    scores (the dataclass auto-``__eq__`` would raise the ambiguous-ndarray
    ``ValueError`` for any ``k > 1``), so predictions are safe to compare,
    deduplicate and keep in sets/dicts.
    """

    session_id: str
    window_index: int
    label: object
    scores: np.ndarray
    queue_seconds: float
    score_seconds: float
    batch_size: int
    degraded: bool = False

    @property
    def latency_seconds(self) -> float:
        """End-to-end scheduler latency: queue wait plus fused-call time."""
        return self.queue_seconds + self.score_seconds

    @property
    def shed(self) -> bool:
        """Whether this window was shed under overload instead of scored."""
        return self.label is SHED

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prediction):
            return NotImplemented
        return (
            self.session_id == other.session_id
            and self.window_index == other.window_index
            and self.label == other.label
            and np.array_equal(self.scores, other.scores)
            and self.queue_seconds == other.queue_seconds
            and self.score_seconds == other.score_seconds
            and self.batch_size == other.batch_size
            and self.degraded == other.degraded
        )

    def __hash__(self) -> int:
        # Scores are excluded (ndarrays are unhashable); equal predictions
        # still hash equally because the identity fields participate.
        return hash((self.session_id, self.window_index, self.batch_size))

    @property
    def status(self) -> str:
        """Explicit wire status: ``"shed"`` under overload, else ``"scored"``."""
        return "shed" if self.shed else "scored"

    def to_wire(self) -> dict:
        """A strict-JSON-safe dict of this prediction for network transports.

        SHED predictions carry NaN score rows and a sentinel label, which
        ``json.dumps`` renders as bare ``NaN`` tokens — *invalid* JSON that
        standards-compliant clients refuse to parse.  On the wire a shed
        window is instead an explicit ``status="shed"`` with ``label`` and
        ``scores`` null; scored windows get native Python numbers (numpy
        scalars don't serialize) with any non-finite score element nulled.
        The result always survives ``json.dumps(..., allow_nan=False)``.
        """
        if self.shed:
            label, scores = None, None
        else:
            label = self.label.item() if hasattr(self.label, "item") else self.label
            scores = [
                float(value) if math.isfinite(value) else None
                for value in self.scores.tolist()
            ]
        return {
            "session_id": self.session_id,
            "window_index": int(self.window_index),
            "status": self.status,
            "label": label,
            "scores": scores,
            "degraded": bool(self.degraded),
            "queue_seconds": float(self.queue_seconds),
            "score_seconds": float(self.score_seconds),
            "batch_size": int(self.batch_size),
        }


class SchedulerStats:
    """Accumulated timing/throughput statistics of one scheduler.

    Totals (window/batch counts, summed scoring time, mean batch size) cover
    the scheduler's whole lifetime; per-window latencies are kept in a
    bounded window of the most recent ``latency_window`` observations so a
    long-running service's stats stay O(1) in memory — percentiles therefore
    describe *recent* latency, which is what an operator watches anyway.

    Counts and summed scoring time are :class:`repro.obs.metrics.Counter`
    primitives behind the historical attribute names; percentiles come from
    a fixed log-bucket :class:`repro.obs.metrics.Histogram` (bounded memory,
    provable relative-error bound) instead of ``np.percentile`` over the
    deque.  The raw ``latencies`` deque is still kept for callers that want
    exact recent samples.
    """

    def __init__(self, *, latency_window: int = 8192) -> None:
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        self._windows_scored = Counter()
        self._batches = Counter()
        self._total_score_seconds = Counter()
        self._score_failures = Counter()
        self._windows_submitted = Counter()
        self._windows_shed = Counter()
        self._windows_dead = Counter()
        self.latency_histogram = Histogram()
        self.latencies: deque[float] = deque(maxlen=int(latency_window))

    @property
    def windows_scored(self) -> int:
        return self._windows_scored.value

    @property
    def windows_submitted(self) -> int:
        """Windows ever accepted by :meth:`MicroBatchScheduler.submit`."""
        return self._windows_submitted.value

    @property
    def windows_shed(self) -> int:
        """Windows shed under overload (delivered as :data:`SHED` predictions)."""
        return self._windows_shed.value

    @property
    def windows_dead(self) -> int:
        """Windows dead-lettered after exhausting their retry budget."""
        return self._windows_dead.value

    @property
    def batches(self) -> int:
        return self._batches.value

    @property
    def total_score_seconds(self) -> float:
        return self._total_score_seconds.value

    @property
    def score_failures(self) -> int:
        """Fused calls that raised; their windows were re-queued, not lost."""
        return self._score_failures.value

    def record_failure(self) -> None:
        """Account one failed fused call (the batch went back on the queue)."""
        self._score_failures.inc()

    def record_submitted(self, count: int = 1) -> None:
        """Account windows accepted into the admission queue."""
        self._windows_submitted.inc(count)

    def record_shed(self, count: int = 1) -> None:
        """Account windows shed under overload."""
        self._windows_shed.inc(count)

    def record_dead(self, count: int = 1) -> None:
        """Account windows dead-lettered after retry exhaustion."""
        self._windows_dead.inc(count)

    def record_latency(self, seconds: float) -> None:
        """Account one window's end-to-end latency (queue wait + fused call)."""
        self.latencies.append(seconds)
        self.latency_histogram.observe(seconds)

    def record_batch(self, batch_size: int, score_seconds: float) -> None:
        """Account one released fused call of ``batch_size`` windows."""
        self._windows_scored.inc(batch_size)
        self._batches.inc()
        self._total_score_seconds.inc(float(score_seconds))

    @property
    def mean_batch_size(self) -> float:
        return self.windows_scored / self.batches if self.batches else 0.0

    def latency_percentile(self, percentile: float) -> float:
        """Recent per-window end-to-end latency percentile (e.g. 50, 99), seconds."""
        if not self.latency_histogram.count:
            return 0.0
        return self.latency_histogram.percentile(percentile)

    def __repr__(self) -> str:
        return (
            f"SchedulerStats(windows={self.windows_scored}, "
            f"batches={self.batches}, "
            f"mean_batch={self.mean_batch_size:.1f}, "
            f"p50={self.latency_percentile(50) * 1e3:.2f}ms, "
            f"p99={self.latency_percentile(99) * 1e3:.2f}ms, "
            f"failures={self.score_failures}, "
            f"shed={self.windows_shed}, dead={self.windows_dead})"
        )


@dataclass(frozen=True)
class DeadLetter:
    """A window removed from the queue after exhausting its retry budget.

    Dead letters keep the original features, so an operator (or a test) can
    replay them once the underlying scorer fault is fixed — removal from the
    queue is explicit and fully accounted, never silent loss.
    """

    session_id: str
    window_index: int
    features: np.ndarray
    enqueued_at: float
    attempts: int
    error: str

    def to_wire(self) -> dict:
        """Strict-JSON-safe identity/diagnostic fields (features stay local).

        Features are deliberately omitted: they are the replay payload, not
        an inspection field — :meth:`MicroBatchScheduler.replay_dead_letters`
        is the supported way to act on them.
        """
        return {
            "session_id": self.session_id,
            "window_index": int(self.window_index),
            "status": "dead",
            "attempts": int(self.attempts),
            "error": self.error,
        }


class _PendingWindow:
    __slots__ = ("session_id", "window_index", "features", "enqueued_at", "attempts")

    def __init__(self, session_id, window_index, features, enqueued_at):
        self.session_id = session_id
        self.window_index = window_index
        self.features = features
        self.enqueued_at = enqueued_at
        self.attempts = 0


class MicroBatchScheduler:
    """Coalesces ready windows from many sessions into fused scoring calls.

    Parameters
    ----------
    scorer:
        Any object exposing ``decision_function(X) -> (n, k)`` and
        ``classes_`` — a :class:`~repro.engine.CompiledModel` in production,
        or the loop-path model itself for a reference run.
    max_batch:
        Maximum windows per fused call; a full queue triggers release.
    max_wait:
        Seconds the oldest pending window may wait before a partial batch is
        released by :meth:`pump`.
    clock:
        Monotonic time source (injectable for deterministic tests).
    max_retries:
        How many *failed* fused calls a window may be part of before it is
        dead-lettered instead of re-queued (``None`` = retry forever, the
        pre-PR-9 behaviour).  The default of 5 tolerates transient faults
        while bounding the damage of a deterministically failing batch.
    max_pending:
        Admission-queue bound; a submit beyond it sheds the oldest pending
        window as an explicit :data:`SHED` prediction (``None`` = unbounded).
    degradation:
        Optional :class:`~repro.resilience.DegradationLadder`; consulted per
        batch to trade precision for latency under queue pressure.
    """

    def __init__(
        self,
        scorer,
        *,
        max_batch: int = 64,
        max_wait: float = 0.010,
        clock: Callable[[], float] = time.perf_counter,
        max_retries: int | None = 5,
        max_pending: int | None = None,
        degradation=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_retries is not None and max_retries < 0:
            raise ValueError(f"max_retries must be >= 0 or None, got {max_retries}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None, got {max_pending}")
        if not hasattr(scorer, "decision_function") or not hasattr(scorer, "classes_"):
            raise TypeError(
                f"{type(scorer).__name__} cannot score windows; expected an "
                "object with decision_function() and classes_"
            )
        self.scorer = scorer
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.clock = clock
        self.max_retries = None if max_retries is None else int(max_retries)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.degradation = degradation
        self.stats = SchedulerStats()
        self.dead_letters: list[DeadLetter] = []
        self._queue: list[_PendingWindow] = []
        self._shed: list[Prediction] = []
        #: Cached (registry, *instruments) for the observed path, refreshed
        #: whenever the live registry changes (e.g. a new ``capture()``):
        #: instrument lookups cost ~1us each, far more than the batch's
        #: actual counter/histogram updates.
        self._obs_instruments: tuple | None = None

    # ------------------------------------------------------------ inspection
    @property
    def pending(self) -> int:
        """Number of windows waiting for the next fused call."""
        return len(self._queue)

    def ready(self) -> bool:
        """Whether :meth:`pump` would release a batch right now."""
        if len(self._queue) >= self.max_batch:
            return True
        if not self._queue:
            return False
        return self.clock() - self._queue[0].enqueued_at >= self.max_wait

    # ------------------------------------------------------------- operation
    def submit(self, session_id: str, window_index: int, features: np.ndarray) -> None:
        """Enqueue one ready window (e.g. a :class:`~repro.serving.ReadyWindow`).

        With ``max_pending`` set, an over-bound submit sheds the *oldest*
        pending window into the shed buffer (delivered as a :data:`SHED`
        prediction by the next :meth:`pump` / :meth:`flush`) — admission
        never blocks and never silently drops.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise ValueError(
                f"features must be a flat vector, got ndim={features.ndim}"
            )
        self._queue.append(
            _PendingWindow(session_id, window_index, features, self.clock())
        )
        self.stats.record_submitted()
        if self.max_pending is not None:
            while len(self._queue) > self.max_pending:
                self._shed_window(self._queue.pop(0))

    def _shed_window(self, pending: _PendingWindow) -> None:
        scores = np.full(len(self.scorer.classes_), np.nan)
        scores.setflags(write=False)
        self._shed.append(
            Prediction(
                session_id=pending.session_id,
                window_index=pending.window_index,
                label=SHED,
                scores=scores,
                queue_seconds=self.clock() - pending.enqueued_at,
                score_seconds=0.0,
                batch_size=0,
            )
        )
        self.stats.record_shed()
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_scheduler_windows_shed_total",
                "Windows shed under overload (delivered as SHED predictions).",
            ).inc()

    def _take_shed(self) -> list[Prediction]:
        if not self._shed:
            return []
        shed, self._shed = self._shed, []
        return shed

    def _score_batch(self, batch: list[_PendingWindow]) -> list[Prediction]:
        released_at = self.clock()
        scorer, degraded = self.scorer, False
        if self.degradation is not None:
            scorer, degraded = self.degradation.scorer_for(
                released_at - batch[0].enqueued_at
            )
        if CHAOS.enabled:
            CHAOS.hit("scheduler.score", batch=len(batch))
        features = np.stack([pending.features for pending in batch])
        with OBS.recorder.span("scheduler.batch", windows=len(batch)):
            start = self.clock()
            scores = scorer.decision_function(features)
            score_seconds = self.clock() - start
        labels = scorer.classes_[np.argmax(scores, axis=1)]

        predictions = []
        for row, pending in enumerate(batch):
            # Per-row copy: a view of scores[row] would pin the whole (B, k)
            # batch array for as long as any one prediction is retained, and
            # writes through it would alias across predictions.
            row_scores = scores[row].copy()
            row_scores.setflags(write=False)
            prediction = Prediction(
                session_id=pending.session_id,
                window_index=pending.window_index,
                label=labels[row],
                scores=row_scores,
                queue_seconds=released_at - pending.enqueued_at,
                score_seconds=score_seconds,
                batch_size=len(batch),
                degraded=degraded,
            )
            predictions.append(prediction)
            self.stats.record_latency(prediction.latency_seconds)
        self.stats.record_batch(len(batch), score_seconds)
        if OBS.enabled:
            instruments = self._obs_instruments
            if instruments is None or instruments[0] is not OBS.metrics:
                instruments = self._obs_instruments = self._bind_instruments()
            _, windows, batches, batch_size, score_latency, queue_latency = instruments
            windows.inc(len(batch))
            batches.inc()
            batch_size.observe(len(batch))
            score_latency.observe(score_seconds)
            queue_latency.observe_many(
                released_at - pending.enqueued_at for pending in batch
            )
        return predictions

    def _bind_instruments(self) -> tuple:
        """Resolve the scheduler's instruments against the live registry."""
        metrics = OBS.metrics
        return (
            metrics,
            metrics.counter(
                "repro_scheduler_windows_total",
                "Windows scored through the micro-batch scheduler.",
            ),
            metrics.counter(
                "repro_scheduler_batches_total",
                "Fused scoring calls released by the scheduler.",
            ),
            metrics.histogram(
                "repro_scheduler_batch_size",
                "Windows coalesced per fused call.",
                lo=1.0,
                hi=100000.0,
            ),
            metrics.histogram(
                "repro_scheduler_score_seconds",
                "Fused-call duration per released batch.",
            ),
            metrics.histogram(
                "repro_scheduler_queue_seconds",
                "Per-window wait between submit and batch release.",
            ),
        )

    def _release_one(self) -> list[Prediction]:
        """Score the head batch; pop it from the queue only on success.

        On failure the batch stays queued (original ``enqueued_at`` intact,
        still at the head, so nothing reorders), the failure is counted, and
        the exception propagates — a raising scorer can never silently drop
        windows (the pre-fix behaviour popped before scoring).  Windows that
        have now been part of more than ``max_retries`` failed calls are
        moved to :attr:`dead_letters` instead of staying queued, so one
        poisonous batch cannot wedge the scheduler forever.
        """
        batch = self._queue[: self.max_batch]
        try:
            predictions = self._score_batch(batch)
        except Exception as error:
            self.stats.record_failure()
            if OBS.enabled:
                OBS.metrics.counter(
                    "repro_scheduler_score_failures_total",
                    "Fused scoring calls that raised (windows re-queued).",
                ).inc()
            self._dead_letter_exhausted(batch, error)
            raise
        del self._queue[: len(batch)]
        return predictions

    def _dead_letter_exhausted(self, batch: list[_PendingWindow], error) -> None:
        """Charge one failed attempt to ``batch``; evict exhausted windows."""
        for pending in batch:
            pending.attempts += 1
        if self.max_retries is None:
            return
        dead = [p for p in batch if p.attempts > self.max_retries]
        if not dead:
            return
        self._queue[: len(batch)] = [
            p for p in batch if p.attempts <= self.max_retries
        ]
        for pending in dead:
            self.dead_letters.append(
                DeadLetter(
                    session_id=pending.session_id,
                    window_index=pending.window_index,
                    features=pending.features,
                    enqueued_at=pending.enqueued_at,
                    attempts=pending.attempts,
                    error=repr(error),
                )
            )
        self.stats.record_dead(len(dead))
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_scheduler_windows_dead_total",
                "Windows dead-lettered after exhausting their retry budget.",
            ).inc(len(dead))

    def replay_dead_letters(self) -> int:
        """Re-submit every dead letter's preserved features; return the count.

        The supported recovery path once the underlying scorer fault is
        fixed: each :class:`DeadLetter` re-enters the admission queue as a
        *fresh* submission (new ``enqueued_at``, retry budget reset, counted
        again in ``windows_submitted`` — so the accounting identity
        ``submitted == scored + shed + dead + pending`` keeps holding with
        the dead count left as a permanent record of the original failure).
        Replays pass through the normal ``max_pending`` admission bound, so
        a mass replay under pressure sheds explicitly instead of flooding.
        """
        letters, self.dead_letters = self.dead_letters, []
        for letter in letters:
            self.submit(letter.session_id, letter.window_index, letter.features)
        if letters and OBS.enabled:
            OBS.metrics.counter(
                "repro_scheduler_dead_letters_replayed_total",
                "Dead-lettered windows re-submitted for scoring.",
            ).inc(len(letters))
        return len(letters)

    def flush(self) -> list[Prediction]:
        """Score everything pending (in fused calls of at most ``max_batch``).

        Any buffered :data:`SHED` predictions are delivered first; if a fused
        call raises they stay buffered for the next attempt — nothing drains
        into a lost exception.
        """
        predictions: list[Prediction] = []
        while self._queue:
            predictions.extend(self._release_one())
        return self._take_shed() + predictions

    def pump(self) -> list[Prediction]:
        """Release batches per the ``max_batch`` / ``max_wait`` policy.

        Call this from the service loop after submitting windows; it returns
        immediately with no work when neither bound has been reached (shed
        predictions buffered by an over-bound submit are still delivered).
        """
        predictions: list[Prediction] = []
        while self.ready():
            predictions.extend(self._release_one())
        return self._take_shed() + predictions
