"""BoostHD reproduction: boosting in hyperdimensional computing for healthcare.

This package reproduces *"Exploiting Boosting in Hyperdimensional Computing
for Enhanced Reliability in Healthcare"* (DATE 2025) end to end on plain
``numpy``:

* :mod:`repro.hdc` — hyperdimensional-computing substrate (encoders,
  hypervector algebra, the OnlineHD classifier used as the weak learner),
* :mod:`repro.core` — the BoostHD ensemble itself plus the paper's span
  utilization and Marchenko–Pastur analyses,
* :mod:`repro.baselines` — from-scratch AdaBoost, Random Forest, gradient
  boosting, SVM and DNN baselines with a shared estimator API,
* :mod:`repro.data` — synthetic wearable stress-detection datasets standing in
  for WESAD / Nurse Stress / Stress-Predict, plus the imbalance and bit-flip
  perturbations the evaluation uses,
* :mod:`repro.engine` — the fused batch-inference engine that compiles a
  fitted ensemble into a single-pass scorer (stacked projections, one
  block-diagonal-aware matmul, chunked streaming, optional encoding cache),
* :mod:`repro.serving` — the streaming service layer: per-subject sessions
  with incremental featurization, a micro-batching scheduler over the fused
  engine, a versioned model registry, and drift-aware online adaptation,
* :mod:`repro.runtime` — the parallel, resumable experiment runtime: grid
  plans with deterministically derived per-cell seeds, a process-pool
  executor with a serial fallback, a content-hashed artifact store for
  checkpoint/resume, and per-run utilization reports,
* :mod:`repro.analysis` and :mod:`repro.experiments` — the harness that
  regenerates every table and figure of the evaluation section.

Quick start::

    from repro import BoostHD, load_wesad

    dataset = load_wesad()
    X_train, X_test, y_train, y_test = dataset.split(rng=0)
    model = BoostHD(total_dim=1000, n_learners=10, seed=0).fit(X_train, y_train)
    print(model.score(X_test, y_test))
"""

from .core import BaggedHD, BoostHD
from .data import load_nurse_stress, load_stress_predict, load_wesad
from .engine import CompiledModel, compile_model
from .hdc import CentroidHD, NonlinearEncoder, OnlineHD
from .runtime import ArtifactStore, GridPlan, ParallelExecutor, RunReport
from .serving import (
    AdaptiveModel,
    DriftMonitor,
    MicroBatchScheduler,
    ModelRegistry,
    StreamingService,
    StreamSession,
)

__version__ = "1.2.0"

__all__ = [
    "BaggedHD",
    "BoostHD",
    "CompiledModel",
    "compile_model",
    "load_nurse_stress",
    "load_stress_predict",
    "load_wesad",
    "CentroidHD",
    "NonlinearEncoder",
    "OnlineHD",
    "ArtifactStore",
    "GridPlan",
    "ParallelExecutor",
    "RunReport",
    "AdaptiveModel",
    "DriftMonitor",
    "MicroBatchScheduler",
    "ModelRegistry",
    "StreamingService",
    "StreamSession",
    "__version__",
]
