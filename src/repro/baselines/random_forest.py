"""Random Forest classifier (bagged CART trees with feature subsampling).

Matches the paper's baseline configuration: bootstrap enabled, 10 estimators,
probability averaging across trees.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseClassifier):
    """Bagging ensemble of decorrelated decision trees.

    Parameters
    ----------
    n_estimators:
        Number of trees (paper: 10).
    max_depth:
        Depth limit for each tree (``None`` grows fully).
    max_features:
        Features examined per split; defaults to ``"sqrt"`` as is conventional
        for classification forests.
    bootstrap:
        Draw a bootstrap resample per tree (paper: enabled).
    min_samples_leaf:
        Minimum samples per leaf of each tree.
    seed:
        Seed controlling resampling and per-tree feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        *,
        max_depth: int | None = None,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        min_samples_leaf: int = 1,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.min_samples_leaf = int(min_samples_leaf)
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] | None = None
        self.classes_: np.ndarray | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "RandomForestClassifier":
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        self.trees_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                max_features=self.max_features,
                min_samples_leaf=self.min_samples_leaf,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                indices = rng.choice(len(y), size=len(y), replace=True, p=weights)
                tree.fit(X[indices], y[indices])
            else:
                tree.fit(X, y, sample_weight=weights)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average per-class probabilities over all trees.

        Trees trained on bootstrap samples may not have seen every class; their
        probabilities are mapped into the forest-level class order.
        """
        self._check_fitted("trees_")
        X = self._validate_predict_args(X)
        aggregate = np.zeros((len(X), len(self.classes_)))
        for tree in self.trees_:
            tree_probabilities = tree.predict_proba(X)
            columns = np.searchsorted(self.classes_, tree.classes_)
            aggregate[:, columns] += tree_probabilities
        return aggregate / self.n_estimators

    def predict(self, X: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
