"""XGBoost-style gradient-boosted trees (second-order, softmax objective).

The paper's "XGBoost (10 estimators)" baseline is reproduced with an exact
greedy booster: at every round one :class:`~repro.baselines.tree.GradientTreeRegressor`
per class is fitted to the gradient/hessian of the multi-class softmax
cross-entropy, leaves carry the regularised Newton step ``-G/(H+λ)`` and the
ensemble accumulates shrunken raw scores.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier
from .tree import GradientTreeRegressor

__all__ = ["GradientBoostingClassifier"]


def _softmax(raw_scores: np.ndarray) -> np.ndarray:
    shifted = raw_scores - raw_scores.max(axis=1, keepdims=True)
    exponent = np.exp(shifted)
    return exponent / exponent.sum(axis=1, keepdims=True)


class GradientBoostingClassifier(BaseClassifier):
    """Multi-class gradient boosting with second-order tree learners.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds (paper: 10).
    learning_rate:
        Shrinkage applied to each tree's output.
    max_depth:
        Depth of each regression tree.
    reg_lambda:
        L2 regularisation on leaf weights.
    gamma:
        Minimum split gain.
    subsample:
        Fraction of rows sampled (without replacement) per round; 1.0 disables
        stochastic boosting.
    seed:
        Seed for row subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        *,
        learning_rate: float = 0.3,
        max_depth: int = 3,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.reg_lambda = float(reg_lambda)
        self.gamma = float(gamma)
        self.subsample = float(subsample)
        self.seed = seed
        self.rounds_: list[list[GradientTreeRegressor]] | None = None
        self.base_score_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "GradientBoostingClassifier":
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y)) * len(y)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        label_index = np.searchsorted(self.classes_, y)
        one_hot = np.zeros((len(y), n_classes))
        one_hot[np.arange(len(y)), label_index] = 1.0

        # Start from the log prior so the first round fits residual structure.
        prior = np.clip(one_hot.mean(axis=0), 1e-6, None)
        self.base_score_ = np.log(prior / prior.sum())

        raw_scores = np.tile(self.base_score_, (len(y), 1))
        self.rounds_ = []
        for _ in range(self.n_estimators):
            probabilities = _softmax(raw_scores)
            gradient = (probabilities - one_hot) * weights[:, None]
            hessian = probabilities * (1.0 - probabilities) * weights[:, None]

            if self.subsample < 1.0:
                count = max(2, int(round(self.subsample * len(y))))
                rows = rng.choice(len(y), size=count, replace=False)
            else:
                rows = np.arange(len(y))

            round_trees: list[GradientTreeRegressor] = []
            for class_index in range(n_classes):
                tree = GradientTreeRegressor(
                    max_depth=self.max_depth,
                    reg_lambda=self.reg_lambda,
                    gamma=self.gamma,
                )
                tree.fit(X[rows], gradient[rows, class_index], hessian[rows, class_index])
                raw_scores[:, class_index] += self.learning_rate * tree.predict(X)
                round_trees.append(tree)
            self.rounds_.append(round_trees)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw (pre-softmax) scores, shape ``(n_samples, n_classes)``."""
        self._check_fitted("rounds_")
        X = self._validate_predict_args(X)
        raw_scores = np.tile(self.base_score_, (len(X), 1))
        for round_trees in self.rounds_:
            for class_index, tree in enumerate(round_trees):
                raw_scores[:, class_index] += self.learning_rate * tree.predict(X)
        return raw_scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
