"""CART decision trees built from scratch on ``numpy``.

Two tree flavours support the classical baselines the paper compares against:

* :class:`DecisionTreeClassifier` — Gini/entropy classification tree with
  sample weights, used directly and as the base learner for Random Forest
  (:mod:`repro.baselines.random_forest`) and AdaBoost
  (:mod:`repro.baselines.adaboost`).
* :class:`GradientTreeRegressor` — a regression tree that fits second-order
  (gradient, hessian) statistics with L2 leaf regularisation, the building
  block of the XGBoost-style booster in
  :mod:`repro.baselines.gradient_boosting`.

Split search is exact: every feature's sorted unique values are considered as
thresholds, with impurity deltas computed from cumulative sums so that each
node costs ``O(features × samples log samples)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import BaseClassifier

__all__ = ["DecisionTreeClassifier", "GradientTreeRegressor", "TreeNode"]


@dataclass
class TreeNode:
    """A node of a binary decision tree.

    Leaves have ``feature is None`` and carry either a class-probability
    vector (classification) or a scalar ``value`` (regression).
    """

    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    value: Optional[np.ndarray | float] = None
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def depth(self) -> int:
        """Depth of the subtree rooted at this node (a single leaf has depth 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def count_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()


def _class_impurity(weighted_counts: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of one or more nodes given per-class weighted counts.

    ``weighted_counts`` has shape ``(..., n_classes)``; the result drops the
    last axis.
    """
    totals = weighted_counts.sum(axis=-1, keepdims=True)
    safe_totals = np.where(totals <= 0, 1.0, totals)
    proportions = weighted_counts / safe_totals
    if criterion == "gini":
        impurity = 1.0 - np.sum(proportions**2, axis=-1)
    elif criterion == "entropy":
        with np.errstate(divide="ignore", invalid="ignore"):
            log_terms = np.where(proportions > 0, proportions * np.log2(proportions), 0.0)
        impurity = -np.sum(log_terms, axis=-1)
    else:
        raise ValueError(f"unknown criterion {criterion!r}")
    return np.where(totals[..., 0] <= 0, 0.0, impurity)


class DecisionTreeClassifier(BaseClassifier):
    """CART classification tree with sample-weight support.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` grows until pure or ``min_samples_split``).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    min_samples_leaf:
        Minimum number of samples in each child of a split.
    criterion:
        ``"gini"`` (default) or ``"entropy"``.
    max_features:
        Number of features examined per split: ``None`` (all), ``"sqrt"``,
        ``"log2"`` or an integer.  Random Forests rely on this for
        decorrelation.
    seed:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        *,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        max_features: int | str | None = None,
        seed: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"criterion must be 'gini' or 'entropy', got {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.criterion = criterion
        self.max_features = max_features
        self.seed = seed
        self.root_: TreeNode | None = None
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.seed)
        label_index = np.searchsorted(self.classes_, y)
        self.root_ = self._grow(X, label_index, weights, depth=0)
        return self

    def _resolve_max_features(self) -> int:
        total = self.n_features_
        if self.max_features is None:
            return total
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(total)))
        if self.max_features == "log2":
            return max(1, int(np.log2(total)))
        if isinstance(self.max_features, (int, np.integer)):
            return int(np.clip(self.max_features, 1, total))
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def _leaf(self, label_index: np.ndarray, weights: np.ndarray) -> TreeNode:
        counts = np.zeros(len(self.classes_))
        np.add.at(counts, label_index, weights)
        total = counts.sum()
        probabilities = counts / total if total > 0 else np.full_like(counts, 1.0 / len(counts))
        return TreeNode(value=probabilities, n_samples=len(label_index))

    def _grow(
        self, X: np.ndarray, label_index: np.ndarray, weights: np.ndarray, depth: int
    ) -> TreeNode:
        n_samples = len(label_index)
        pure = len(np.unique(label_index)) == 1
        depth_exhausted = self.max_depth is not None and depth >= self.max_depth
        if pure or depth_exhausted or n_samples < self.min_samples_split:
            return self._leaf(label_index, weights)

        split = self._best_split(X, label_index, weights)
        if split is None:
            return self._leaf(label_index, weights)

        feature, threshold = split
        left_mask = X[:, feature] <= threshold
        node = TreeNode(feature=feature, threshold=threshold, n_samples=n_samples)
        node.left = self._grow(X[left_mask], label_index[left_mask], weights[left_mask], depth + 1)
        node.right = self._grow(X[~left_mask], label_index[~left_mask], weights[~left_mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, label_index: np.ndarray, weights: np.ndarray
    ) -> tuple[int, float] | None:
        """Exhaustive impurity-minimising split over a random feature subset."""
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        feature_count = self._resolve_max_features()
        candidate_features = self._rng.choice(n_features, size=feature_count, replace=False)

        parent_counts = np.zeros(n_classes)
        np.add.at(parent_counts, label_index, weights)
        parent_impurity = float(_class_impurity(parent_counts, self.criterion))
        total_weight = weights.sum()

        best_gain = 1e-12
        best: tuple[int, float] | None = None
        for feature in candidate_features:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_labels = label_index[order]
            sorted_weights = weights[order]

            # Cumulative weighted class counts for the left partition after
            # each prefix of the sorted samples.
            one_hot = np.zeros((n_samples, n_classes))
            one_hot[np.arange(n_samples), sorted_labels] = sorted_weights
            left_counts = np.cumsum(one_hot, axis=0)[:-1]
            right_counts = parent_counts[None, :] - left_counts

            # Candidate boundaries are positions where the value changes.
            boundaries = np.flatnonzero(np.diff(sorted_values) > 0)
            if boundaries.size == 0:
                continue
            left_sizes = boundaries + 1
            right_sizes = n_samples - left_sizes
            valid = (left_sizes >= self.min_samples_leaf) & (right_sizes >= self.min_samples_leaf)
            boundaries = boundaries[valid]
            if boundaries.size == 0:
                continue

            left_weight = left_counts[boundaries].sum(axis=1)
            right_weight = right_counts[boundaries].sum(axis=1)
            left_impurity = _class_impurity(left_counts[boundaries], self.criterion)
            right_impurity = _class_impurity(right_counts[boundaries], self.criterion)
            children = (left_weight * left_impurity + right_weight * right_impurity) / total_weight
            gains = parent_impurity - children

            best_index = int(np.argmax(gains))
            if gains[best_index] > best_gain:
                best_gain = float(gains[best_index])
                boundary = boundaries[best_index]
                threshold = 0.5 * (sorted_values[boundary] + sorted_values[boundary + 1])
                best = (int(feature), float(threshold))
        return best

    # -------------------------------------------------------------- predict
    def _leaf_probabilities(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted("root_")
        X = self._validate_predict_args(X)
        output = np.empty((len(X), len(self.classes_)))
        for row, sample in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if sample[node.feature] <= node.threshold else node.right
            output[row] = node.value
        return output

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates from leaf weighted class frequencies."""
        return self._leaf_probabilities(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        probabilities = self._leaf_probabilities(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def depth(self) -> int:
        """Depth of the fitted tree."""
        self._check_fitted("root_")
        return self.root_.depth()


class GradientTreeRegressor:
    """Regression tree on (gradient, hessian) pairs with L2 regularisation.

    Implements the exact greedy split finding used by XGBoost: for a node with
    gradient sum ``G`` and hessian sum ``H``, the optimal leaf weight is
    ``-G / (H + λ)`` and the split gain is

    .. math::

       \\tfrac{1}{2}\\left(\\frac{G_L^2}{H_L+\\lambda} + \\frac{G_R^2}{H_R+\\lambda}
       - \\frac{G^2}{H+\\lambda}\\right) - \\gamma

    Parameters
    ----------
    max_depth:
        Maximum depth (XGBoost default style, small trees).
    reg_lambda:
        L2 regularisation on leaf weights.
    gamma:
        Minimum gain required to keep a split.
    min_child_weight:
        Minimum hessian sum allowed in a child.
    """

    def __init__(
        self,
        max_depth: int = 3,
        *,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 1e-3,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if reg_lambda < 0:
            raise ValueError(f"reg_lambda must be >= 0, got {reg_lambda}")
        self.max_depth = int(max_depth)
        self.reg_lambda = float(reg_lambda)
        self.gamma = float(gamma)
        self.min_child_weight = float(min_child_weight)
        self.root_: TreeNode | None = None

    def fit(self, X: np.ndarray, gradient: np.ndarray, hessian: np.ndarray) -> "GradientTreeRegressor":
        X = np.asarray(X, dtype=float)
        gradient = np.asarray(gradient, dtype=float)
        hessian = np.asarray(hessian, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if gradient.shape != (len(X),) or hessian.shape != (len(X),):
            raise ValueError("gradient and hessian must be 1-D with one entry per sample")
        self.root_ = self._grow(X, gradient, hessian, depth=0)
        return self

    def _leaf_value(self, gradient_sum: float, hessian_sum: float) -> float:
        return -gradient_sum / (hessian_sum + self.reg_lambda)

    def _grow(self, X: np.ndarray, gradient: np.ndarray, hessian: np.ndarray, depth: int) -> TreeNode:
        gradient_sum = float(gradient.sum())
        hessian_sum = float(hessian.sum())
        if depth >= self.max_depth or len(X) < 2:
            return TreeNode(value=self._leaf_value(gradient_sum, hessian_sum), n_samples=len(X))

        split = self._best_split(X, gradient, hessian, gradient_sum, hessian_sum)
        if split is None:
            return TreeNode(value=self._leaf_value(gradient_sum, hessian_sum), n_samples=len(X))

        feature, threshold = split
        left_mask = X[:, feature] <= threshold
        node = TreeNode(feature=feature, threshold=threshold, n_samples=len(X))
        node.left = self._grow(X[left_mask], gradient[left_mask], hessian[left_mask], depth + 1)
        node.right = self._grow(X[~left_mask], gradient[~left_mask], hessian[~left_mask], depth + 1)
        return node

    def _best_split(
        self,
        X: np.ndarray,
        gradient: np.ndarray,
        hessian: np.ndarray,
        gradient_sum: float,
        hessian_sum: float,
    ) -> tuple[int, float] | None:
        parent_score = gradient_sum**2 / (hessian_sum + self.reg_lambda)
        best_gain = self.gamma + 1e-12
        best: tuple[int, float] | None = None
        n_samples, n_features = X.shape

        for feature in range(n_features):
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            left_gradient = np.cumsum(gradient[order])[:-1]
            left_hessian = np.cumsum(hessian[order])[:-1]
            right_gradient = gradient_sum - left_gradient
            right_hessian = hessian_sum - left_hessian

            boundaries = np.flatnonzero(np.diff(sorted_values) > 0)
            if boundaries.size == 0:
                continue
            valid = (
                (left_hessian[boundaries] >= self.min_child_weight)
                & (right_hessian[boundaries] >= self.min_child_weight)
            )
            boundaries = boundaries[valid]
            if boundaries.size == 0:
                continue

            gains = 0.5 * (
                left_gradient[boundaries] ** 2 / (left_hessian[boundaries] + self.reg_lambda)
                + right_gradient[boundaries] ** 2 / (right_hessian[boundaries] + self.reg_lambda)
                - parent_score
            )
            best_index = int(np.argmax(gains))
            if gains[best_index] > best_gain:
                best_gain = float(gains[best_index])
                boundary = boundaries[best_index]
                threshold = 0.5 * (sorted_values[boundary] + sorted_values[boundary + 1])
                best = (int(feature), float(threshold))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise RuntimeError("GradientTreeRegressor is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        output = np.empty(len(X))
        for row, sample in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if sample[node.feature] <= node.threshold else node.right
            output[row] = node.value
        return output
