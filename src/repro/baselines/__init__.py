"""Classical machine-learning baselines implemented from scratch.

Every model the paper compares BoostHD against is rebuilt here on plain
``numpy`` with a shared estimator API (:class:`~repro.baselines.base.BaseClassifier`):
CART decision trees, Random Forest, AdaBoost (SAMME), XGBoost-style gradient
boosting, a Pegasos linear SVM and a DNN-style MLP, plus the preprocessing,
metric and model-selection utilities the experiments need.
"""

from .adaboost import AdaBoostClassifier
from .base import BaseClassifier, NotFittedError, clone
from .gradient_boosting import GradientBoostingClassifier
from .metrics import (
    accuracy,
    confusion_matrix,
    macro_accuracy,
    macro_f1,
    median_absolute_deviation,
    precision_recall_f1,
)
from .mlp import MLPClassifier
from .model_selection import (
    RepeatedRunResult,
    cross_val_score,
    kfold_indices,
    leave_one_subject_out,
    repeated_runs,
)
from .preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    StandardScaler,
    subject_train_test_split,
    train_test_split,
)
from .random_forest import RandomForestClassifier
from .svm import LinearSVM
from .tree import DecisionTreeClassifier, GradientTreeRegressor, TreeNode

__all__ = [
    "AdaBoostClassifier",
    "BaseClassifier",
    "NotFittedError",
    "clone",
    "GradientBoostingClassifier",
    "accuracy",
    "confusion_matrix",
    "macro_accuracy",
    "macro_f1",
    "median_absolute_deviation",
    "precision_recall_f1",
    "MLPClassifier",
    "RepeatedRunResult",
    "cross_val_score",
    "kfold_indices",
    "leave_one_subject_out",
    "repeated_runs",
    "LabelEncoder",
    "MinMaxScaler",
    "StandardScaler",
    "subject_train_test_split",
    "train_test_split",
    "RandomForestClassifier",
    "LinearSVM",
    "DecisionTreeClassifier",
    "GradientTreeRegressor",
    "TreeNode",
]
