"""Model-selection helpers: k-fold CV, leave-one-subject-out, repeated runs.

The paper evaluates every model over 10 independent runs and reports
mean ± standard deviation; person-specific results (Table III) require
grouping windows by subject.  These helpers provide that machinery on top of
the light-weight estimator API in :mod:`repro.baselines.base`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .base import BaseClassifier, clone
from .metrics import accuracy

__all__ = [
    "kfold_indices",
    "cross_val_score",
    "leave_one_subject_out",
    "RepeatedRunResult",
    "repeated_runs",
]


def kfold_indices(
    n_samples: int,
    n_folds: int = 5,
    *,
    shuffle: bool = True,
    rng: int | np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_indices, test_indices)`` pairs for k-fold CV."""
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    if n_folds > n_samples:
        raise ValueError(f"n_folds={n_folds} exceeds n_samples={n_samples}")
    indices = np.arange(n_samples)
    if shuffle:
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        indices = generator.permutation(indices)
    folds = np.array_split(indices, n_folds)
    for fold_number in range(n_folds):
        test_indices = folds[fold_number]
        train_indices = np.concatenate(
            [folds[other] for other in range(n_folds) if other != fold_number]
        )
        yield train_indices, test_indices


def cross_val_score(
    estimator: BaseClassifier,
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_folds: int = 5,
    metric: Callable[[np.ndarray, np.ndarray], float] = accuracy,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Metric value per fold, fitting a fresh clone of ``estimator`` each time."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    scores = []
    for train_indices, test_indices in kfold_indices(len(y), n_folds, rng=rng):
        model = clone(estimator)
        model.fit(X[train_indices], y[train_indices])
        scores.append(metric(y[test_indices], model.predict(X[test_indices])))
    return np.asarray(scores)


def leave_one_subject_out(
    subjects: np.ndarray,
) -> Iterator[tuple[np.ndarray, np.ndarray, object]]:
    """Yield ``(train_indices, test_indices, held_out_subject)`` triples."""
    subjects = np.asarray(subjects)
    for subject in np.unique(subjects):
        test_mask = subjects == subject
        yield np.flatnonzero(~test_mask), np.flatnonzero(test_mask), subject


@dataclass
class RepeatedRunResult:
    """Summary of repeated independent runs of one model."""

    scores: np.ndarray

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        return float(np.std(self.scores))

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return f"{self.mean:.4f} ± {self.std:.4f} (n={len(self.scores)})"


def repeated_runs(
    build_model: Callable[[int], BaseClassifier],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    *,
    n_runs: int = 10,
    metric: Callable[[np.ndarray, np.ndarray], float] = accuracy,
) -> RepeatedRunResult:
    """Train/evaluate ``n_runs`` freshly-built models and summarise the scores.

    ``build_model`` receives the run index (usable as a seed) and must return
    an unfitted classifier.  This is the paper's "10 independent runs"
    protocol.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    scores = []
    for run in range(n_runs):
        model = build_model(run)
        model.fit(X_train, y_train)
        scores.append(metric(y_test, model.predict(X_test)))
    return RepeatedRunResult(scores=np.asarray(scores))
