"""Light-weight estimator API shared by every model in this repository.

The interface intentionally mirrors the familiar scikit-learn contract —
``fit(X, y, sample_weight=None)``, ``predict(X)``, ``score(X, y)`` and
``get_params`` / ``set_params`` driven by the constructor signature — so that
the experiment harness (:mod:`repro.experiments`) can treat HDC models,
classical baselines and the BoostHD ensemble uniformly, and so that
:func:`clone` can create fresh unfitted copies for repeated runs.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod
from typing import Any

import numpy as np

__all__ = ["BaseClassifier", "clone", "NotFittedError"]


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called before ``fit``."""


class BaseClassifier(ABC):
    """Common base class for all classifiers in the repository.

    Subclasses must store every constructor argument on ``self`` under the
    same name (the scikit-learn convention) so that parameter introspection
    and cloning work, set ``classes_`` during :meth:`fit`, and implement
    :meth:`fit` and :meth:`predict`.
    """

    #: Class labels seen during fit, set by subclasses.
    classes_: np.ndarray | None

    # ------------------------------------------------------------------ API
    @abstractmethod
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "BaseClassifier":
        """Fit the model and return ``self``."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict class labels for each row of ``X``."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy of :meth:`predict` on ``(X, y)``."""
        predictions = self.predict(X)
        return float(np.mean(predictions == np.asarray(y)))

    # ----------------------------------------------------------- parameters
    @classmethod
    def _parameter_names(cls) -> list[str]:
        """Constructor argument names, excluding ``self`` and var-args."""
        signature = inspect.signature(cls.__init__)
        names = []
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
                continue
            names.append(name)
        return names

    def get_params(self) -> dict[str, Any]:
        """Return constructor parameters as a dictionary."""
        return {name: getattr(self, name) for name in self._parameter_names()}

    def set_params(self, **params: Any) -> "BaseClassifier":
        """Update constructor parameters in place and return ``self``."""
        valid = set(self._parameter_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # ------------------------------------------------------------ validation
    @staticmethod
    def _validate_fit_args(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Coerce and sanity-check training data."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got ndim={X.ndim}")
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got ndim={y.ndim}")
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}"
            )
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not np.all(np.isfinite(X)):
            raise ValueError("X contains NaN or infinite values")
        return X, y

    @staticmethod
    def _validate_predict_args(X: np.ndarray) -> np.ndarray:
        """Coerce and sanity-check query data."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise ValueError(f"X must be 1-D or 2-D, got ndim={X.ndim}")
        return X

    @staticmethod
    def _validate_sample_weight(
        sample_weight: np.ndarray | None, n_samples: int
    ) -> np.ndarray:
        """Return validated, non-negative sample weights (uniform if omitted)."""
        if sample_weight is None:
            return np.full(n_samples, 1.0 / n_samples)
        weights = np.asarray(sample_weight, dtype=float)
        if weights.shape != (n_samples,):
            raise ValueError(
                f"sample_weight must have shape ({n_samples},), got {weights.shape}"
            )
        if np.any(weights < 0):
            raise ValueError("sample_weight must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("sample_weight must not sum to zero")
        return weights / total

    def _check_fitted(self, attribute: str) -> None:
        """Raise :class:`NotFittedError` unless ``attribute`` is populated."""
        if getattr(self, attribute, None) is None:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )


def clone(estimator: BaseClassifier) -> BaseClassifier:
    """Create a fresh unfitted copy of ``estimator`` with the same parameters."""
    return type(estimator)(**estimator.get_params())
