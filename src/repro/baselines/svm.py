"""Linear support vector machine trained with the Pegasos SGD algorithm.

The paper's SVM baseline uses a linear kernel.  Pegasos (primal estimated
sub-gradient solver) minimises the L2-regularised hinge loss with a
``1/(λ·t)`` step size; multi-class problems are handled one-vs-rest, which is
the standard reduction for linear SVMs.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier

__all__ = ["LinearSVM"]


class LinearSVM(BaseClassifier):
    """One-vs-rest linear SVM via Pegasos stochastic sub-gradient descent.

    Parameters
    ----------
    regularization:
        The λ of the Pegasos objective (larger = stronger regularisation).
    epochs:
        Number of passes over the training data per binary problem.
    batch_size:
        Mini-batch size for each sub-gradient step.
    fit_intercept:
        Learn an (unregularised) bias term by appending a constant feature.
    seed:
        Seed controlling mini-batch sampling.
    """

    def __init__(
        self,
        regularization: float = 1e-3,
        *,
        epochs: int = 30,
        batch_size: int = 32,
        fit_intercept: bool = True,
        seed: int | None = None,
    ) -> None:
        if regularization <= 0:
            raise ValueError(f"regularization must be positive, got {regularization}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.regularization = float(regularization)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.fit_intercept = bool(fit_intercept)
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def _augment(self, X: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return X
        return np.hstack([X, np.ones((len(X), 1))])

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LinearSVM":
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y)) * len(y)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        augmented = self._augment(X)
        n_samples, n_features = augmented.shape

        self.weights_ = np.zeros((len(self.classes_), n_features))
        for class_index, label in enumerate(self.classes_):
            targets = np.where(y == label, 1.0, -1.0)
            weight_vector = np.zeros(n_features)
            step = 0
            for _ in range(self.epochs):
                order = rng.permutation(n_samples)
                for start in range(0, n_samples, self.batch_size):
                    step += 1
                    batch = order[start : start + self.batch_size]
                    eta = 1.0 / (self.regularization * step)
                    margins = targets[batch] * (augmented[batch] @ weight_vector)
                    violators = margins < 1.0
                    gradient = self.regularization * weight_vector
                    if np.any(violators):
                        rows = batch[violators]
                        gradient -= (
                            (weights[rows] * targets[rows]) @ augmented[rows]
                        ) / len(batch)
                    weight_vector -= eta * gradient
                    # Pegasos projection onto the ball of radius 1/sqrt(λ).
                    norm = np.linalg.norm(weight_vector)
                    radius = 1.0 / np.sqrt(self.regularization)
                    if norm > radius:
                        weight_vector *= radius / norm
            self.weights_[class_index] = weight_vector
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """One-vs-rest margins, shape ``(n_samples, n_classes)``."""
        self._check_fitted("weights_")
        X = self._validate_predict_args(X)
        return self._augment(X) @ self.weights_.T

    def predict(self, X: np.ndarray) -> np.ndarray:
        margins = self.decision_function(X)
        return self.classes_[np.argmax(margins, axis=1)]
