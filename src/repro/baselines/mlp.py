"""Fully-connected neural network (the paper's "DNN" baseline) in numpy.

The paper's DNN uses four linear layers with widths ``[2048, 1024, 512,
classes]``, ReLU activations, dropout and a learning rate of 0.001 — i.e. an
MLP trained with Adam on softmax cross-entropy.  This module implements that
architecture with explicit forward/backward passes so the bit-flip robustness
experiment (Figure 8) can perturb its weight matrices the same way it perturbs
HDC class hypervectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import BaseClassifier

__all__ = ["MLPClassifier"]


def _softmax(raw_scores: np.ndarray) -> np.ndarray:
    shifted = raw_scores - raw_scores.max(axis=1, keepdims=True)
    exponent = np.exp(shifted)
    return exponent / exponent.sum(axis=1, keepdims=True)


class MLPClassifier(BaseClassifier):
    """Multi-layer perceptron with ReLU, inverted dropout and Adam.

    Parameters
    ----------
    hidden_layers:
        Widths of the hidden layers.  The paper uses ``(2048, 1024, 512)``;
        the default is a smaller stack so unit tests stay fast — the
        experiment harness passes the paper configuration explicitly.
    lr:
        Adam learning rate (paper: 0.001).
    epochs:
        Training epochs.
    batch_size:
        Mini-batch size.
    dropout:
        Dropout probability applied after each hidden activation.
    weight_decay:
        L2 penalty added to the gradient (0 disables it).
    seed:
        Seed for initialisation, shuffling and dropout masks.
    """

    def __init__(
        self,
        hidden_layers: Sequence[int] = (128, 64),
        *,
        lr: float = 1e-3,
        epochs: int = 30,
        batch_size: int = 32,
        dropout: float = 0.1,
        weight_decay: float = 0.0,
        seed: int | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if not 0.0 <= dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {dropout}")
        if any(width < 1 for width in hidden_layers):
            raise ValueError("hidden layer widths must be positive")
        self.hidden_layers = tuple(int(width) for width in hidden_layers)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.dropout = float(dropout)
        self.weight_decay = float(weight_decay)
        self.seed = seed
        self.weights_: list[np.ndarray] | None = None
        self.biases_: list[np.ndarray] | None = None
        self.classes_: np.ndarray | None = None

    # --------------------------------------------------------------- set-up
    def _initialize(self, n_features: int, n_classes: int, rng: np.random.Generator) -> None:
        widths = [n_features, *self.hidden_layers, n_classes]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(widths[:-1], widths[1:]):
            # He initialisation suits ReLU activations.
            scale = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.standard_normal((fan_in, fan_out)) * scale)
            self.biases_.append(np.zeros(fan_out))

    # ------------------------------------------------------------- training
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "MLPClassifier":
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y)) * len(y)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        label_index = np.searchsorted(self.classes_, y)
        self._initialize(X.shape[1], len(self.classes_), rng)

        # Adam state (one slot per parameter tensor, weights then biases).
        first_moment = [np.zeros_like(w) for w in self.weights_] + [
            np.zeros_like(b) for b in self.biases_
        ]
        second_moment = [np.zeros_like(m) for m in first_moment]
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8
        step = 0

        for _ in range(self.epochs):
            order = rng.permutation(len(y))
            for start in range(0, len(y), self.batch_size):
                batch = order[start : start + self.batch_size]
                gradients = self._batch_gradients(
                    X[batch], label_index[batch], weights[batch], rng
                )
                step += 1
                parameters = self.weights_ + self.biases_
                for slot, (parameter, gradient) in enumerate(zip(parameters, gradients)):
                    if self.weight_decay and slot < len(self.weights_):
                        gradient = gradient + self.weight_decay * parameter
                    first_moment[slot] = beta1 * first_moment[slot] + (1 - beta1) * gradient
                    second_moment[slot] = (
                        beta2 * second_moment[slot] + (1 - beta2) * gradient**2
                    )
                    corrected_first = first_moment[slot] / (1 - beta1**step)
                    corrected_second = second_moment[slot] / (1 - beta2**step)
                    parameter -= self.lr * corrected_first / (
                        np.sqrt(corrected_second) + epsilon
                    )
        return self

    def _batch_gradients(
        self,
        inputs: np.ndarray,
        label_index: np.ndarray,
        sample_weight: np.ndarray,
        rng: np.random.Generator,
    ) -> list[np.ndarray]:
        """Forward + backward pass; returns gradients for weights then biases."""
        activations = [inputs]
        dropout_masks: list[np.ndarray | None] = []
        hidden = inputs
        last_layer = len(self.weights_) - 1
        for layer, (weight, bias) in enumerate(zip(self.weights_, self.biases_)):
            pre_activation = hidden @ weight + bias
            if layer < last_layer:
                hidden = np.maximum(pre_activation, 0.0)
                if self.dropout > 0.0:
                    mask = (rng.random(hidden.shape) >= self.dropout) / (1.0 - self.dropout)
                    hidden = hidden * mask
                    dropout_masks.append(mask)
                else:
                    dropout_masks.append(None)
                activations.append(hidden)
            else:
                hidden = pre_activation

        probabilities = _softmax(hidden)
        batch_size = len(inputs)
        delta = probabilities.copy()
        delta[np.arange(batch_size), label_index] -= 1.0
        delta *= sample_weight[:, None] / batch_size

        weight_gradients: list[np.ndarray] = [None] * len(self.weights_)
        bias_gradients: list[np.ndarray] = [None] * len(self.biases_)
        for layer in range(last_layer, -1, -1):
            weight_gradients[layer] = activations[layer].T @ delta
            bias_gradients[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self.weights_[layer].T
                mask = dropout_masks[layer - 1]
                if mask is not None:
                    delta = delta * mask
                delta = delta * (activations[layer] > 0.0)
        return weight_gradients + bias_gradients

    # ------------------------------------------------------------ inference
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw logits of the network (dropout disabled)."""
        self._check_fitted("weights_")
        X = self._validate_predict_args(X)
        hidden = X
        last_layer = len(self.weights_) - 1
        for layer, (weight, bias) in enumerate(zip(self.weights_, self.biases_)):
            hidden = hidden @ weight + bias
            if layer < last_layer:
                hidden = np.maximum(hidden, 0.0)
        return hidden

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        logits = self.decision_function(X)
        return self.classes_[np.argmax(logits, axis=1)]
