"""Evaluation metrics used throughout the paper's experiments.

The paper reports plain accuracy (Tables I and III), *macro* accuracy —
the unweighted mean of per-class recall — for the imbalance experiment
(Figure 7, so that inflated majority classes cannot hide minority-class
collapse), and the Median Absolute Deviation (MAD) as the robustness summary
for the bit-flip experiment (Figure 8).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "macro_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "macro_f1",
    "median_absolute_deviation",
]


def _validate_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred must have the same shape, got {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute a metric on empty arrays")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly-matching predictions."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: np.ndarray | None = None
) -> np.ndarray:
    """Confusion matrix with rows = true classes, columns = predicted classes.

    ``labels`` fixes the row/column order; by default the sorted union of the
    labels present in either array is used.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: position for position, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true_label, predicted_label in zip(y_true, y_pred):
        matrix[index[true_label], index[predicted_label]] += 1
    return matrix


def macro_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of per-class recall (balanced accuracy).

    This is the metric the paper uses for the imbalanced-data experiment so
    that classes with very few samples count as much as the inflated ones.
    Classes present in ``y_true`` but never predicted correctly contribute a
    recall of zero; classes absent from ``y_true`` are ignored.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    recalls = []
    for label in np.unique(y_true):
        mask = y_true == label
        recalls.append(float(np.mean(y_pred[mask] == label)))
    return float(np.mean(recalls))


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray
) -> dict[object, tuple[float, float, float]]:
    """Per-class (precision, recall, F1).  Undefined ratios default to 0."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    results: dict[object, tuple[float, float, float]] = {}
    for label in labels:
        true_positive = float(np.sum((y_true == label) & (y_pred == label)))
        predicted_positive = float(np.sum(y_pred == label))
        actual_positive = float(np.sum(y_true == label))
        precision = true_positive / predicted_positive if predicted_positive else 0.0
        recall = true_positive / actual_positive if actual_positive else 0.0
        if precision + recall > 0:
            f1 = 2.0 * precision * recall / (precision + recall)
        else:
            f1 = 0.0
        results[label] = (precision, recall, f1)
    return results


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores."""
    per_class = precision_recall_f1(y_true, y_pred)
    return float(np.mean([f1 for (_, _, f1) in per_class.values()]))


def median_absolute_deviation(values: np.ndarray) -> float:
    """MAD = median(|x_i - median(x)|), the paper's robustness statistic."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute MAD of an empty array")
    return float(np.median(np.abs(array - np.median(array))))
