"""AdaBoost classifier (SAMME) over shallow decision trees.

Implements the multi-class SAMME variant of AdaBoost that scikit-learn uses
and that the paper configures with ``learning_rate = 1.0`` and 10 estimators.
Each round trains a weak tree on the current sample weights, computes the
weighted error ``e``, assigns the learner importance

.. math:: \\alpha = \\eta\\left(\\ln\\frac{1 - e}{e} + \\ln(K - 1)\\right)

and multiplies the weights of misclassified samples by ``exp(α)`` before
renormalising.  This is the same boosting loop BoostHD applies to OnlineHD
weak learners (see :mod:`repro.core.boosthd`); having the classical version
here lets the experiments compare boosting-with-trees against
boosting-with-HDC directly.
"""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier
from .tree import DecisionTreeClassifier

__all__ = ["AdaBoostClassifier"]


class AdaBoostClassifier(BaseClassifier):
    """Multi-class AdaBoost (SAMME) with decision-tree weak learners.

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting rounds (paper: 10).
    learning_rate:
        Shrinkage ``η`` applied to each learner's importance (paper: 1.0).
    max_depth:
        Depth of each weak tree (1 = decision stump, ``None`` = unlimited).
    seed:
        Seed for tree feature subsampling (trees use all features by default,
        so this mainly matters for tie-breaking).
    """

    def __init__(
        self,
        n_estimators: int = 10,
        *,
        learning_rate: float = 1.0,
        max_depth: int | None = 1,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = None if max_depth is None else int(max_depth)
        self.seed = seed
        self.estimators_: list[DecisionTreeClassifier] | None = None
        self.estimator_weights_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "AdaBoostClassifier":
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)

        estimators: list[DecisionTreeClassifier] = []
        alphas: list[float] = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth, seed=int(rng.integers(0, 2**31 - 1))
            )
            tree.fit(X, y, sample_weight=weights)
            predictions = tree.predict(X)
            incorrect = predictions != y
            error = float(np.sum(weights * incorrect))

            if error <= 0.0:
                # Perfect weak learner: give it full confidence and stop.
                estimators.append(tree)
                alphas.append(1.0)
                break
            if error >= 1.0 - 1.0 / n_classes:
                # Worse than chance: discard and stop (SAMME requirement).
                if not estimators:
                    estimators.append(tree)
                    alphas.append(1e-10)
                break

            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            estimators.append(tree)
            alphas.append(float(alpha))

            weights = weights * np.exp(alpha * incorrect)
            weights = weights / weights.sum()

        self.estimators_ = estimators
        self.estimator_weights_ = np.asarray(alphas)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Weighted vote score per class, shape ``(n_samples, n_classes)``."""
        self._check_fitted("estimators_")
        X = self._validate_predict_args(X)
        scores = np.zeros((len(X), len(self.classes_)))
        for tree, alpha in zip(self.estimators_, self.estimator_weights_):
            predictions = tree.predict(X)
            columns = np.searchsorted(self.classes_, predictions)
            scores[np.arange(len(X)), columns] += alpha
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
