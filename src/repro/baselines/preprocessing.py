"""Preprocessing utilities: scaling, label encoding and subject-wise splits.

The paper normalises features "to ensure consistent scaling" after the
moving-average + statistical-feature pipeline and organises test data "by
subject units" — i.e. all windows of a held-out subject land in the test set
together, which is the realistic deployment scenario for wearable models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "LabelEncoder",
    "train_test_split",
    "subject_train_test_split",
]


@dataclass
class StandardScaler:
    """Zero-mean / unit-variance feature scaling.

    Constant features (zero variance) are left centred but not divided, so
    the transform never produces NaN.
    """

    mean_: np.ndarray | None = field(default=None, init=False)
    scale_: np.ndarray | None = field(default=None, init=False)

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


@dataclass
class MinMaxScaler:
    """Scale each feature to ``[0, 1]`` based on the training range."""

    min_: np.ndarray | None = field(default=None, init=False)
    range_: np.ndarray | None = field(default=None, init=False)

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=float)
        self.min_ = X.min(axis=0)
        spread = X.max(axis=0) - self.min_
        self.range_ = np.where(spread < 1e-12, 1.0, spread)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("MinMaxScaler must be fitted before transform")
        return (np.asarray(X, dtype=float) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


@dataclass
class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers ``0..K-1``."""

    classes_: np.ndarray | None = field(default=None, init=False)

    def fit(self, y: np.ndarray) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before transform")
        y = np.asarray(y)
        indices = np.searchsorted(self.classes_, y)
        valid = (indices < len(self.classes_)) & (self.classes_[np.minimum(indices, len(self.classes_) - 1)] == y)
        if not np.all(valid):
            unknown = np.unique(y[~valid])
            raise ValueError(f"unknown labels encountered: {unknown.tolist()}")
        return indices

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, indices: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder must be fitted before inverse_transform")
        return self.classes_[np.asarray(indices, dtype=int)]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_fraction: float = 0.25,
    stratify: bool = True,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random (optionally stratified) split into train and test sets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must have the same number of samples")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    test_indices: list[int] = []
    if stratify:
        for label in np.unique(y):
            candidates = np.flatnonzero(y == label)
            shuffled = generator.permutation(candidates)
            count = max(1, int(round(test_fraction * len(candidates))))
            test_indices.extend(shuffled[:count].tolist())
    else:
        shuffled = generator.permutation(len(y))
        count = max(1, int(round(test_fraction * len(y))))
        test_indices = shuffled[:count].tolist()

    test_mask = np.zeros(len(y), dtype=bool)
    test_mask[np.asarray(test_indices, dtype=int)] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


def subject_train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    subjects: np.ndarray,
    *,
    test_fraction: float = 0.3,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split so entire subjects are held out for testing (the paper's setup).

    ``subjects`` assigns a subject identifier to every sample; a random subset
    of subjects (at least one) forms the test set.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X)
    y = np.asarray(y)
    subjects = np.asarray(subjects)
    if not (len(X) == len(y) == len(subjects)):
        raise ValueError("X, y and subjects must have the same number of samples")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    unique_subjects = np.unique(subjects)
    if len(unique_subjects) < 2:
        raise ValueError("need at least two subjects for a subject-wise split")
    count = max(1, int(round(test_fraction * len(unique_subjects))))
    count = min(count, len(unique_subjects) - 1)
    test_subjects = generator.choice(unique_subjects, size=count, replace=False)
    test_mask = np.isin(subjects, test_subjects)
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]
