"""Deterministic seed derivation for experiment grids.

Reproducibility across worker counts requires that the seed of every grid
cell be a pure function of the cell's *coordinates* — never of execution
order, scheduling, or which process happens to run the cell.  The helpers
here derive per-cell seeds with :class:`numpy.random.SeedSequence` spawn
keys: the root seed is the entropy and the cell coordinates form the spawn
key, which is exactly the tree-derivation ``SeedSequence.spawn`` performs.
Two different coordinate paths therefore yield statistically independent
streams, and the same path always yields the same seed, so suite results
are bit-identical whether the grid runs serially or on any number of
workers.

A ``root_seed`` of ``None`` selects *legacy* derivation, matching the
original serial runner: model cells are seeded with their run index and the
three synthetic datasets with their canonical positions (0, 1, 2).  This
keeps default results byte-for-byte identical to the pre-runtime code.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "NS_DATASET",
    "NS_MODEL",
    "name_key",
    "derive_seed_sequence",
    "derive_seed",
    "dataset_seeds",
    "cell_seed",
]

#: Namespace component separating dataset-generation seeds from model seeds,
#: so a dataset and a model cell can never collide on the same stream.
NS_DATASET = 0
NS_MODEL = 1

#: Mask keeping derived seeds in the non-negative int64 range every model
#: constructor accepts.
_SEED_MASK = (1 << 63) - 1


def name_key(name: str) -> int:
    """Stable integer coordinate for a dataset/model *name*.

    Deriving grid coordinates from names rather than positions keeps a
    cell's seed invariant under subsetting or reordering of the suite: the
    (dataset, model, run) cell draws the same seed whether the suite ran the
    full grid or just that dataset/model — which is what lets partial runs
    replay into full ones from the artifact store.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _SEED_MASK


def derive_seed_sequence(root_seed: int, *path: int) -> np.random.SeedSequence:
    """SeedSequence for the grid node at ``path`` under ``root_seed``.

    Equivalent to spawning children along ``path`` from
    ``SeedSequence(root_seed)``: the path becomes the spawn key, which is
    how :meth:`numpy.random.SeedSequence.spawn` derives children.
    """
    return np.random.SeedSequence(
        entropy=int(root_seed), spawn_key=tuple(int(part) for part in path)
    )


def derive_seed(root_seed: int, *path: int) -> int:
    """Deterministic non-negative integer seed for the grid node at ``path``."""
    state = derive_seed_sequence(root_seed, *path).generate_state(1, np.uint64)
    return int(state[0]) & _SEED_MASK


def dataset_seeds(
    names: Sequence[str],
    canonical_names: Sequence[str],
    root_seed: int | None,
) -> Mapping[str, int]:
    """Generation seed for every dataset in ``names``.

    ``canonical_names`` fixes each dataset's coordinate so the seed does not
    depend on which subset of datasets a suite happens to request.  With
    ``root_seed=None`` the legacy hard-coded seeds (the canonical index:
    WESAD→0, Nurse→1, Stress-Predict→2) are returned unchanged.
    """
    seeds: dict[str, int] = {}
    for name in names:
        try:
            index = list(canonical_names).index(name)
        except ValueError:
            raise KeyError(
                f"unknown dataset {name!r}; canonical datasets: {tuple(canonical_names)}"
            ) from None
        if root_seed is None:
            seeds[name] = index
        else:
            seeds[name] = derive_seed(root_seed, NS_DATASET, index)
    return seeds


def cell_seed(
    root_seed: int | None,
    dataset: str,
    model: str,
    run_index: int,
) -> int:
    """Model-training seed for one (dataset, model, run) grid cell.

    The dataset and model enter the derivation through :func:`name_key`, so
    the seed depends on *which* cell this is, never on where the cell sits
    in a particular suite's ordering.  Legacy mode (``root_seed=None``)
    reproduces the original serial runner, which seeded every model with its
    run index alone.
    """
    if root_seed is None:
        return int(run_index)
    return derive_seed(
        root_seed, NS_MODEL, name_key(dataset), name_key(model), run_index
    )
