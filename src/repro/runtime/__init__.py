"""Parallel, resumable experiment runtime.

The runtime turns a suite specification into a :class:`~repro.runtime.plan.GridPlan`
of independent (dataset × model × run) cells with deterministically derived
seeds, executes the cells on a process pool (or serially) via
:class:`~repro.runtime.executor.ParallelExecutor`, checkpoints every
completed cell into a content-hashed :class:`~repro.runtime.store.ArtifactStore`
so interrupted suites resume without recomputation, and reports per-cell
wall time and worker utilization through a
:class:`~repro.runtime.report.RunReport`.

Results are bit-identical across worker counts and scheduling orders because
every cell's seed is a pure function of its grid coordinates
(:mod:`repro.runtime.seeding`).
"""

from .cells import CellResult, RunSample, execute_cell, single_run
from .executor import (
    LoaderSource,
    ParallelExecutor,
    SplitSource,
    available_cpus,
    get_shared,
    parallel_map,
    resolve_max_workers,
)
from .plan import CellTask, GridPlan
from .report import CellStats, RunReport, merge_reports
from .seeding import cell_seed, dataset_seeds, derive_seed, derive_seed_sequence
from .store import ArtifactStore, canonical_spec, spec_key

__all__ = [
    "CellResult",
    "RunSample",
    "execute_cell",
    "single_run",
    "LoaderSource",
    "ParallelExecutor",
    "SplitSource",
    "available_cpus",
    "get_shared",
    "parallel_map",
    "resolve_max_workers",
    "CellTask",
    "GridPlan",
    "CellStats",
    "RunReport",
    "merge_reports",
    "cell_seed",
    "dataset_seeds",
    "derive_seed",
    "derive_seed_sequence",
    "ArtifactStore",
    "canonical_spec",
    "spec_key",
]
