"""Parallel grid execution: process pool with a serial fallback.

Two entry points:

* :func:`parallel_map` — order-preserving map of a top-level function over a
  list of picklable items, with a *shared payload* shipped to every worker
  exactly once (via the pool initializer).  The experiment figure/table
  generators route their inner loops through this.
* :class:`ParallelExecutor` — the suite engine: executes a
  :class:`~repro.runtime.plan.GridPlan` cell by cell, checkpointing every
  completed cell into an optional :class:`~repro.runtime.store.ArtifactStore`
  (so interrupted runs resume) and producing a
  :class:`~repro.runtime.report.RunReport`.

Determinism: a cell's result depends only on its task (which carries its own
derived seed) and on the dataset split, never on which worker runs it or in
what order — so serial and parallel execution are bit-identical.  Workers
either receive the precomputed splits once (explicit datasets) or regenerate
their datasets locally from the same seeds (``LoaderSource``, the per-worker
dataset-loading path that avoids shipping arrays altogether).

``max_workers`` resolution: ``None`` consults the ``REPRO_MAX_WORKERS``
environment variable and falls back to serial; ``0``/``1`` force serial;
``"auto"`` uses the available CPU count.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence, TypeVar

import numpy as np

from ..obs import OBS, scoped_registry
from ..obs.metrics import MetricsRegistry
from .report import RunReport
from .seeding import dataset_seeds

if TYPE_CHECKING:
    from ..experiments.config import ExperimentScale
    from .cells import CellResult
    from .plan import CellTask, GridPlan
    from .store import ArtifactStore

__all__ = [
    "SplitSource",
    "LoaderSource",
    "ParallelExecutor",
    "parallel_map",
    "resolve_max_workers",
    "get_shared",
]

T = TypeVar("T")
U = TypeVar("U")

Split = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_max_workers(
    max_workers: int | str | None,
    *,
    env: Sequence[str] = ("REPRO_MAX_WORKERS",),
) -> int:
    """Normalise a worker-count request to a concrete pool size (>= 1).

    ``None`` consults the ``env`` variables in order (first non-empty wins)
    and falls back to serial; subsystems with their own knob prepend it,
    e.g. the serving fabric resolves through ``("REPRO_FABRIC_WORKERS",
    "REPRO_MAX_WORKERS")``.
    """
    if max_workers is None:
        for variable in env:
            value = os.environ.get(variable, "").strip()
            if value:
                max_workers = value
                break
        else:
            return 1
    if isinstance(max_workers, str):
        if max_workers.lower() == "auto":
            return max(1, available_cpus())
        max_workers = int(max_workers)
    return max(1, int(max_workers))


# --------------------------------------------------------------------------
# Shared payload plumbing.  The payload is installed once per worker by the
# pool initializer; the serial fallback installs it in-process so cell
# functions read it identically on both paths.
# --------------------------------------------------------------------------

_SHARED: object = None


def _set_shared(payload: object) -> None:
    global _SHARED
    _SHARED = payload


def get_shared() -> object:
    """The shared payload installed for the current (worker) process."""
    return _SHARED


def parallel_map(
    fn: Callable[[T], U],
    items: Iterable[T],
    *,
    max_workers: int | str | None = None,
    shared: object = None,
    chunk_size: int | None = None,
) -> list[U]:
    """Order-preserving map with an optional process pool.

    ``fn`` must be a module-level (picklable) function when ``max_workers``
    resolves to more than one worker; ``shared`` is shipped to every worker
    once and read back through :func:`get_shared`.  With one worker the map
    runs serially in-process through the exact same code path.
    """
    items = list(items)
    workers = resolve_max_workers(max_workers)
    if workers <= 1 or len(items) <= 1:
        previous = _SHARED
        _set_shared(shared)
        try:
            return [fn(item) for item in items]
        finally:
            _set_shared(previous)
    if chunk_size is None:
        chunk_size = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_set_shared, initargs=(shared,)
    ) as pool:
        return list(pool.map(fn, items, chunksize=max(1, int(chunk_size))))


# --------------------------------------------------------------------------
# Suite data sources.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SplitSource:
    """Precomputed train/test splits, shipped to each worker once.

    Used when the caller passes explicit dataset objects to ``run_suite``;
    the artifact-store fingerprint is the SHA-256 of the split arrays, so
    different data can never replay each other's cells.
    """

    splits: Mapping[str, Split]
    #: Per-dataset fingerprint cache: hashing the split arrays is O(data) and
    #: the same dataset appears in (models x runs) cells.
    _fingerprints: dict = field(default_factory=dict, repr=False, compare=False)

    def fingerprint(self, name: str) -> str:
        if name not in self._fingerprints:
            digest = hashlib.sha256()
            for array in self.splits[name]:
                array = np.ascontiguousarray(array)
                digest.update(str(array.dtype).encode())
                digest.update(str(array.shape).encode())
                digest.update(array.tobytes())
            self._fingerprints[name] = digest.hexdigest()
        return self._fingerprints[name]

    def split_for(self, name: str) -> Split:
        return self.splits[name]


@dataclass(frozen=True)
class LoaderSource:
    """Per-worker dataset loading: each worker regenerates its datasets.

    Carries only the generation recipe (canonical names, scale, root seed,
    split configuration); every worker loads a dataset lazily on first use
    and caches it for the rest of its life.  Because generation and the
    subject-wise split are seed-deterministic, all workers see bit-identical
    arrays without any being shipped between processes.
    """

    names: tuple[str, ...]
    scale: "ExperimentScale"
    seed: int | None
    test_fraction: float
    split_seed: int

    def dataset_seed(self, name: str) -> int:
        return dataset_seeds([name], self.names, self.seed)[name]

    def fingerprint(self, name: str) -> str:
        recipe = (
            f"loader:{name}:seed={self.dataset_seed(name)}"
            f":scale={self.scale.name}"
        )
        return hashlib.sha256(recipe.encode("utf-8")).hexdigest()

    def split_for(self, name: str) -> Split:
        from ..experiments.runner import load_dataset

        dataset = load_dataset(name, self.scale, seed=self.dataset_seed(name))
        return dataset.split(test_fraction=self.test_fraction, rng=self.split_seed)


# --------------------------------------------------------------------------
# Worker-side cell execution.
# --------------------------------------------------------------------------

_CELL_CONTEXT: dict | None = None


def _init_cell_worker(
    source: SplitSource | LoaderSource,
    scale: "ExperimentScale",
    engine: bool,
    engine_cache_size: int,
    obs_enabled: bool = False,
) -> None:
    global _CELL_CONTEXT
    _CELL_CONTEXT = {
        "source": source,
        "scale": scale,
        "engine": engine,
        "engine_cache_size": engine_cache_size,
        "splits": {},
    }
    if obs_enabled:
        # Worker processes inherit the parent's telemetry decision: each gets
        # a *fresh* registry/recorder whose deltas ride back with the results.
        # Fresh matters under fork: the child would otherwise inherit the
        # parent's accumulated counts and ship them again as its first delta.
        from ..obs import enable
        from ..obs.trace import SpanRecorder

        enable(MetricsRegistry(), SpanRecorder())


def _context_split(name: str) -> Split:
    cache = _CELL_CONTEXT["splits"]
    if name not in cache:
        cache[name] = _CELL_CONTEXT["source"].split_for(name)
    return cache[name]


def _run_cell_chunk(tasks: Sequence["CellTask"]) -> list["CellResult"]:
    from . import cells

    return [
        cells.execute_cell(
            task,
            _context_split(task.dataset),
            _CELL_CONTEXT["scale"],
            engine=_CELL_CONTEXT["engine"],
            engine_cache_size=_CELL_CONTEXT["engine_cache_size"],
        )
        for task in tasks
    ]


def _run_cell_chunk_observed(
    tasks: Sequence["CellTask"],
) -> tuple[list["CellResult"], dict, list]:
    """Run a chunk and ship the worker's telemetry deltas with the results.

    The worker registry snapshot is taken with ``reset=True`` so consecutive
    chunks produce *deltas*: deltas from any partition of the cells, merged
    in any order, equal the serial run's registry (counters exactly).
    """
    results = _run_cell_chunk(tasks)
    snapshot = OBS.metrics.snapshot(reset=True)
    spans = OBS.recorder.drain()
    return results, snapshot, spans


def _cell_spec(
    plan: "GridPlan",
    cell: "CellTask",
    source: SplitSource | LoaderSource,
    *,
    engine: bool,
    engine_cache_size: int,
) -> dict:
    """The content-hashed identity of one cell's computation."""
    return {
        "version": 1,
        "dataset": cell.dataset,
        "model": cell.model,
        "run_index": cell.run_index,
        "seed": cell.seed,
        "root_seed": plan.seed,
        "test_fraction": plan.test_fraction,
        "split_seed": plan.split_seed,
        "scale": asdict(plan.scale),
        "data": source.fingerprint(cell.dataset),
        "engine": bool(engine),
        "engine_cache_size": int(engine_cache_size),
    }


class ParallelExecutor:
    """Executes a :class:`GridPlan` on a process pool, checkpointing cells.

    ``max_workers`` <= 1 is the serial fallback: the same cell code runs
    in-process, still checkpointing into the store after every cell so even
    serial runs are resumable.  ``chunk_size`` controls how many cells each
    pool task carries (default: enough chunks for ~4 waves per worker, which
    amortises IPC without starving the pool on straggler cells).
    """

    def __init__(
        self,
        max_workers: int | str | None = None,
        *,
        chunk_size: int | None = None,
    ):
        self.max_workers = resolve_max_workers(max_workers)
        self.chunk_size = chunk_size

    def run(
        self,
        plan: "GridPlan",
        source: SplitSource | LoaderSource,
        *,
        store: "ArtifactStore | None" = None,
        engine: bool = True,
        engine_cache_size: int = 8,
    ) -> tuple[list["CellResult"], RunReport]:
        """Execute every cell of ``plan``, returning results in plan order."""
        start = time.perf_counter()
        # Specs exist only to key the artifact store; without one, skip the
        # content hashing entirely (it is O(dataset bytes) per dataset).
        specs: dict["CellTask", dict] = {}
        if store is not None:
            specs = {
                cell: _cell_spec(
                    plan,
                    cell,
                    source,
                    engine=engine,
                    engine_cache_size=engine_cache_size,
                )
                for cell in plan.cells
            }

        results: dict["CellTask", "CellResult"] = {}
        pending: list["CellTask"] = []
        for cell in plan.cells:
            replayed = store.load(specs[cell]) if store is not None else None
            if replayed is not None:
                results[cell] = replayed
            else:
                pending.append(cell)

        obs_on = OBS.enabled
        run_registry = MetricsRegistry() if obs_on else None

        if self.max_workers <= 1 or len(pending) <= 1:
            _init_cell_worker(source, plan.scale, engine, engine_cache_size)
            try:
                # The serial path mirrors what workers do naturally: cells
                # record into a run-local registry whose snapshot becomes the
                # report's `metrics` (and merges into the parent afterwards).
                with scoped_registry(run_registry) if obs_on else nullcontext():
                    for cell in pending:
                        result = _run_cell_chunk([cell])[0]
                        if store is not None:
                            store.save(specs[cell], result)
                        results[cell] = result
            finally:
                global _CELL_CONTEXT
                _CELL_CONTEXT = None
        else:
            chunk_size = self.chunk_size
            if chunk_size is None:
                chunk_size = max(1, len(pending) // (self.max_workers * 4))
            chunks = [
                pending[index : index + chunk_size]
                for index in range(0, len(pending), chunk_size)
            ]
            by_coordinates = {
                (cell.dataset, cell.model, cell.run_index): cell for cell in pending
            }
            with ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_cell_worker,
                initargs=(source, plan.scale, engine, engine_cache_size, obs_on),
            ) as pool:
                runner = _run_cell_chunk_observed if obs_on else _run_cell_chunk
                futures = [pool.submit(runner, chunk) for chunk in chunks]
                for future in as_completed(futures):
                    payload = future.result()
                    if obs_on:
                        chunk_results, snapshot, spans = payload
                        run_registry.merge(snapshot)
                        OBS.recorder.extend(spans)
                    else:
                        chunk_results = payload
                    # Checkpoint as chunks land so an interrupt loses at most
                    # the in-flight chunks, never completed ones.
                    for result in chunk_results:
                        cell = by_coordinates[
                            (result.dataset, result.model, result.run_index)
                        ]
                        if store is not None:
                            store.save(specs[cell], result)
                        results[cell] = result

        elapsed = time.perf_counter() - start
        metrics_snapshot = None
        if obs_on:
            metrics_snapshot = run_registry.snapshot()
            # Fold the run's telemetry into the process-wide registry so the
            # suite run shows up on the parent's /metrics like everything else.
            OBS.metrics.merge(metrics_snapshot)
        ordered = [results[cell] for cell in plan.cells]
        report = RunReport.from_results(
            ordered,
            total_seconds=elapsed,
            max_workers=self.max_workers,
            metrics=metrics_snapshot,
        )
        return ordered, report
