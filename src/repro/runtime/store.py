"""Content-hashed on-disk artifact store for completed grid cells.

Each completed :class:`~repro.runtime.cells.CellResult` is checkpointed as a
pair of files named by the SHA-256 of the cell's *specification* (dataset
fingerprint, model, run index, seed, scale, split configuration):

* ``<key>.npz`` — the numeric payload (float64/int64 scalars, bit-exact);
* ``<key>.json`` — a manifest holding the full spec, the identity fields and
  the SHA-256 of the npz bytes.

Interrupted suites resume by asking the store for each cell before computing
it; repeated runs with identical specs are pure cache hits.  ``load``
verifies both the payload hash (corruption) and the stored spec (key
collision or stale layout) and returns ``None`` on any mismatch, so a
damaged store degrades to recomputation, never to wrong results.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from .cells import CellResult

__all__ = ["ArtifactStore", "canonical_spec", "spec_key"]

#: Bump when the artifact layout changes; old artifacts then miss cleanly.
STORE_VERSION = 1

#: CellResult float fields persisted in the npz payload (None allowed).
_FLOAT_FIELDS = (
    "accuracy",
    "train_seconds",
    "inference_seconds_per_query",
    "engine_seconds_per_query",
    "engine_warm_seconds_per_query",
    "wall_seconds",
)
_INT_FIELDS = ("run_index", "seed", "cache_hits", "cache_requests", "worker")


def canonical_spec(spec: Mapping[str, object]) -> str:
    """Canonical JSON encoding of a cell spec (sorted keys, no whitespace)."""
    return json.dumps(spec, sort_keys=True, separators=(",", ":"), default=_jsonify)


def _jsonify(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"cell spec value {value!r} is not JSON-serializable")


def spec_key(spec: Mapping[str, object]) -> str:
    """Content hash of a cell spec: the artifact's file-name key."""
    return hashlib.sha256(canonical_spec(spec).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Directory of content-hashed cell artifacts (npz + json manifest)."""

    def __init__(self, root: str | os.PathLike[str]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- paths
    def _npz_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _manifest_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------- contents
    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def __contains__(self, key: str) -> bool:
        return self._manifest_path(key).exists() and self._npz_path(key).exists()

    def clear(self) -> int:
        """Delete every artifact; returns the number of cells removed."""
        removed = 0
        for key in list(self.keys()):
            self._manifest_path(key).unlink(missing_ok=True)
            self._npz_path(key).unlink(missing_ok=True)
            removed += 1
        return removed

    # ----------------------------------------------------------------- save
    def save(self, spec: Mapping[str, object], result: CellResult) -> str:
        """Checkpoint one completed cell under its spec's content hash."""
        key = spec_key(spec)
        arrays: dict[str, np.ndarray] = {}
        for field in _FLOAT_FIELDS:
            value = getattr(result, field)
            if value is not None:
                arrays[field] = np.float64(value)
        for field in _INT_FIELDS:
            arrays[field] = np.int64(getattr(result, field))

        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload = buffer.getvalue()
        manifest = {
            "store_version": STORE_VERSION,
            "spec": dict(spec),
            "dataset": result.dataset,
            "model": result.model,
            "run_index": result.run_index,
            "content_hash": hashlib.sha256(payload).hexdigest(),
        }
        # Write npz first, manifest last and atomically: a manifest is the
        # commit record, so a crash mid-save leaves a miss, not a torn hit.
        self._npz_path(key).write_bytes(payload)
        temp = self._manifest_path(key).with_suffix(".json.tmp")
        temp.write_text(canonical_spec(manifest))
        os.replace(temp, self._manifest_path(key))
        return key

    # ----------------------------------------------------------------- load
    def load(self, spec: Mapping[str, object]) -> CellResult | None:
        """Replay the cell checkpointed for ``spec``, or ``None`` on a miss.

        Verifies the npz content hash against the manifest and the manifest's
        stored spec against the requested one, so corrupted files and hash
        collisions both read as misses.
        """
        key = spec_key(spec)
        manifest_path = self._manifest_path(key)
        npz_path = self._npz_path(key)
        if not manifest_path.exists() or not npz_path.exists():
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("store_version") != STORE_VERSION:
            return None
        if canonical_spec(manifest.get("spec", {})) != canonical_spec(spec):
            return None  # same key, different spec: treat a collision as a miss
        payload = npz_path.read_bytes()
        if hashlib.sha256(payload).hexdigest() != manifest.get("content_hash"):
            return None
        with np.load(io.BytesIO(payload)) as data:
            values = {name: data[name][()] for name in data.files}
        floats = {
            field: (float(values[field]) if field in values else None)
            for field in _FLOAT_FIELDS
        }
        return CellResult(
            dataset=str(manifest["dataset"]),
            model=str(manifest["model"]),
            run_index=int(values["run_index"]),
            seed=int(values["seed"]),
            accuracy=floats["accuracy"],
            train_seconds=floats["train_seconds"],
            inference_seconds_per_query=floats["inference_seconds_per_query"],
            engine_seconds_per_query=floats["engine_seconds_per_query"],
            engine_warm_seconds_per_query=floats["engine_warm_seconds_per_query"],
            cache_hits=int(values["cache_hits"]),
            cache_requests=int(values["cache_requests"]),
            wall_seconds=floats["wall_seconds"],
            worker=int(values["worker"]),
            cached=True,
        )
