"""Grid planning: expanding a suite into independent, seedable cell tasks.

A :class:`GridPlan` is the static description of everything a suite run will
compute: the (dataset × model × run) grid, the per-cell seeds, and the split
configuration.  Because every :class:`CellTask` carries its own seed derived
from its coordinates (see :mod:`repro.runtime.seeding`), the cells are fully
independent and can execute in any order on any number of workers without
changing a single result bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from .seeding import cell_seed

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..experiments.config import ExperimentScale

__all__ = ["CellTask", "GridPlan"]


@dataclass(frozen=True)
class CellTask:
    """One unit of suite work: train/evaluate one model run on one dataset."""

    dataset: str
    model: str
    run_index: int
    seed: int
    dataset_index: int
    model_index: int

    @property
    def label(self) -> str:
        return f"{self.dataset}/{self.model}#{self.run_index}"


@dataclass(frozen=True)
class GridPlan:
    """The full (dataset × model × run) grid of a suite, with derived seeds.

    ``seed`` is the root seed of the deterministic derivation; ``None``
    selects the legacy per-run seeds of the original serial runner, so
    default suite results stay byte-identical to the pre-runtime code.
    """

    dataset_names: tuple[str, ...]
    model_names: tuple[str, ...]
    n_runs: int
    scale: "ExperimentScale"
    seed: int | None = None
    test_fraction: float = 0.3
    split_seed: int = 7
    cells: tuple[CellTask, ...] = field(default=())

    @classmethod
    def for_suite(
        cls,
        dataset_names: Sequence[str],
        model_names: Sequence[str],
        n_runs: int,
        *,
        scale: "ExperimentScale | None" = None,
        seed: int | None = None,
        test_fraction: float = 0.3,
        split_seed: int = 7,
    ) -> "GridPlan":
        """Expand a suite specification into its grid of cell tasks."""
        if n_runs < 1:
            raise ValueError(f"n_runs must be >= 1, got {n_runs}")
        if not dataset_names:
            raise ValueError("dataset_names must not be empty")
        if not model_names:
            raise ValueError("model_names must not be empty")
        if scale is None:
            from ..experiments.config import get_scale

            scale = get_scale()
        cells = tuple(
            CellTask(
                dataset=dataset,
                model=model,
                run_index=run,
                seed=cell_seed(seed, dataset, model, run),
                dataset_index=dataset_index,
                model_index=model_index,
            )
            for dataset_index, dataset in enumerate(dataset_names)
            for model_index, model in enumerate(model_names)
            for run in range(n_runs)
        )
        return cls(
            dataset_names=tuple(dataset_names),
            model_names=tuple(model_names),
            n_runs=n_runs,
            scale=scale,
            seed=seed,
            test_fraction=test_fraction,
            split_seed=split_seed,
            cells=cells,
        )

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellTask]:
        return iter(self.cells)

    def cells_for(self, dataset: str, model: str) -> tuple[CellTask, ...]:
        """The run cells of one (dataset, model) pair, in run order."""
        return tuple(
            cell
            for cell in self.cells
            if cell.dataset == dataset and cell.model == model
        )

    def subset(self, predicate: Callable[[CellTask], bool]) -> "GridPlan":
        """A plan containing only the cells satisfying ``predicate``.

        Seeds are preserved, so executing a subset then resuming the full
        plan from the same artifact store yields exactly the full-plan
        results.
        """
        return replace(self, cells=tuple(c for c in self.cells if predicate(c)))

    def head(self, n_cells: int) -> "GridPlan":
        """A plan containing only the first ``n_cells`` cells (resume tests)."""
        return replace(self, cells=self.cells[: max(0, int(n_cells))])
