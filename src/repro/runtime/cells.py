"""Cell executors: the functions a worker process runs for one grid cell.

Everything here is a *top-level* function operating on plain picklable
payloads, so the same code path runs unchanged in the serial fallback and in
:class:`~repro.runtime.executor.ParallelExecutor` worker processes.  Heavy
package imports happen inside the functions: workers pay them once, and the
module itself stays import-cycle-free (``repro.runtime`` must not pull in
``repro.experiments`` at import time, because the experiments package imports
the runtime).

Shared, read-only inputs (train/test splits, dataset objects) travel through
the executor's *shared payload* (see
:func:`~repro.runtime.executor.parallel_map`), not through each item, so they
are shipped to every worker exactly once.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..obs import OBS
from .executor import get_shared

if TYPE_CHECKING:  # runtime imports are lazy to avoid a package cycle
    from ..baselines.base import BaseClassifier
    from .plan import CellTask

__all__ = ["CellResult", "RunSample", "single_run", "execute_cell"]

Split = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


@dataclass(frozen=True)
class RunSample:
    """Raw measurements of one train/evaluate pass of one model instance."""

    accuracy: float
    train_seconds: float
    inference_seconds_per_query: float
    engine_seconds_per_query: float | None = None
    engine_warm_seconds_per_query: float | None = None
    cache_hits: int = 0
    cache_requests: int = 0


@dataclass(frozen=True)
class CellResult:
    """Completed grid cell: one model run on one dataset, fully measured.

    ``wall_seconds`` is the cell's total wall time (training + evaluation +
    optional engine passes); ``worker`` records the executing process id so
    :class:`~repro.runtime.report.RunReport` can attribute work to workers.
    ``cached`` is True when the result was replayed from an
    :class:`~repro.runtime.store.ArtifactStore` instead of recomputed.
    """

    dataset: str
    model: str
    run_index: int
    seed: int
    accuracy: float
    train_seconds: float
    inference_seconds_per_query: float
    engine_seconds_per_query: float | None = None
    engine_warm_seconds_per_query: float | None = None
    cache_hits: int = 0
    cache_requests: int = 0
    wall_seconds: float = 0.0
    worker: int = 0
    cached: bool = False


def single_run(
    model: "BaseClassifier",
    split: Split,
    *,
    metric=None,
    engine: bool = True,
    engine_cache_size: int = 8,
) -> RunSample:
    """Fit and evaluate one model instance, timing every phase.

    This is the measurement core shared by the legacy serial
    :func:`repro.experiments.runner.run_model` and the parallel cell path,
    so both report identical quantities.  With ``engine=True`` a model
    exposing ``compile()`` is additionally compiled into the fused batch
    engine and timed cold and (when an encoding cache is configured) warm.
    """
    if metric is None:
        from ..baselines.metrics import accuracy as metric

    X_train, X_test, y_train, y_test = split
    start = time.perf_counter()
    model.fit(X_train, y_train)
    train_seconds = time.perf_counter() - start

    start = time.perf_counter()
    predictions = model.predict(X_test)
    elapsed = time.perf_counter() - start
    inference = elapsed / max(len(X_test), 1)
    score = float(metric(y_test, predictions))

    engine_seconds = warm_seconds = None
    cache_hits = cache_requests = 0
    if engine and hasattr(model, "compile"):
        from ..engine import EngineError

        try:
            compiled = model.compile(cache_size=engine_cache_size)
        except EngineError:
            compiled = None
        if compiled is not None:
            start = time.perf_counter()
            compiled.predict(X_test)
            engine_seconds = (time.perf_counter() - start) / max(len(X_test), 1)
            if compiled.cache is not None:
                # Hit ratio of the warm pass alone: the cold pass above is
                # all misses by construction and would dilute the ratio.
                cold_hits = compiled.cache.stats.hits
                cold_requests = compiled.cache.stats.requests
                start = time.perf_counter()
                compiled.predict(X_test)
                warm_seconds = (time.perf_counter() - start) / max(len(X_test), 1)
                cache_hits = compiled.cache.stats.hits - cold_hits
                cache_requests = compiled.cache.stats.requests - cold_requests
    return RunSample(
        accuracy=score,
        train_seconds=train_seconds,
        inference_seconds_per_query=inference,
        engine_seconds_per_query=engine_seconds,
        engine_warm_seconds_per_query=warm_seconds,
        cache_hits=cache_hits,
        cache_requests=cache_requests,
    )


def execute_cell(
    task: "CellTask",
    split: Split,
    scale,
    *,
    engine: bool = True,
    engine_cache_size: int = 8,
) -> CellResult:
    """Run one grid cell: build the registry model with the cell's seed."""
    from ..experiments.registry import build_model

    start = time.perf_counter()
    with OBS.recorder.span(
        "runtime.cell", dataset=task.dataset, model=task.model, run=task.run_index
    ):
        model = build_model(task.model, task.seed, scale)
        sample = single_run(
            model, split, engine=engine, engine_cache_size=engine_cache_size
        )
    result = CellResult(
        dataset=task.dataset,
        model=task.model,
        run_index=task.run_index,
        seed=task.seed,
        accuracy=sample.accuracy,
        train_seconds=sample.train_seconds,
        inference_seconds_per_query=sample.inference_seconds_per_query,
        engine_seconds_per_query=sample.engine_seconds_per_query,
        engine_warm_seconds_per_query=sample.engine_warm_seconds_per_query,
        cache_hits=sample.cache_hits,
        cache_requests=sample.cache_requests,
        wall_seconds=time.perf_counter() - start,
        worker=os.getpid(),
    )
    if OBS.enabled:
        OBS.metrics.counter(
            "repro_runtime_cells_total",
            "Grid cells computed by the runtime.",
            model=task.model,
        ).inc()
        OBS.metrics.histogram(
            "repro_runtime_cell_seconds", "Wall time per computed grid cell."
        ).observe(result.wall_seconds)
    return result


# --------------------------------------------------------------------------
# Figure/table cells: parallel_map item functions for the experiment
# generators.  Each reads the heavy arrays from the shared payload and keeps
# the exact seed formulas of the original serial loops, so parallel output is
# bit-identical to serial output.
# --------------------------------------------------------------------------


def heatmap_cell(item: tuple[int, int, int, int, int, int]) -> float:
    """One Figure 3 cell: BoostHD accuracy at (n_learners, total_dim).

    ``item`` is ``(row, column, n_learners, total_dim, epochs, seed)`` with
    ``seed`` already offset by the figure's ``seed + row*100 + column``
    formula; the shared payload is the dataset split.
    """
    _row, _column, n_learners, total_dim, epochs, seed = item
    from ..core.boosthd import BoostHD

    X_train, X_test, y_train, y_test = get_shared()
    if total_dim < n_learners:
        return float("nan")
    model = BoostHD(
        total_dim=int(total_dim),
        n_learners=int(n_learners),
        epochs=int(epochs),
        seed=int(seed),
    )
    model.fit(X_train, y_train)
    return float(model.score(X_test, y_test))


def stability_cell(item: tuple[str, int, int, int, int]) -> float:
    """One Figure 6 cell: model accuracy at one (dimension, run) point.

    ``item`` is ``(kind, dim, run, n_learners, epochs)``; ``run`` doubles as
    the seed exactly as in the serial sweep.
    """
    kind, dim, run, n_learners, epochs = item
    from ..core.boosthd import BoostHD
    from ..hdc.onlinehd import OnlineHD

    X_train, X_test, y_train, y_test = get_shared()
    if kind == "OnlineHD":
        model = OnlineHD(dim=int(dim), epochs=int(epochs), seed=int(run))
    else:
        model = BoostHD(
            total_dim=int(dim),
            n_learners=min(int(n_learners), int(dim)),
            epochs=int(epochs),
            seed=int(run),
        )
    model.fit(X_train, y_train)
    from ..baselines.metrics import accuracy

    return float(accuracy(y_test, model.predict(X_test)))


def imbalance_cell(item: tuple[str, int, int, float, int, int, int, int]) -> float:
    """One Figure 7 cell: macro accuracy at one (model, D_total, r) point.

    ``item`` is ``(kind, total_dim, index, fraction, target_class,
    n_learners, epochs, seed)`` where ``index`` is the keep-fraction position
    (the serial loop seeds with ``seed + index``).
    """
    kind, total_dim, index, fraction, target_class, n_learners, epochs, seed = item
    from ..baselines.metrics import macro_accuracy
    from ..core.boosthd import BoostHD
    from ..data.imbalance import make_imbalanced
    from ..hdc.onlinehd import OnlineHD

    X_train, X_test, y_train, y_test = get_shared()
    X_imbalanced, y_imbalanced = make_imbalanced(
        X_train, y_train, int(target_class), float(fraction), rng=int(seed) + int(index)
    )
    if kind == "OnlineHD":
        model = OnlineHD(dim=int(total_dim), epochs=int(epochs), seed=int(seed) + int(index))
    else:
        model = BoostHD(
            total_dim=int(total_dim),
            n_learners=int(n_learners),
            epochs=int(epochs),
            seed=int(seed) + int(index),
        )
    model.fit(X_imbalanced, y_imbalanced)
    return float(macro_accuracy(y_test, model.predict(X_test)))


def bitflip_cell(item: str):
    """One Figure 8 cell: the full bit-flip sweep of one registry model.

    The shared payload is ``(split, probabilities, n_trials, mode, seed,
    scale)``; the sweep's own RNG is seeded identically to the serial loop.
    """
    model_name = item
    from ..analysis.robustness import bitflip_sweep
    from ..experiments.registry import build_model

    (X_train, X_test, y_train, y_test), probabilities, n_trials, mode, seed, scale = (
        get_shared()
    )
    model = build_model(model_name, seed, scale)
    model.fit(X_train, y_train)
    return bitflip_sweep(
        model,
        X_test,
        y_test,
        probabilities,
        n_trials=n_trials,
        mode=mode,
        model_name=model_name,
        rng=seed,
    )


def table3_cell(item: str) -> tuple[str, dict[str, float]]:
    """One Table III row: per-group accuracies of one registry model.

    The shared payload is ``(dataset, test_fraction, seed, scale)``; groups
    are the module-level :data:`~repro.analysis.fairness.PAPER_GROUPS` (their
    predicates are lambdas, which cannot be pickled into workers).
    """
    model_name = item
    from ..analysis.fairness import group_accuracy_table
    from ..experiments.registry import build_model

    dataset, test_fraction, seed, scale = get_shared()
    table = group_accuracy_table(
        {model_name: lambda group_seed: build_model(model_name, group_seed, scale)},
        dataset,
        test_fraction=test_fraction,
        seed=seed,
    )
    return model_name, table[model_name]
