"""Run reporting: per-cell wall time and worker-utilization statistics.

Every executed grid produces a :class:`RunReport` so suite-scale runs can be
profiled without rerunning them: which cells dominated wall time, how much of
the worker pool was actually busy, and how many cells were replayed from the
artifact store instead of recomputed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..obs.metrics import merge_snapshots

if TYPE_CHECKING:
    from .cells import CellResult

__all__ = ["CellStats", "RunReport"]


@dataclass(frozen=True)
class CellStats:
    """Execution record of one grid cell."""

    dataset: str
    model: str
    run_index: int
    wall_seconds: float
    worker: int
    cached: bool

    @property
    def label(self) -> str:
        return f"{self.dataset}/{self.model}#{self.run_index}"


@dataclass(frozen=True)
class RunReport:
    """Wall-clock and utilization summary of one executed grid.

    ``metrics`` optionally carries the run's merged telemetry — the
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot` folded from every
    worker registry (or the serial run's scoped registry) — so suite-scale
    runs persist their counters and latency histograms next to the artifact
    store via :meth:`to_json`.
    """

    total_seconds: float
    max_workers: int
    cells: tuple[CellStats, ...]
    metrics: dict | None = field(default=None)

    @classmethod
    def from_results(
        cls,
        results: Iterable["CellResult"],
        *,
        total_seconds: float,
        max_workers: int,
        metrics: dict | None = None,
    ) -> "RunReport":
        cells = tuple(
            CellStats(
                dataset=result.dataset,
                model=result.model,
                run_index=result.run_index,
                wall_seconds=result.wall_seconds,
                worker=result.worker,
                cached=result.cached,
            )
            for result in results
        )
        return cls(
            total_seconds=float(total_seconds),
            max_workers=max(1, int(max_workers)),
            cells=cells,
            metrics=metrics,
        )

    # ---------------------------------------------------------- serialization
    def to_json(self, *, indent: int | None = 2) -> str:
        """The report as a JSON document (inverse: :meth:`from_json`).

        Every field — including the ``metrics`` snapshot, which is
        JSON-native by construction — round-trips exactly:
        ``RunReport.from_json(report.to_json()) == report``.
        """
        payload = {
            "total_seconds": self.total_seconds,
            "max_workers": self.max_workers,
            "cells": [asdict(cell) for cell in self.cells],
            "metrics": self.metrics,
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Rebuild a report serialized by :meth:`to_json`."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("RunReport JSON must decode to an object")
        cells = tuple(
            CellStats(
                dataset=str(cell["dataset"]),
                model=str(cell["model"]),
                run_index=int(cell["run_index"]),
                wall_seconds=float(cell["wall_seconds"]),
                worker=int(cell["worker"]),
                cached=bool(cell["cached"]),
            )
            for cell in payload.get("cells", [])
        )
        return cls(
            total_seconds=float(payload["total_seconds"]),
            max_workers=int(payload["max_workers"]),
            cells=cells,
            metrics=payload.get("metrics"),
        )

    # ------------------------------------------------------------- statistics
    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_cached(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def n_computed(self) -> int:
        return self.n_cells - self.n_cached

    @property
    def busy_seconds(self) -> float:
        """Total wall time spent inside freshly computed cells."""
        return float(sum(cell.wall_seconds for cell in self.cells if not cell.cached))

    @property
    def utilization(self) -> float:
        """Busy worker-seconds divided by available worker-seconds (0..1+).

        Values near 1 mean the pool was saturated; values well below 1 mean
        workers sat idle (stragglers, too-coarse chunks, or store replays).
        Serial runs report their compute density (busy / elapsed).
        """
        available = self.total_seconds * self.max_workers
        if available <= 0:
            return 0.0
        return self.busy_seconds / available

    @property
    def n_workers_used(self) -> int:
        return len({cell.worker for cell in self.cells if not cell.cached})

    def slowest(self, n: int = 5) -> tuple[CellStats, ...]:
        """The ``n`` computed cells with the largest wall time."""
        computed = [cell for cell in self.cells if not cell.cached]
        computed.sort(key=lambda cell: cell.wall_seconds, reverse=True)
        return tuple(computed[: max(0, int(n))])

    def per_worker_seconds(self) -> dict[int, float]:
        """Busy seconds attributed to each worker process id."""
        totals: dict[int, float] = {}
        for cell in self.cells:
            if cell.cached:
                continue
            totals[cell.worker] = totals.get(cell.worker, 0.0) + cell.wall_seconds
        return totals

    # -------------------------------------------------------------- rendering
    def summary(self, *, slowest: int = 3) -> str:
        """Human-readable multi-line summary of the run."""
        lines = [
            (
                f"runtime: {self.n_cells} cells "
                f"({self.n_computed} computed, {self.n_cached} cached) "
                f"in {self.total_seconds:.2f}s on {self.max_workers} worker(s)"
            ),
            (
                f"  busy {self.busy_seconds:.2f}s, "
                f"utilization {self.utilization:.0%}, "
                f"{self.n_workers_used} worker(s) used"
            ),
        ]
        for cell in self.slowest(slowest):
            lines.append(f"  slowest: {cell.label} {cell.wall_seconds:.3f}s")
        return "\n".join(lines)


def merge_reports(reports: Sequence[RunReport]) -> RunReport:
    """Combine sequential reports (e.g. an interrupted run plus its resume).

    Telemetry snapshots fold with :func:`repro.obs.metrics.merge_snapshots`
    (associative and commutative), so merged reports aggregate counters and
    histograms exactly; reports without metrics contribute nothing.
    """
    if not reports:
        return RunReport(total_seconds=0.0, max_workers=1, cells=())
    snapshots = [report.metrics for report in reports if report.metrics is not None]
    return RunReport(
        total_seconds=float(sum(report.total_seconds for report in reports)),
        max_workers=max(report.max_workers for report in reports),
        cells=tuple(cell for report in reports for cell in report.cells),
        metrics=merge_snapshots(snapshots) if snapshots else None,
    )


__all__.append("merge_reports")
