"""Minimal, hardened HTTP/1.1 + WebSocket wire protocol (stdlib only).

The gateway deliberately avoids a framework dependency: tier-1 must stay
hermetic (numpy + stdlib), and the subset of HTTP the serving edge needs is
small — request line, headers, ``Content-Length`` bodies, keep-alive, and
the RFC 6455 WebSocket upgrade + frame layer.  Everything here is split
into *pure* byte-level functions (:func:`parse_request_head`,
:func:`parse_frame`, :func:`encode_frame`, :func:`response_bytes`) plus
thin asyncio stream adapters (:func:`read_request`, :func:`read_frame`), so
the parsing logic is property-testable without sockets: malformed input
must raise :class:`ProtocolError` — never any other exception, and never
crash the server (``tests/test_gateway.py`` fuzzes this with hypothesis).

Hard bounds everywhere: header block size, body size and frame payload
size are capped by the caller, so a hostile client cannot balloon memory —
over-bound input is a :class:`ProtocolError` (HTTP 431/413 or WebSocket
close 1009 at the call site), not an allocation.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "CLOSE",
    "BINARY",
    "CONTINUATION",
    "Frame",
    "PING",
    "PONG",
    "ProtocolError",
    "Request",
    "TEXT",
    "STATUS_PHRASES",
    "encode_frame",
    "json_response",
    "parse_frame",
    "parse_request_head",
    "read_frame",
    "read_request",
    "response_bytes",
    "websocket_accept",
]


class ProtocolError(ValueError):
    """Malformed or over-bound wire input; the connection must be refused.

    ``status`` is the HTTP status an HTTP-level handler should answer with
    (WebSocket-level call sites translate into a close code instead).
    """

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


#: Response phrases for the statuses the gateway emits.
STATUS_PHRASES = {
    101: "Switching Protocols",
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_TOKEN = frozenset(
    "!#$%&'*+-.^_`|~0123456789abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
)

#: RFC 6455 magic GUID for the Sec-WebSocket-Accept digest.
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes.
CONTINUATION = 0x0
TEXT = 0x1
BINARY = 0x2
CLOSE = 0x8
PING = 0x9
PONG = 0xA
_CONTROL_OPCODES = frozenset((CLOSE, PING, PONG))
_DATA_OPCODES = frozenset((CONTINUATION, TEXT, BINARY))


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request (head + body)."""

    method: str
    target: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        return self.header("connection", "keep-alive").lower() != "close"

    @property
    def wants_websocket(self) -> bool:
        upgrade = self.header("upgrade", "")
        connection = self.header("connection", "")
        return (
            upgrade.lower() == "websocket"
            and "upgrade" in connection.lower()
        )

    def json(self):
        """Parse the body as a JSON document (:class:`ProtocolError` on junk)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"invalid JSON body: {error}") from None


def parse_request_head(head: bytes) -> tuple[str, str, dict]:
    """Parse a request head (everything before the blank line) — pure.

    Returns ``(method, target, headers)`` with header names lower-cased;
    duplicate headers are comma-joined per RFC 9110.  Any structural
    violation — bad request line, non-token method, malformed header,
    embedded NUL/CR — raises :class:`ProtocolError`.
    """
    try:
        text = head.decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError("request head is not ASCII") from None
    if "\x00" in text:
        raise ProtocolError("NUL byte in request head")
    lines = text.split("\r\n")
    if not lines or not lines[0]:
        raise ProtocolError("empty request line")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if not method or not all(ch in _TOKEN for ch in method):
        raise ProtocolError(f"malformed method: {method!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported HTTP version: {version!r}")
    if not target or " " in target:
        raise ProtocolError(f"malformed request target: {target!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip() or not all(
            ch in _TOKEN for ch in name
        ):
            raise ProtocolError(f"malformed header line: {line!r}")
        key = name.lower()
        value = value.strip()
        if key in headers:
            headers[key] = f"{headers[key]},{value}"
        else:
            headers[key] = value
    return method.upper(), target, headers


def _split_target(target: str) -> tuple[str, dict]:
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return path, query


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = 16_384,
    max_body_bytes: int = 8_388_608,
) -> Request | None:
    """Read one request off the stream; ``None`` on clean EOF between requests.

    The head is read with a hard byte bound (431 on overflow) and the body
    strictly by ``Content-Length`` (413 over ``max_body_bytes``; chunked
    transfer encoding is refused with 501 — the gateway's clients never
    need it).  A connection torn mid-request raises
    :class:`asyncio.IncompleteReadError` for the caller to treat as a
    disconnect, not a protocol error.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF: the client finished its keep-alive run
        raise
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large", status=431) from None
    if len(head) > max_header_bytes:
        raise ProtocolError("request head too large", status=431)
    method, target, headers = parse_request_head(head[:-4])
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked transfer encoding unsupported", status=501)
    body = b""
    length_text = headers.get("content-length", "")
    if length_text:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(
                f"malformed Content-Length: {length_text!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"negative Content-Length: {length}")
        if length > max_body_bytes:
            raise ProtocolError("request body too large", status=413)
        body = await reader.readexactly(length)
    path, query = _split_target(target)
    return Request(
        method=method,
        target=target,
        path=path,
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: dict | None = None,
    close: bool = False,
) -> bytes:
    """Serialize one HTTP/1.1 response (always with ``Content-Length``)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {phrase}"]
    if body:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'close' if close else 'keep-alive'}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


def json_response(
    status: int,
    payload,
    *,
    headers: dict | None = None,
    close: bool = False,
) -> bytes:
    """A JSON response body (``allow_nan=False``: NaN must never hit the wire)."""
    body = json.dumps(payload, allow_nan=False).encode("utf-8")
    return response_bytes(status, body, headers=headers, close=close)


# --------------------------------------------------------------- websockets
def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` digest for a handshake key (RFC 6455)."""
    digest = hashlib.sha1(key.strip().encode("ascii") + _WS_GUID).digest()
    return base64.b64encode(digest).decode("ascii")


@dataclass(frozen=True)
class Frame:
    """One parsed WebSocket frame (payload already unmasked)."""

    opcode: int
    payload: bytes
    fin: bool = True

    @property
    def is_control(self) -> bool:
        return self.opcode in _CONTROL_OPCODES


def encode_frame(
    opcode: int,
    payload: bytes = b"",
    *,
    fin: bool = True,
    mask: bytes | None = None,
) -> bytes:
    """Serialize one frame; ``mask`` (4 bytes) is required for client frames."""
    if opcode not in _CONTROL_OPCODES and opcode not in _DATA_OPCODES:
        raise ProtocolError(f"unknown opcode: {opcode}")
    if opcode in _CONTROL_OPCODES and (len(payload) > 125 or not fin):
        raise ProtocolError("control frames must be final with payload <= 125")
    head = bytearray([(0x80 if fin else 0x00) | opcode])
    mask_bit = 0x80 if mask is not None else 0x00
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 65_536:
        head.append(mask_bit | 126)
        head += length.to_bytes(2, "big")
    else:
        head.append(mask_bit | 127)
        head += length.to_bytes(8, "big")
    if mask is None:
        return bytes(head) + payload
    if len(mask) != 4:
        raise ProtocolError("mask must be exactly 4 bytes")
    head += mask
    return bytes(head) + _apply_mask(payload, mask)


def _apply_mask(payload: bytes, mask: bytes) -> bytes:
    if not payload:
        return b""
    repeated = (mask * (len(payload) // 4 + 1))[: len(payload)]
    return bytes(a ^ b for a, b in zip(payload, repeated))


def parse_frame(
    data: bytes,
    *,
    max_payload: int = 8_388_608,
    require_mask: bool = True,
) -> tuple[Frame, int] | None:
    """Parse one frame off ``data`` — pure and incremental.

    Returns ``(frame, bytes_consumed)``, or ``None`` when ``data`` is a
    valid but incomplete prefix.  Structural violations — reserved bits,
    unknown opcodes, oversize/fragmented control frames, an unmasked client
    frame when ``require_mask``, payloads over ``max_payload`` — raise
    :class:`ProtocolError`; no input may raise anything else.
    """
    if len(data) < 2:
        return None
    first, second = data[0], data[1]
    if first & 0x70:
        raise ProtocolError("reserved frame bits set (no extension negotiated)")
    opcode = first & 0x0F
    if opcode not in _CONTROL_OPCODES and opcode not in _DATA_OPCODES:
        raise ProtocolError(f"unknown opcode: {opcode}")
    fin = bool(first & 0x80)
    masked = bool(second & 0x80)
    if require_mask and not masked:
        raise ProtocolError("client frames must be masked")
    length = second & 0x7F
    offset = 2
    if opcode in _CONTROL_OPCODES and (length > 125 or not fin):
        raise ProtocolError("control frames must be final with payload <= 125")
    if length == 126:
        if len(data) < offset + 2:
            return None
        length = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
    elif length == 127:
        if len(data) < offset + 8:
            return None
        length = int.from_bytes(data[offset : offset + 8], "big")
        offset += 8
        if length >= 2**63:
            raise ProtocolError("frame length high bit set")
    if length > max_payload:
        raise ProtocolError("frame payload too large", status=413)
    mask = b""
    if masked:
        if len(data) < offset + 4:
            return None
        mask = data[offset : offset + 4]
        offset += 4
    if len(data) < offset + length:
        return None
    payload = data[offset : offset + length]
    if masked:
        payload = _apply_mask(payload, mask)
    return Frame(opcode=opcode, payload=payload, fin=fin), offset + length


async def read_frame(
    reader: asyncio.StreamReader,
    buffer: bytearray,
    *,
    max_payload: int = 8_388_608,
    require_mask: bool = True,
) -> Frame | None:
    """Read one complete frame, buffering partial reads in ``buffer``.

    Returns ``None`` on clean EOF at a frame boundary; a connection torn
    mid-frame raises :class:`asyncio.IncompleteReadError`.
    """
    while True:
        parsed = parse_frame(
            bytes(buffer), max_payload=max_payload, require_mask=require_mask
        )
        if parsed is not None:
            frame, consumed = parsed
            del buffer[:consumed]
            return frame
        chunk = await reader.read(65_536)
        if not chunk:
            if buffer:
                raise asyncio.IncompleteReadError(bytes(buffer), None)
            return None
        buffer += chunk
