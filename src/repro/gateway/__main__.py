"""Standalone demo gateway: ``python -m repro.gateway [--port 8731] ...``.

Trains a small BoostHD ensemble on the synthetic WESAD-like dataset,
compiles it, stands up a :class:`~repro.serving.StreamingService` and
serves it through a :class:`~repro.gateway.Gateway` until SIGTERM/SIGINT —
at which point the gateway drains gracefully (stop accepting, flush every
pending window, answer every accepted window) and exits.

Try it::

    python -m repro.gateway --port 8731 &
    curl -s localhost:8731/healthz
    curl -s localhost:8731/readyz
    curl -s -XPOST localhost:8731/v1/sessions -d '{"session_id": "demo"}'
    kill -TERM %1    # graceful drain
"""

from __future__ import annotations

import argparse
import asyncio

import numpy as np

from ..core.boosthd import BoostHD
from ..data import CHANNELS, SignalSimulator, load_wesad
from ..engine import compile_model
from ..serving import StreamingService
from .app import Gateway


def build_service(*, precision: str = "fixed16", seed: int = 0) -> StreamingService:
    """A demo StreamingService over a freshly trained synthetic model."""
    dataset = load_wesad(n_subjects=6, windows_per_state=10, seed=seed)
    model = BoostHD(total_dim=1000, n_learners=8, epochs=8, seed=seed)
    model.fit(dataset.X, dataset.y)
    engine = compile_model(model, precision=precision)
    simulator = SignalSimulator(
        sampling_rate=32, window_seconds=20, noise_level=0.9, class_overlap=0.03, rng=seed
    )
    return StreamingService(
        engine,
        n_channels=len(CHANNELS),
        window_samples=simulator.samples_per_window,
        max_batch=16,
        max_wait=0.010,
        transform=dataset.scaler.transform,
        max_pending=512,
    )


async def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731)
    parser.add_argument("--rate", type=float, default=200.0, help="per-client req/s")
    parser.add_argument("--burst", type=float, default=50.0)
    parser.add_argument("--max-concurrent", type=int, default=256)
    parser.add_argument("--drain-deadline", type=float, default=5.0)
    parser.add_argument("--precision", default="fixed16")
    args = parser.parse_args()

    print("Training the demo model (synthetic WESAD-like)...")
    service = build_service(precision=args.precision)
    gateway = Gateway(
        service,
        host=args.host,
        port=args.port,
        rate=args.rate,
        burst=args.burst,
        max_concurrent=args.max_concurrent,
        drain_deadline=args.drain_deadline,
    )
    await gateway.start()
    print(
        f"Gateway listening on http://{gateway.host}:{gateway.port} "
        f"(rate={args.rate}/s, burst={args.burst}, "
        f"max_concurrent={args.max_concurrent}); SIGTERM drains gracefully."
    )
    await gateway.serve_forever()
    print(f"Drained: {gateway.stats!r}")


if __name__ == "__main__":
    asyncio.run(main())
