"""The hardened async network edge over the serving stack.

``repro.gateway`` turns the in-process serving APIs
(:class:`~repro.serving.StreamingService`, multi-process
:class:`~repro.serving.ServingFabric`) into a network service — one asyncio
event loop speaking HTTP/1.1 and WebSocket to any number of concurrent
clients, built on nothing but the stdlib (tier-1 stays hermetic).

Layout:

* :mod:`repro.gateway.http` — the wire protocol: pure, property-tested
  HTTP and RFC 6455 frame parsing with hard input bounds;
* :mod:`repro.gateway.limits` — admission control: per-client token
  buckets, LRU client maps, the global in-flight bound;
* :mod:`repro.gateway.app` — :class:`Gateway` itself: routing, deadline
  propagation, delivery mailboxes, readiness probes, graceful drain;
* :mod:`repro.gateway.client` — the stdlib client (and its impolite
  chaos-testing modes) used by tests, benches and examples.

House invariants, enforced by ``tests/test_gateway.py`` and
``benchmarks/bench_gateway.py``: overload is refused explicitly (429/503 +
``Retry-After``), never queued; every accepted window is answered exactly
once — scored, explicitly shed, or dead-lettered — including across a
SIGTERM drain; and predictions served through the gateway are bit-identical
to in-process serving.

Run a standalone demo gateway with ``python -m repro.gateway``.
"""

from .app import DEADLINE_HEADER, Gateway, GatewayStats
from .client import GatewayClient, GatewayWebSocket
from .http import (
    Frame,
    ProtocolError,
    Request,
    encode_frame,
    json_response,
    parse_frame,
    parse_request_head,
    response_bytes,
    websocket_accept,
)
from .limits import ConcurrencyLimiter, RateLimiter, TokenBucket

__all__ = [
    "ConcurrencyLimiter",
    "DEADLINE_HEADER",
    "Frame",
    "Gateway",
    "GatewayClient",
    "GatewayStats",
    "GatewayWebSocket",
    "ProtocolError",
    "RateLimiter",
    "Request",
    "TokenBucket",
    "encode_frame",
    "json_response",
    "parse_frame",
    "parse_request_head",
    "response_bytes",
    "websocket_accept",
]
