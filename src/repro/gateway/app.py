"""The hardened asyncio network edge: :class:`Gateway`.

One event loop coalesces any number of concurrent HTTP/1.1 and WebSocket
clients into the in-process :class:`~repro.serving.StreamingService` (or a
multi-process :class:`~repro.serving.ServingFabric`) behind it.  The
gateway's job is *robustness at the edge* — everything the scheduler and
fabric assume about their callers is enforced here:

* **Admission control** — a per-client :class:`~repro.gateway.limits
  .RateLimiter` token bucket plus a global
  :class:`~repro.gateway.limits.ConcurrencyLimiter`.  Overload is refused
  with explicit 429/503 + ``Retry-After``, never queued: queue growth at
  the edge is exactly the silent latency collapse PR 9's shed machinery
  exists to prevent.  Window-level pressure beyond the edge still flows
  through the scheduler's ``max_pending`` bound and comes back as explicit
  ``status="shed"`` predictions.
* **Deadline propagation** — an ``x-repro-deadline-ms`` request header
  becomes a :class:`~repro.resilience.Deadline` threaded through backend
  calls: expired-before-work requests are refused with 504 (no window
  accepted), and a request whose budget runs out *after* its windows were
  accepted gets 504 with ``"accepted": true`` — the windows are still
  scored and answered into the session mailbox, because an accepted window
  is never silently dropped.
* **Brownout** — the service's :class:`~repro.resilience.DegradationLadder`
  keeps scoring under pressure at the packed tier; degraded predictions are
  flagged on the wire and the readiness probe reports ``brownout``.
* **Lifecycle** — liveness (``/healthz``) and readiness (``/readyz``, wired
  to draining state, fabric circuit breakers and ladder state), and a
  SIGTERM-triggered :meth:`Gateway.shutdown`: stop accepting, finish
  in-flight requests, flush every pending window through the backend within
  a drain deadline, deliver the results, then close — zero accepted-window
  loss, enforced by ``benchmarks/bench_gateway.py``.

Delivery model: predictions released by any backend call are routed
*exactly once* into per-session mailboxes (HTTP sessions — drained by the
next ``feed``/``score``/``predictions`` call) or live WebSocket queues
(pushed as ``{"type": "prediction", ...}`` messages).  Predictions for
sessions whose owner is gone land in the orphan mailbox — still accounted
as answered, never lost.  The accounting identity mirrors the scheduler's:
``windows_answered + windows_shed`` on the gateway equals scored + shed in
the backend.

The backend runs on a dedicated single-thread executor: the scheduler stays
single-threaded (its design contract) while the event loop stays free to
multiplex thousands of sockets.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from functools import partial

import numpy as np

from ..obs import OBS, prometheus_text
from ..resilience import CircuitOpenError, Deadline, DeadlineExceeded, OPEN
from ..resilience.chaos import CHAOS, corrupt_bytes
from ..serving import ServingFabric, StreamingService
from .http import (
    BINARY,
    CLOSE,
    PING,
    PONG,
    TEXT,
    ProtocolError,
    Request,
    encode_frame,
    json_response,
    read_frame,
    read_request,
    response_bytes,
    websocket_accept,
)
from .limits import ConcurrencyLimiter, RateLimiter

__all__ = ["DEADLINE_HEADER", "Gateway", "GatewayStats"]

#: Request header carrying the client's end-to-end deadline, milliseconds.
DEADLINE_HEADER = "x-repro-deadline-ms"
#: Request header carrying an explicit client identity for rate limiting.
CLIENT_HEADER = "x-repro-client"


class GatewayStats:
    """Plain-integer edge accounting (obs counters ride along when enabled).

    ``windows_answered`` counts scored predictions delivered to a mailbox,
    WebSocket queue or the orphan mailbox; ``windows_shed`` the explicit
    SHED deliveries.  Together with the backend's scheduler stats they
    close the no-silent-loss ledger the drain contract asserts.
    """

    FIELDS = (
        "requests",
        "windows_answered",
        "windows_shed",
        "rejected_rate_limited",
        "rejected_saturated",
        "rejected_draining",
        "rejected_deadline",
        "late_responses",
        "protocol_errors",
        "disconnects",
        "handler_errors",
        "ws_connections",
        "ws_messages",
        "dead_letters_replayed",
    )

    def __init__(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)
        self.drains = 0
        self.drain_seconds = 0.0
        self.drained_clean: bool | None = None

    def bump(self, field: str, count: int = 1) -> None:
        setattr(self, field, getattr(self, field) + count)
        if OBS.enabled:
            OBS.metrics.counter(
                f"repro_gateway_{field}_total",
                f"Gateway edge accounting: {field.replace('_', ' ')}.",
            ).inc(count)

    def as_dict(self) -> dict:
        report = {field: getattr(self, field) for field in self.FIELDS}
        report["drains"] = self.drains
        report["drain_seconds"] = self.drain_seconds
        report["drained_clean"] = self.drained_clean
        return report

    def __repr__(self) -> str:
        return (
            f"GatewayStats(requests={self.requests}, "
            f"answered={self.windows_answered}, shed={self.windows_shed}, "
            f"rejected={self.rejected_rate_limited + self.rejected_saturated}, "
            f"errors={self.protocol_errors + self.handler_errors})"
        )


class _WsRoute:
    """Delivery route of a WebSocket-owned session: a live outbound queue."""

    __slots__ = ("queue",)

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue()


class _ServiceBackend:
    """Uniform backend facade over an in-process :class:`StreamingService`."""

    kind = "service"

    def __init__(self, service: StreamingService) -> None:
        self.service = service
        self.generation = 0
        self.swaps = 0

    def open(self, session_id: str, overrides: dict) -> None:
        self.service.open_session(session_id, **overrides)

    def close(self, session_id: str):
        return self.service.close_session(session_id)

    def push(self, session_id: str, samples: np.ndarray):
        return self.service.push(session_id, samples)

    def drain(self, deadline: Deadline | None = None):
        return self.service.drain()

    def swap(self, registry, name, version, precision, compile_options):
        engine = registry.load_compiled(
            name, version, precision=precision, **(compile_options or {})
        )
        flushed = self.service.swap_scorer(engine)
        self.generation += 1
        self.swaps += 1
        return flushed

    def sessions(self) -> tuple[str, ...]:
        return tuple(self.service.sessions)

    def stats(self) -> list[dict]:
        stats = self.service.stats
        return [
            {
                "windows_submitted": stats.windows_submitted,
                "windows_scored": stats.windows_scored,
                "windows_shed": stats.windows_shed,
                "windows_dead": stats.windows_dead,
                "pending": self.service.scheduler.pending,
                "batches": stats.batches,
                "score_failures": stats.score_failures,
                "p50_ms": stats.latency_percentile(50) * 1e3,
                "p99_ms": stats.latency_percentile(99) * 1e3,
            }
        ]

    def ready_report(self) -> dict:
        ladder = self.service.scheduler.degradation
        return {
            "brownout": bool(ladder.active) if ladder is not None else False,
            "breakers": [],
        }

    def dead_letters(self) -> list:
        return list(self.service.dead_letters)

    def replay_dead_letters(self):
        return self.service.replay_dead_letters()

    def shutdown(self) -> None:
        pass  # the service owns no processes; drain() already flushed


class _FabricBackend:
    """Uniform backend facade over a multi-process :class:`ServingFabric`."""

    kind = "fabric"

    def __init__(self, fabric: ServingFabric) -> None:
        self.fabric = fabric

    @property
    def generation(self) -> int:
        return self.fabric.generation

    @property
    def swaps(self) -> int:
        return self.fabric.swaps

    def open(self, session_id: str, overrides: dict) -> None:
        self.fabric.open_session(session_id, **overrides)

    def close(self, session_id: str) -> None:
        self.fabric.close_session(session_id)

    def push(self, session_id: str, samples: np.ndarray):
        return self.fabric.push(session_id, samples)

    def drain(self, deadline: Deadline | None = None):
        return self.fabric.drain(deadline=deadline)

    def swap(self, registry, name, version, precision, compile_options):
        self.fabric.swap_from_registry(
            registry, name, version, precision=precision, **(compile_options or {})
        )
        return []

    def sessions(self) -> tuple[str, ...]:
        return self.fabric.sessions

    def stats(self) -> list[dict]:
        return self.fabric.stats()

    def ready_report(self) -> dict:
        return {
            "brownout": False,
            "breakers": [breaker.state for breaker in self.fabric.breakers],
        }

    def dead_letters(self) -> list:
        return []  # dead letters live inside worker processes

    def replay_dead_letters(self):
        raise NotImplementedError(
            "dead-letter replay is not reachable through a fabric backend; "
            "replay inside the worker or use a service backend"
        )

    def shutdown(self) -> None:
        self.fabric.shutdown()


def _wrap_backend(backend):
    if isinstance(backend, StreamingService):
        return _ServiceBackend(backend)
    if isinstance(backend, ServingFabric):
        return _FabricBackend(backend)
    if isinstance(backend, (_ServiceBackend, _FabricBackend)):
        return backend
    raise TypeError(
        f"cannot serve a {type(backend).__name__}; expected a "
        "StreamingService or ServingFabric"
    )


class Gateway:
    """Asyncio HTTP/1.1 + WebSocket front-end over a serving backend.

    Parameters
    ----------
    backend:
        A :class:`~repro.serving.StreamingService` (in-process) or
        :class:`~repro.serving.ServingFabric` (multi-process).
    host, port:
        Bind address; ``port=0`` picks a free port (``gateway.port`` after
        :meth:`start`).
    rate, burst:
        Per-client token-bucket admission (requests/s and burst size);
        ``rate=None`` disables rate limiting.  Applies to every ``/v1``
        request and WebSocket feed; health/readiness/metrics probes are
        never rate limited.
    max_concurrent:
        Global in-flight HTTP request bound — beyond it requests get 503 +
        ``Retry-After`` immediately.
    max_clients:
        Rate-limiter memory bound (LRU-evicted client buckets).
    registry, registry_name:
        Optional :class:`~repro.serving.ModelRegistry` (and default model
        name) backing ``POST /v1/model/swap``.
    drain_deadline:
        Default SIGTERM/:meth:`shutdown` drain budget, seconds.
    request_timeout:
        Per-request header/body read budget, seconds — the slow-loris
        bound; a stalled client gets 408 and its connection closed.
    max_header_bytes, max_body_bytes:
        Hard input bounds (431 / 413 beyond them).
    clock:
        Monotonic time source for the admission limiters (injectable for
        deterministic tests).
    """

    def __init__(
        self,
        backend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        rate: float | None = None,
        burst: float | None = None,
        max_concurrent: int = 256,
        max_clients: int = 4096,
        registry=None,
        registry_name: str | None = None,
        drain_deadline: float = 5.0,
        request_timeout: float = 10.0,
        max_header_bytes: int = 16_384,
        max_body_bytes: int = 8_388_608,
        clock=time.monotonic,
    ) -> None:
        self.backend = _wrap_backend(backend)
        self.host = host
        self.port = int(port)
        self.registry = registry
        self.registry_name = registry_name
        self.drain_deadline = float(drain_deadline)
        self.request_timeout = float(request_timeout)
        self.max_header_bytes = int(max_header_bytes)
        self.max_body_bytes = int(max_body_bytes)
        self.rate_limiter = (
            RateLimiter(rate, burst or max(1.0, rate), max_clients=max_clients, clock=clock)
            if rate is not None
            else None
        )
        self.concurrency = ConcurrencyLimiter(max_concurrent)
        self.stats = GatewayStats()
        self._routes: dict[str, object] = {}
        self._orphans: deque[dict] = deque()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="gateway-backend"
        )
        self._draining = False
        self._closed = False
        self._handlers: set[asyncio.Task] = set()
        self._active_requests = 0
        self._connections: set[asyncio.StreamWriter] = set()
        self._ws_routes: set[_WsRoute] = set()
        self._shutdown_task: asyncio.Task | None = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> "Gateway":
        """Bind and start accepting connections (idempotent port discovery)."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=max(self.max_header_bytes, 65_536),
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger one graceful :meth:`shutdown` (drain)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_shutdown)

    def request_shutdown(self) -> None:
        """Schedule a graceful shutdown from sync context (signal handler)."""
        if self._shutdown_task is None and self._loop is not None:
            self._shutdown_task = self._loop.create_task(self.shutdown())

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` completes (SIGTERM-driven)."""
        if self._server is None:
            await self.start()
        self.install_signal_handlers()
        while not self._closed:
            await asyncio.sleep(0.05)

    async def shutdown(self, deadline_seconds: float | None = None) -> dict:
        """Graceful drain: stop accepting, flush in-flight, lose nothing.

        1. mark draining (readiness flips to 503) and close the listener;
        2. wait for in-flight HTTP handlers within the budget;
        3. flush every pending window through the backend (the fabric drain
           gets the remaining :class:`~repro.resilience.Deadline`, so one
           wedged worker cannot stall shutdown past it) and deliver the
           predictions;
        4. give WebSocket clients until the budget to receive their queued
           predictions, then close 1001 (going away);
        5. stop the backend and the executor.

        Returns a report; ``stats.drained_clean`` records whether every
        step finished inside the deadline.  Idempotent — concurrent calls
        await the same drain.
        """
        if self._shutdown_task is not None and self._shutdown_task is not asyncio.current_task():
            return await asyncio.shield(self._shutdown_task)
        started = time.monotonic()
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        deadline = Deadline(
            self.drain_deadline if deadline_seconds is None else deadline_seconds
        )
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

        # In-flight requests (not idle keep-alive connections): wait, but
        # never past the budget.
        while self._active_requests > 0 and not deadline.expired:
            await asyncio.sleep(0.005)

        flushed = 0
        try:
            predictions = await asyncio.wait_for(
                self._loop.run_in_executor(
                    self._pool, partial(self.backend.drain, deadline)
                ),
                timeout=None if deadline.budget() is None else deadline.budget() + 0.25,
            )
            self._deliver(predictions)
            flushed = len(predictions)
        except Exception:
            self.stats.bump("handler_errors")

        # WebSocket clients: let queued predictions flush, then say goodbye.
        for route in list(self._ws_routes):
            while not route.queue.empty() and not deadline.expired:
                await asyncio.sleep(0.005)
            route.queue.put_nowait(None)  # sender sends close frame and exits
        waited = time.monotonic()
        while self._ws_routes and time.monotonic() - waited < max(
            0.0, deadline.remaining()
        ):
            await asyncio.sleep(0.005)

        for writer in list(self._connections):
            writer.close()
        # Reap connection handlers: closed sockets end them promptly; cancel
        # stragglers so no task outlives the drain.
        if self._handlers:
            _, pending = await asyncio.wait(set(self._handlers), timeout=0.25)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=0.25)
        self.backend.shutdown()
        self._pool.shutdown(wait=False)
        self._closed = True
        elapsed = time.monotonic() - started
        self.stats.drains += 1
        self.stats.drain_seconds = elapsed
        self.stats.drained_clean = not deadline.expired
        if OBS.enabled:
            OBS.metrics.counter(
                "repro_gateway_drains_total", "Graceful gateway drains completed."
            ).inc()
            OBS.metrics.histogram(
                "repro_gateway_drain_seconds", "Graceful drain duration."
            ).observe(elapsed)
        return {
            "drained": True,
            "clean": self.stats.drained_clean,
            "seconds": elapsed,
            "flushed_predictions": flushed,
            "undelivered": self.pending_undelivered(),
        }

    def pending_undelivered(self) -> int:
        """Predictions answered into mailboxes that no client has fetched.

        After a drain this is the count of answered-but-unfetched windows
        (HTTP mailboxes + orphans) — they were *answered*, their owners just
        never came back for them; the drain-safety ledger counts them.
        """
        count = len(self._orphans)
        for route in self._routes.values():
            if isinstance(route, deque):
                count += len(route)
        return count

    # -------------------------------------------------------------- delivery
    def _deliver(self, predictions) -> None:
        """Route released predictions to their owners — exactly once each."""
        if not predictions:
            return
        answered = shed = 0
        for prediction in predictions:
            wire = prediction.to_wire()
            if prediction.shed:
                shed += 1
            else:
                answered += 1
            route = self._routes.get(prediction.session_id)
            if isinstance(route, _WsRoute):
                route.queue.put_nowait({"type": "prediction", **wire})
            elif isinstance(route, deque):
                route.append(wire)
            else:
                self._orphans.append(wire)
        if answered:
            self.stats.bump("windows_answered", answered)
        if shed:
            self.stats.bump("windows_shed", shed)

    def _submit_backend(self, fn, *, deliver: bool = True) -> asyncio.Task:
        """Run a backend call on the backend thread; deliver on completion.

        Delivery happens in the done-callback — not in the awaiting handler
        — so predictions are routed exactly once even when the handler has
        timed out on its deadline or its client has disconnected.  Calls
        whose result is not a prediction list (inspection endpoints) pass
        ``deliver=False``.
        """
        task = asyncio.ensure_future(self._loop.run_in_executor(self._pool, fn))

        def _on_done(done: asyncio.Task) -> None:
            if done.cancelled():
                return
            error = done.exception()
            if error is None and deliver:
                result = done.result()
                if isinstance(result, list):
                    self._deliver(result)

        task.add_done_callback(_on_done)
        return task

    async def _await_backend(self, task: asyncio.Task, deadline: Deadline | None):
        """Await a backend task under the request deadline.

        Raises :class:`asyncio.TimeoutError` when the budget runs out first;
        the shielded task keeps running and still delivers its predictions.
        """
        if deadline is None or deadline.budget() is None:
            return await asyncio.shield(task)
        return await asyncio.wait_for(asyncio.shield(task), timeout=deadline.budget())

    def _drain_mailbox(self, session_id: str) -> list[dict]:
        route = self._routes.get(session_id)
        if not isinstance(route, deque):
            return []
        drained = list(route)
        route.clear()
        return drained

    # ------------------------------------------------------------ connection
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        self._connections.add(writer)
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            await self._connection_loop(reader, writer, peer_host)
        except asyncio.CancelledError:
            # Torn down by shutdown (or loop close): exit cleanly so the
            # streams-protocol callback never sees a cancelled task.
            self.stats.bump("disconnects")
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            self.stats.bump("disconnects")
        except Exception:
            self.stats.bump("handler_errors")
        finally:
            self._handlers.discard(task)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _connection_loop(self, reader, writer, peer_host: str) -> None:
        while True:
            if CHAOS.enabled:
                # Injected in a worker thread so a `delay` fault models a
                # stalled read without freezing the whole event loop.
                await self._loop.run_in_executor(
                    None,
                    partial(
                        CHAOS.hit, "gateway.read", transport="http", client=peer_host
                    ),
                )
            try:
                request = await asyncio.wait_for(
                    read_request(
                        reader,
                        max_header_bytes=self.max_header_bytes,
                        max_body_bytes=self.max_body_bytes,
                    ),
                    timeout=self.request_timeout,
                )
            except asyncio.TimeoutError:
                self.stats.bump("disconnects")
                writer.write(
                    json_response(408, {"error": "request read timed out"}, close=True)
                )
                await writer.drain()
                return
            except ProtocolError as error:
                self.stats.bump("protocol_errors")
                writer.write(
                    json_response(error.status, {"error": str(error)}, close=True)
                )
                await writer.drain()
                return
            if request is None:
                return  # clean keep-alive EOF
            client = request.header(CLIENT_HEADER, peer_host)
            if request.wants_websocket:
                await self._handle_websocket(request, reader, writer, client)
                return
            close = not request.keep_alive
            self._active_requests += 1
            try:
                response = await self._handle_request(request, client)
            finally:
                self._active_requests -= 1
            if close:
                response = response.replace(
                    b"Connection: keep-alive", b"Connection: close", 1
                )
            writer.write(response)
            await writer.drain()
            if close:
                return

    # --------------------------------------------------------------- routing
    async def _handle_request(self, request: Request, client: str) -> bytes:
        self.stats.bump("requests")
        started = time.perf_counter()
        try:
            response = await self._admit_and_dispatch(request, client)
        except ProtocolError as error:
            self.stats.bump("protocol_errors")
            response = json_response(error.status, {"error": str(error)})
        except DeadlineExceeded as error:
            self.stats.bump("rejected_deadline")
            response = json_response(504, {"error": str(error), "accepted": False})
        except CircuitOpenError as error:
            response = json_response(
                503,
                {"error": str(error)},
                headers={"Retry-After": f"{max(error.retry_in, 0.05):.3f}"},
            )
        except NotImplementedError as error:
            response = json_response(501, {"error": str(error)})
        except Exception as error:
            self.stats.bump("handler_errors")
            response = json_response(
                500, {"error": f"{type(error).__name__}: {error}"}
            )
        if OBS.enabled:
            OBS.metrics.histogram(
                "repro_gateway_request_seconds",
                "End-to-end gateway request handling latency.",
            ).observe(time.perf_counter() - started)
        return response

    async def _admit_and_dispatch(self, request: Request, client: str) -> bytes:
        path, method = request.path, request.method
        # Probes and telemetry bypass admission control entirely.
        if path == "/healthz":
            return json_response(200, {"status": "alive", "backend": self.backend.kind})
        if path == "/readyz":
            return self._readyz()
        if path == "/metrics":
            return self._metrics()
        if self._draining:
            self.stats.bump("rejected_draining")
            return json_response(
                503,
                {"error": "gateway is draining", "draining": True},
                headers={"Retry-After": "1"},
            )
        if self.rate_limiter is not None:
            retry_after = self.rate_limiter.try_acquire(client)
            if retry_after > 0.0:
                self.stats.bump("rejected_rate_limited")
                return json_response(
                    429,
                    {"error": "rate limit exceeded", "retry_after": retry_after},
                    headers={"Retry-After": f"{retry_after:.3f}"},
                )
        if not self.concurrency.acquire():
            self.stats.bump("rejected_saturated")
            return json_response(
                503,
                {
                    "error": "concurrency limit reached",
                    "in_flight": self.concurrency.in_flight,
                },
                headers={"Retry-After": "0.050"},
            )
        try:
            deadline = self._parse_deadline(request)
            if deadline is not None and deadline.expired:
                self.stats.bump("rejected_deadline")
                return json_response(
                    504, {"error": "deadline already expired", "accepted": False}
                )
            if CHAOS.enabled:
                await self._loop.run_in_executor(
                    None, partial(CHAOS.hit, "gateway.request", path=path)
                )
            return await self._dispatch(request, deadline)
        finally:
            self.concurrency.release()

    async def _dispatch(self, request: Request, deadline: Deadline | None) -> bytes:
        path, method = request.path, request.method
        parts = [part for part in path.split("/") if part]
        if parts[:1] != ["v1"]:
            return json_response(404, {"error": f"no route {path!r}"})
        rest = parts[1:]
        if rest == ["sessions"]:
            if method == "POST":
                return await self._create_session(request)
            if method == "GET":
                return json_response(200, {"sessions": list(self.backend.sessions())})
            return json_response(405, {"error": f"{method} not allowed on {path}"})
        if len(rest) == 2 and rest[0] == "sessions":
            if method == "DELETE":
                return await self._close_session(rest[1])
            return json_response(405, {"error": f"{method} not allowed on {path}"})
        if len(rest) == 3 and rest[0] == "sessions":
            session_id, action = rest[1], rest[2]
            if action == "windows" and method == "POST":
                return await self._feed(session_id, request, deadline)
            if action == "score" and method == "POST":
                return await self._score(session_id, deadline)
            if action == "predictions" and method == "GET":
                return json_response(
                    200, {"predictions": self._drain_mailbox(session_id)}
                )
            return json_response(404, {"error": f"no route {path!r}"})
        if rest == ["model"] and method == "GET":
            return json_response(
                200,
                {
                    "backend": self.backend.kind,
                    "generation": self.backend.generation,
                    "swaps": self.backend.swaps,
                },
            )
        if rest == ["model", "swap"] and method == "POST":
            return await self._swap(request)
        if rest == ["dead-letters"] and method == "GET":
            letters = await self._await_backend(
                self._submit_backend(self.backend.dead_letters, deliver=False),
                deadline,
            )
            return json_response(
                200, {"dead_letters": [letter.to_wire() for letter in letters]}
            )
        if rest == ["dead-letters", "replay"] and method == "POST":
            return await self._replay_dead_letters(deadline)
        if rest == ["stats"] and method == "GET":
            return json_response(
                200,
                {
                    "gateway": self.stats.as_dict(),
                    "backend": self.backend.stats(),
                    "in_flight": self.concurrency.in_flight,
                    "orphaned_predictions": len(self._orphans),
                },
            )
        return json_response(404, {"error": f"no route {path!r}"})

    # -------------------------------------------------------------- handlers
    async def _create_session(self, request: Request) -> bytes:
        body = request.json() or {}
        if not isinstance(body, dict) or not body.get("session_id"):
            raise ProtocolError("body must be a JSON object with a session_id")
        session_id = str(body["session_id"])
        overrides = {
            key: value
            for key, value in body.items()
            if key not in ("session_id",)
        }
        try:
            await self._await_backend(
                self._submit_backend(
                    partial(self.backend.open, session_id, overrides)
                ),
                None,
            )
        except ValueError as error:
            return json_response(409, {"error": str(error)})
        except TypeError as error:
            return json_response(400, {"error": str(error)})
        self._routes.setdefault(session_id, deque())
        return json_response(201, {"session_id": session_id, "open": True})

    async def _close_session(self, session_id: str) -> bytes:
        try:
            await self._await_backend(
                self._submit_backend(partial(self.backend.close, session_id)), None
            )
        except KeyError:
            return json_response(404, {"error": f"no open session {session_id!r}"})
        leftover = self._drain_mailbox(session_id)
        self._orphans.extend(leftover)
        self._routes.pop(session_id, None)
        return json_response(
            200, {"session_id": session_id, "open": False, "orphaned": len(leftover)}
        )

    @staticmethod
    def _parse_samples(body) -> np.ndarray:
        if not isinstance(body, dict) or "samples" not in body:
            raise ProtocolError("body must be a JSON object with a samples array")
        try:
            samples = np.asarray(body["samples"], dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"samples are not numeric: {error}") from None
        if samples.ndim != 2:
            raise ProtocolError(
                f"samples must be 2-D (n_channels, n_samples), got ndim={samples.ndim}"
            )
        if not np.isfinite(samples).all():
            raise ProtocolError("samples contain non-finite values")
        return samples

    async def _feed(
        self, session_id: str, request: Request, deadline: Deadline | None
    ) -> bytes:
        samples = self._parse_samples(request.json())
        if session_id not in self._routes and session_id not in self.backend.sessions():
            return json_response(404, {"error": f"no open session {session_id!r}"})
        if deadline is not None:
            deadline.check("feed admission")
        task = self._submit_backend(partial(self.backend.push, session_id, samples))
        try:
            await self._await_backend(task, deadline)
        except asyncio.TimeoutError:
            # The windows were accepted and WILL be answered (the shielded
            # backend call continues and delivers into the mailbox); only
            # this response is late.
            self.stats.bump("late_responses")
            return json_response(
                504,
                {
                    "error": "deadline exceeded after admission",
                    "accepted": True,
                    "session_id": session_id,
                },
            )
        except KeyError as error:
            return json_response(404, {"error": str(error.args[0])})
        return json_response(
            200,
            {
                "session_id": session_id,
                "predictions": self._drain_mailbox(session_id),
            },
        )

    async def _score(self, session_id: str, deadline: Deadline | None) -> bytes:
        if session_id not in self._routes and session_id not in self.backend.sessions():
            return json_response(404, {"error": f"no open session {session_id!r}"})
        task = self._submit_backend(partial(self.backend.drain, deadline))
        try:
            await self._await_backend(task, deadline)
        except asyncio.TimeoutError:
            self.stats.bump("late_responses")
            return json_response(
                504, {"error": "deadline exceeded during flush", "accepted": True}
            )
        return json_response(
            200,
            {"session_id": session_id, "predictions": self._drain_mailbox(session_id)},
        )

    async def _swap(self, request: Request) -> bytes:
        if self.registry is None:
            return json_response(
                409, {"error": "gateway was started without a model registry"}
            )
        body = request.json() or {}
        name = body.get("name", self.registry_name)
        if not name:
            raise ProtocolError("swap needs a model name (or a registry_name default)")
        version = body.get("version")
        precision = body.get("precision", "float64")
        options = body.get("compile_options") or {}
        try:
            await self._await_backend(
                self._submit_backend(
                    partial(
                        self.backend.swap,
                        self.registry,
                        name,
                        version,
                        precision,
                        options,
                    )
                ),
                None,
            )
        except (KeyError, FileNotFoundError) as error:
            return json_response(404, {"error": str(error)})
        return json_response(
            200,
            {
                "swapped": True,
                "name": name,
                "version": version,
                "precision": precision,
                "generation": self.backend.generation,
            },
        )

    async def _replay_dead_letters(self, deadline: Deadline | None) -> bytes:
        result = await self._await_backend(
            self._submit_backend(self.backend.replay_dead_letters), deadline
        )
        replayed, predictions = result
        self._deliver(predictions)
        if replayed:
            self.stats.bump("dead_letters_replayed", replayed)
        sessions = dict.fromkeys(p.session_id for p in predictions)
        flat = [
            wire
            for session_id in sessions
            for wire in self._drain_mailbox(session_id)
        ]
        return json_response(200, {"replayed": replayed, "predictions": flat})

    def _readyz(self) -> bytes:
        report = self.backend.ready_report()
        breakers_open = [state for state in report["breakers"] if state == OPEN]
        ready = not self._draining and not breakers_open
        payload = {
            "ready": ready,
            "draining": self._draining,
            "brownout": report["brownout"],
            "breakers": report["breakers"],
            "in_flight": self.concurrency.in_flight,
            "saturation": self.concurrency.saturation,
            "open_sessions": len(self.backend.sessions()),
            "generation": self.backend.generation,
        }
        return json_response(200 if ready else 503, payload)

    def _metrics(self) -> bytes:
        if not OBS.enabled:
            return json_response(
                503, {"error": "observability disabled; enable with REPRO_OBS=1"}
            )
        text = prometheus_text(OBS.metrics.snapshot()).encode("utf-8")
        return response_bytes(200, text, content_type="text/plain; version=0.0.4")

    @staticmethod
    def _parse_deadline(request: Request) -> Deadline | None:
        raw = request.header(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            millis = float(raw)
        except ValueError:
            raise ProtocolError(f"malformed {DEADLINE_HEADER} header: {raw!r}") from None
        if millis < 0:
            raise ProtocolError(f"{DEADLINE_HEADER} must be >= 0, got {millis}")
        return Deadline(millis / 1000.0)

    # ------------------------------------------------------------- websocket
    async def _handle_websocket(self, request, reader, writer, client: str) -> None:
        key = request.header("sec-websocket-key")
        if request.path != "/v1/stream" or key is None:
            writer.write(
                json_response(426, {"error": "websocket upgrade refused"}, close=True)
            )
            await writer.drain()
            return
        if self._draining:
            self.stats.bump("rejected_draining")
            writer.write(
                json_response(
                    503,
                    {"error": "gateway is draining"},
                    headers={"Retry-After": "1"},
                    close=True,
                )
            )
            await writer.drain()
            return
        writer.write(
            response_bytes(
                101,
                headers={
                    "Upgrade": "websocket",
                    "Sec-WebSocket-Accept": websocket_accept(key),
                },
            ).replace(b"Connection: keep-alive", b"Connection: Upgrade", 1)
        )
        await writer.drain()
        self.stats.bump("ws_connections")
        route = _WsRoute()
        self._ws_routes.add(route)
        owned: set[str] = set()
        sender = self._loop.create_task(self._ws_sender(writer, route.queue))
        buffer = bytearray()
        try:
            await self._ws_loop(reader, route, owned, client, buffer)
        except ProtocolError as error:
            self.stats.bump("protocol_errors")
            route.queue.put_nowait({"type": "error", "error": str(error)})
            route.queue.put_nowait(None)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            self.stats.bump("disconnects")
            route.queue.put_nowait(None)
        else:
            route.queue.put_nowait(None)
        finally:
            try:
                await asyncio.wait_for(sender, timeout=1.0)
            except (asyncio.TimeoutError, asyncio.CancelledError, Exception):
                sender.cancel()
            # A disconnected client's sessions close; their already-queued
            # predictions are re-routed to the orphan mailbox (answered,
            # never lost).
            while not route.queue.empty():
                message = route.queue.get_nowait()
                if isinstance(message, dict) and message.get("type") == "prediction":
                    self._orphans.append(
                        {k: v for k, v in message.items() if k != "type"}
                    )
            self._ws_routes.discard(route)
            for session_id in owned:
                self._routes[session_id] = None  # future deliveries -> orphans
                try:
                    await asyncio.shield(
                        self._submit_backend(partial(self.backend.close, session_id))
                    )
                except Exception:
                    pass
                self._routes.pop(session_id, None)

    async def _ws_loop(self, reader, route, owned, client, buffer) -> None:
        while True:
            if CHAOS.enabled:
                await self._loop.run_in_executor(
                    None,
                    partial(CHAOS.hit, "gateway.read", transport="ws", client=client),
                )
            frame = await read_frame(
                reader, buffer, max_payload=self.max_body_bytes, require_mask=True
            )
            if frame is None or frame.opcode == CLOSE:
                return
            if frame.opcode == PING:
                route.queue.put_nowait(("pong", frame.payload))
                continue
            if frame.opcode == PONG:
                continue
            if frame.opcode not in (TEXT, BINARY):
                raise ProtocolError(f"unsupported opcode {frame.opcode}")
            payload = frame.payload
            if CHAOS.enabled:
                spec = CHAOS.hit("gateway.frame", client=client)
                if spec is not None and spec.kind == "corrupt":
                    damaged = bytearray(payload)
                    corrupt_bytes(damaged, CHAOS.spec_rng(spec))
                    payload = bytes(damaged)
            self.stats.bump("ws_messages")
            self._active_requests += 1
            try:
                await self._handle_ws_message(payload, route, owned, client)
            finally:
                self._active_requests -= 1

    async def _handle_ws_message(self, payload, route, owned, client) -> None:
        try:
            message = json.loads(payload)
            if not isinstance(message, dict):
                raise ValueError("message must be a JSON object")
            op = message.get("op")
        except (UnicodeDecodeError, ValueError) as error:
            self.stats.bump("protocol_errors")
            route.queue.put_nowait(
                {"type": "error", "error": f"malformed message: {error}"}
            )
            return
        try:
            if op == "open":
                session_id = str(message["session_id"])
                overrides = message.get("overrides") or {}
                await asyncio.shield(
                    self._submit_backend(
                        partial(self.backend.open, session_id, overrides)
                    )
                )
                owned.add(session_id)
                self._routes[session_id] = route
                route.queue.put_nowait(
                    {"type": "ack", "op": "open", "session_id": session_id}
                )
            elif op == "feed":
                session_id = str(message["session_id"])
                if self.rate_limiter is not None:
                    retry_after = self.rate_limiter.try_acquire(client)
                    if retry_after > 0.0:
                        self.stats.bump("rejected_rate_limited")
                        route.queue.put_nowait(
                            {
                                "type": "rejected",
                                "op": "feed",
                                "retry_after": retry_after,
                            }
                        )
                        return
                samples = self._parse_samples(message)
                await asyncio.shield(
                    self._submit_backend(
                        partial(self.backend.push, session_id, samples)
                    )
                )
                route.queue.put_nowait(
                    {"type": "ack", "op": "feed", "session_id": session_id}
                )
            elif op == "score":
                await asyncio.shield(
                    self._submit_backend(partial(self.backend.drain, None))
                )
                route.queue.put_nowait({"type": "ack", "op": "score"})
            elif op == "close":
                session_id = str(message["session_id"])
                await asyncio.shield(
                    self._submit_backend(partial(self.backend.close, session_id))
                )
                owned.discard(session_id)
                leftover = []
                self._routes.pop(session_id, None)
                route.queue.put_nowait(
                    {
                        "type": "ack",
                        "op": "close",
                        "session_id": session_id,
                        "orphaned": len(leftover),
                    }
                )
            else:
                route.queue.put_nowait(
                    {"type": "error", "error": f"unknown op {op!r}"}
                )
        except ProtocolError as error:
            self.stats.bump("protocol_errors")
            route.queue.put_nowait({"type": "error", "error": str(error)})
        except KeyError as error:
            route.queue.put_nowait({"type": "error", "error": f"missing {error}"})
        except Exception as error:
            self.stats.bump("handler_errors")
            route.queue.put_nowait(
                {"type": "error", "error": f"{type(error).__name__}: {error}"}
            )

    async def _ws_sender(self, writer, queue: asyncio.Queue) -> None:
        """Serialize outbound messages for one WebSocket connection."""
        try:
            while True:
                message = await queue.get()
                if message is None:
                    writer.write(encode_frame(CLOSE, (1001).to_bytes(2, "big")))
                    await writer.drain()
                    return
                if isinstance(message, tuple) and message[0] == "pong":
                    writer.write(encode_frame(PONG, message[1]))
                else:
                    writer.write(
                        encode_frame(
                            TEXT,
                            json.dumps(message, allow_nan=False).encode("utf-8"),
                        )
                    )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.stats.bump("disconnects")

    def __repr__(self) -> str:
        return (
            f"Gateway(backend={self.backend.kind}, address={self.address}, "
            f"draining={self._draining}, {self.stats!r})"
        )
