"""Admission-control primitives: token buckets and a concurrency limiter.

The gateway sheds overload *before* it reaches the scheduler, with explicit
signals (HTTP 429/503 + ``Retry-After``) rather than queue growth:

* :class:`TokenBucket` — the classic refill bucket.  ``try_acquire`` either
  grants immediately or returns the exact wait until enough tokens refill,
  which becomes the ``Retry-After`` header.  Time comes from an injectable
  monotonic clock, so the bucket is a *pure* function of its call sequence
  — the hypothesis suite in ``tests/test_gateway.py`` proves the rate is
  never exceeded over any window under arbitrary interleavings.
* :class:`RateLimiter` — per-client buckets keyed by an opaque client id
  (header or peer address), with LRU eviction so a churn of one-shot
  clients cannot grow memory without bound.
* :class:`ConcurrencyLimiter` — a global in-flight bound.  The gateway runs
  on one event loop, so this is a plain counter, not a semaphore: requests
  beyond the bound are *rejected*, never queued — queueing at the edge is
  exactly the silent latency growth the gateway exists to prevent.

None of these import asyncio or the serving layer; they are policy objects
in the :mod:`repro.resilience` style (dependencies point gateway ->
resilience, never back).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

__all__ = ["ConcurrencyLimiter", "RateLimiter", "TokenBucket"]


class TokenBucket:
    """Token bucket: sustained ``rate`` tokens/s with bursts up to ``burst``.

    The bucket starts full.  Refill is computed lazily from elapsed clock
    time (no background task), and the token count is capped at ``burst``
    — an idle client never accumulates more than one burst of credit.

    Parameters
    ----------
    rate:
        Sustained refill rate, tokens per second (> 0).
    burst:
        Bucket capacity — the maximum instantaneous grant (>= 1).
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not rate > 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if not burst >= 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self.clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (after a lazy refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available; return the retry-after otherwise.

        Returns ``0.0`` on success.  A positive return is the exact time
        until ``n`` tokens will have refilled — tokens are *not* consumed
        on failure, so a rejected client that waits the advertised interval
        is guaranteed admission (absent competing traffic).
        """
        if not n > 0:
            raise ValueError(f"n must be > 0, got {n}")
        if n > self.burst:
            raise ValueError(f"cannot acquire {n} tokens from a burst-{self.burst} bucket")
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


class RateLimiter:
    """Per-client :class:`TokenBucket` map with bounded memory.

    Buckets are created on first sight of a client key and evicted
    least-recently-used beyond ``max_clients``.  Eviction forgets a
    client's *spent* tokens (a returning evicted client starts with a full
    bucket); with ``max_clients`` sized above the live client population
    this never fires, and when it does the failure mode is permissive
    rather than lockout.
    """

    __slots__ = ("rate", "burst", "max_clients", "clock", "_buckets", "evictions")

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self.clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._buckets)

    def bucket(self, client: str) -> TokenBucket:
        """The client's bucket (created full on first sight; LRU-touched)."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self.clock)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
                self.evictions += 1
        else:
            self._buckets.move_to_end(client)
        return bucket

    def try_acquire(self, client: str, n: float = 1.0) -> float:
        """Per-client admission: ``0.0`` granted, else seconds to retry."""
        return self.bucket(client).try_acquire(n)


class ConcurrencyLimiter:
    """Global in-flight request bound: admit or reject, never queue.

    ``acquire`` / ``release`` are called from the single event loop, so a
    plain counter is race-free.  ``high_watermark`` records the peak
    in-flight count, and ``rejections`` every refused admission — both feed
    the readiness probe's pressure report.
    """

    __slots__ = ("limit", "in_flight", "high_watermark", "rejections")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self.in_flight = 0
        self.high_watermark = 0
        self.rejections = 0

    def acquire(self) -> bool:
        """Admit one request, or count and refuse at the bound."""
        if self.in_flight >= self.limit:
            self.rejections += 1
            return False
        self.in_flight += 1
        if self.in_flight > self.high_watermark:
            self.high_watermark = self.in_flight
        return True

    def release(self) -> None:
        if self.in_flight <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self.in_flight -= 1

    @property
    def saturation(self) -> float:
        """Current in-flight count as a fraction of the limit."""
        return self.in_flight / self.limit

    def __repr__(self) -> str:
        return (
            f"ConcurrencyLimiter(in_flight={self.in_flight}/{self.limit}, "
            f"peak={self.high_watermark}, rejections={self.rejections})"
        )
