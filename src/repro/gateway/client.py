"""Stdlib asyncio client for the gateway — tests, benches and examples.

:class:`GatewayClient` speaks the HTTP side (keep-alive, JSON bodies, the
``x-repro-deadline-ms`` / ``x-repro-client`` headers), and
:class:`GatewayWebSocket` the RFC 6455 side (masked client frames, ping/
pong, server-pushed predictions).  Both exist so the repo never needs an
HTTP client dependency — and so the load harness can do things a polite
library would refuse to: ``trickle`` writes a request a few bytes at a
time (the slow-loris shape the gateway's read timeout must bound) and
:meth:`GatewayClient.abort_mid_request` tears the connection down half-way
through a request (the mid-stream disconnect the accounting ledger must
survive).  :meth:`GatewayWebSocket.send_raw` injects arbitrary — including
malformed — frame bytes for the parser-rejection contract.
"""

from __future__ import annotations

import asyncio
import json
import os

from .app import CLIENT_HEADER, DEADLINE_HEADER
from .http import (
    CLOSE,
    PING,
    PONG,
    TEXT,
    ProtocolError,
    encode_frame,
    read_frame,
    websocket_accept,
)

__all__ = ["GatewayClient", "GatewayWebSocket"]


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, dict, bytes]:
    """Read one HTTP/1.1 response: ``(status, headers, body)``."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("ascii", "replace").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0") or 0)
    if length:
        body = await reader.readexactly(length)
    return status, headers, body


def _request_bytes(
    method: str,
    path: str,
    payload,
    headers: dict[str, str],
    host: str,
) -> bytes:
    body = b""
    if payload is not None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}"]
    if body:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


class GatewayClient:
    """One keep-alive HTTP connection to a gateway.

    Parameters
    ----------
    host, port:
        Gateway address.
    client_id:
        Sent as ``x-repro-client`` — the rate-limit key.  Defaults to the
        peer address on the server side when omitted.
    deadline_ms:
        Default per-request deadline header; per-call override available.
    trickle:
        ``(chunk_bytes, delay_seconds)`` — write each request in chunks of
        ``chunk_bytes`` with ``delay_seconds`` pauses, modelling a slow
        client.  ``None`` (default) writes requests in one piece.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str | None = None,
        deadline_ms: float | None = None,
        trickle: tuple[int, float] | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.client_id = client_id
        self.deadline_ms = deadline_ms
        self.trickle = trickle
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def __aenter__(self) -> "GatewayClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def _write(self, raw: bytes) -> None:
        if self.trickle is None:
            self._writer.write(raw)
            await self._writer.drain()
            return
        chunk_bytes, delay = self.trickle
        for start in range(0, len(raw), chunk_bytes):
            self._writer.write(raw[start : start + chunk_bytes])
            await self._writer.drain()
            if delay:
                await asyncio.sleep(delay)

    async def request(
        self,
        method: str,
        path: str,
        payload=None,
        *,
        headers: dict[str, str] | None = None,
        deadline_ms: float | None = None,
    ) -> tuple[int, object]:
        """One request/response round-trip; returns ``(status, parsed_body)``.

        The body is JSON-decoded when possible, raw bytes otherwise.
        Reconnects automatically if the server closed the keep-alive
        connection (e.g. after a ``Connection: close`` response).
        """
        await self.connect()
        merged = dict(headers or {})
        if self.client_id is not None:
            merged.setdefault(CLIENT_HEADER, self.client_id)
        effective_deadline = (
            deadline_ms if deadline_ms is not None else self.deadline_ms
        )
        if effective_deadline is not None:
            merged.setdefault(DEADLINE_HEADER, f"{effective_deadline:g}")
        raw = _request_bytes(method, path, payload, merged, self.host)
        try:
            await self._write(raw)
            status, response_headers, body = await _read_response(self._reader)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            # Stale keep-alive connection: reconnect once and retry.
            await self.close()
            await self.connect()
            await self._write(raw)
            status, response_headers, body = await _read_response(self._reader)
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            parsed = json.loads(body) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = body
        return status, parsed

    async def abort_mid_request(self, path: str = "/v1/sessions") -> None:
        """Send half a request then tear the connection down (chaos edge)."""
        await self.connect()
        payload = {"session_id": "aborted", "padding": "x" * 512}
        raw = _request_bytes("POST", path, payload, {}, self.host)
        self._writer.write(raw[: len(raw) // 2])
        await self._writer.drain()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._reader = self._writer = None

    # ----------------------------------------------------------- convenience
    async def open_session(self, session_id: str, **overrides):
        return await self.request(
            "POST", "/v1/sessions", {"session_id": session_id, **overrides}
        )

    async def close_session(self, session_id: str):
        return await self.request("DELETE", f"/v1/sessions/{session_id}")

    async def feed(self, session_id: str, samples, *, deadline_ms=None):
        payload = {
            "samples": samples.tolist() if hasattr(samples, "tolist") else samples
        }
        return await self.request(
            "POST",
            f"/v1/sessions/{session_id}/windows",
            payload,
            deadline_ms=deadline_ms,
        )

    async def score(self, session_id: str, *, deadline_ms=None):
        return await self.request(
            "POST", f"/v1/sessions/{session_id}/score", deadline_ms=deadline_ms
        )

    async def predictions(self, session_id: str):
        return await self.request("GET", f"/v1/sessions/{session_id}/predictions")

    async def healthz(self):
        return await self.request("GET", "/healthz")

    async def readyz(self):
        return await self.request("GET", "/readyz")

    async def model(self):
        return await self.request("GET", "/v1/model")

    async def swap(self, *, name=None, version=None, precision="float64", **options):
        payload = {"version": version, "precision": precision}
        if name is not None:
            payload["name"] = name
        if options:
            payload["compile_options"] = options
        return await self.request("POST", "/v1/model/swap", payload)

    async def dead_letters(self):
        return await self.request("GET", "/v1/dead-letters")

    async def replay_dead_letters(self):
        return await self.request("POST", "/v1/dead-letters/replay")

    async def stats(self):
        return await self.request("GET", "/v1/stats")


class GatewayWebSocket:
    """A masked RFC 6455 client connection to ``/v1/stream``."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._buffer = bytearray()
        self.closed = False

    @classmethod
    async def connect(
        cls, host: str, port: int, *, client_id: str | None = None
    ) -> "GatewayWebSocket":
        reader, writer = await asyncio.open_connection(host, port)
        key = os.urandom(16)
        import base64

        key_text = base64.b64encode(key).decode("ascii")
        headers = {
            "Host": host,
            "Upgrade": "websocket",
            "Connection": "Upgrade",
            "Sec-WebSocket-Key": key_text,
            "Sec-WebSocket-Version": "13",
        }
        if client_id is not None:
            headers[CLIENT_HEADER] = client_id
        lines = ["GET /v1/stream HTTP/1.1"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii"))
        await writer.drain()
        status, response_headers, _ = await _read_response(reader)
        if status != 101:
            writer.close()
            raise ConnectionError(f"websocket upgrade refused: HTTP {status}")
        expected = websocket_accept(key_text)
        if response_headers.get("sec-websocket-accept") != expected:
            writer.close()
            raise ConnectionError("websocket accept digest mismatch")
        return cls(reader, writer)

    async def send(self, message: dict) -> None:
        """Send one JSON op as a masked TEXT frame."""
        payload = json.dumps(message, allow_nan=False).encode("utf-8")
        self._writer.write(encode_frame(TEXT, payload, mask=os.urandom(4)))
        await self._writer.drain()

    async def send_raw(self, raw: bytes) -> None:
        """Inject arbitrary bytes — malformed frames for the fuzz contract."""
        self._writer.write(raw)
        await self._writer.drain()

    async def recv(self, *, timeout: float | None = 5.0) -> dict | None:
        """Receive the next JSON message; ``None`` once the server closes.

        Transparently answers pings.  Frame-level protocol violations from
        the server raise :class:`ProtocolError` (they indicate a gateway
        bug — server frames must always be well formed).
        """
        while True:
            frame = await asyncio.wait_for(
                read_frame(self._reader, self._buffer, require_mask=False),
                timeout=timeout,
            )
            if frame is None or frame.opcode == CLOSE:
                self.closed = True
                return None
            if frame.opcode == PING:
                self._writer.write(
                    encode_frame(PONG, frame.payload, mask=os.urandom(4))
                )
                await self._writer.drain()
                continue
            if frame.opcode == PONG:
                continue
            try:
                return json.loads(frame.payload)
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise ProtocolError(f"server sent invalid JSON: {error}") from None

    async def close(self) -> None:
        if not self.closed:
            try:
                self._writer.write(
                    encode_frame(CLOSE, (1000).to_bytes(2, "big"), mask=os.urandom(4))
                )
                await self._writer.drain()
            except (ConnectionError, OSError):
                pass
            self.closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
