"""Model quantisation helpers for HDC classifiers.

Wearable deployments typically store class hypervectors in reduced precision
(bipolar, fixed-point or float32).  This module converts trained HDC models
between representations and provides the fixed-point view used by the
bit-flip robustness experiments (Figure 8): each hypervector element is stored
as a signed integer of ``bits`` bits so that a single bit flip has a bounded,
hardware-realistic effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hypervector import bipolarize

__all__ = [
    "FixedPointFormat",
    "to_fixed_point",
    "from_fixed_point",
    "quantize_codes",
    "quantize_model",
]

#: Storage formats of the named fixed-point schemes: total bits and the
#: narrowest NumPy integer dtype that holds the signed code range.
SCHEME_BITS = {"fixed16": 16, "fixed8": 8}
SCHEME_DTYPES = {"fixed16": np.int16, "fixed8": np.int8}


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format with ``bits`` total bits and a shared scale.

    Values are encoded as ``round(value / scale)`` clipped to the signed range
    ``[-2**(bits-1), 2**(bits-1) - 1]``.
    """

    bits: int = 16
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def min_code(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_code(self) -> int:
        return (1 << (self.bits - 1)) - 1


def infer_scale(values: np.ndarray, bits: int = 16) -> FixedPointFormat:
    """Pick a scale so the largest magnitude maps near the top of the range."""
    magnitude = float(np.max(np.abs(values))) if values.size else 1.0
    magnitude = max(magnitude, 1e-12)
    scale = magnitude / ((1 << (bits - 1)) - 1)
    return FixedPointFormat(bits=bits, scale=scale)


def to_fixed_point(
    values: np.ndarray, fmt: FixedPointFormat | None = None, *, bits: int = 16
) -> tuple[np.ndarray, FixedPointFormat]:
    """Quantize float values to fixed-point integer codes.

    Returns the integer codes (dtype ``int64``) and the format used, inferring
    a scale from the data when ``fmt`` is not supplied.
    """
    array = np.asarray(values, dtype=float)
    if fmt is None:
        fmt = infer_scale(array, bits=bits)
    codes = np.clip(np.round(array / fmt.scale), fmt.min_code, fmt.max_code)
    return codes.astype(np.int64), fmt


def from_fixed_point(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Convert fixed-point integer codes back to floats."""
    return np.asarray(codes, dtype=float) * fmt.scale


def quantize_codes(
    values: np.ndarray, scheme: str = "fixed16", fmt: FixedPointFormat | None = None
) -> tuple[np.ndarray, FixedPointFormat]:
    """Quantize floats to a named scheme's *storage* codes, no float round trip.

    Returns ``(codes, fmt)`` where ``codes`` already has the scheme's native
    storage dtype (``int16`` for ``"fixed16"``, ``int8`` for ``"fixed8"``) —
    the form the model registry persists and the integer-domain engines
    (:mod:`repro.engine.quant`) score with directly.  This is the single
    quantisation point: :func:`quantize_model` and
    ``ModelRegistry._store_hypervectors`` both route through it, so the codes
    a registry stores are byte-identical to the codes a freshly compiled
    fixed-point engine holds.
    """
    if scheme not in SCHEME_BITS:
        raise ValueError(
            f"unknown fixed-point scheme {scheme!r}; available: {sorted(SCHEME_BITS)}"
        )
    if fmt is not None and fmt.bits != SCHEME_BITS[scheme]:
        raise ValueError(
            f"format has {fmt.bits} bits but scheme {scheme!r} stores "
            f"{SCHEME_BITS[scheme]}"
        )
    codes, fmt = to_fixed_point(values, fmt, bits=SCHEME_BITS[scheme])
    return codes.astype(SCHEME_DTYPES[scheme]), fmt


def quantize_model(class_hypervectors: np.ndarray, scheme: str = "bipolar") -> np.ndarray:
    """Quantize class hypervectors for low-cost inference.

    ``scheme`` may be ``"bipolar"`` (sign quantisation, the classic 1-bit HDC
    model) or ``"fixed16"`` / ``"fixed8"`` (round-trip through fixed point).
    """
    array = np.asarray(class_hypervectors, dtype=float)
    if scheme == "bipolar":
        return bipolarize(array)
    if scheme in SCHEME_BITS:
        codes, fmt = quantize_codes(array, scheme)
        return from_fixed_point(codes, fmt)
    raise ValueError(f"unknown quantization scheme {scheme!r}")
