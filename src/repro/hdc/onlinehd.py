"""OnlineHD classifier (Hernandez-Cano et al., DATE 2021).

OnlineHD is the "strong learner" the paper partitions.  It improves on the
single-pass centroid model with *adaptive* updates: each training sample only
modifies the class hypervectors in proportion to how badly the model currently
scores it.  With learning rate ``lr`` and cosine similarities ``δ``:

* correct prediction with true class ``y``:  ``C_y += lr · (1 − δ_y) · H``
* misprediction (predicted ``ŷ ≠ y``)::

      C_y  += lr · (1 − δ_y)  · H
      C_ŷ  -= lr · (1 − δ_ŷ)  · H

so confidently-correct samples barely move the model while confusing samples
drive the largest corrections.  Training performs one bundling pass (the
initial model) followed by ``epochs`` adaptive passes.

Sample weights are supported in two ways so that the model can serve as a
boosting weak learner (see :class:`repro.core.BoostHD`):

* ``bootstrap=True`` (the paper's configuration) — each adaptive epoch draws a
  weighted bootstrap resample of the training set, and the initial bundling
  weights samples directly;
* ``bootstrap=False`` — updates are scaled by the (normalised) sample weight.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import BaseClassifier
from .encoder import Encoder, NonlinearEncoder
from .similarity import cosine_similarity

__all__ = ["OnlineHD"]


class OnlineHD(BaseClassifier):
    """Adaptive single-pass + iterative hyperdimensional classifier.

    Parameters
    ----------
    dim:
        Hyperdimensionality ``D`` of the model.
    lr:
        Learning rate for adaptive updates (paper: 0.035).
    epochs:
        Number of adaptive refinement passes after the initial bundling pass.
    bootstrap:
        When sample weights are provided, resample each adaptive epoch with
        probability proportional to the weights (paper configuration) instead
        of scaling updates.
    bandwidth:
        Kernel bandwidth of the default nonlinear encoder (ignored when an
        explicit ``encoder`` is supplied).
    encoder:
        Optional pre-built encoder; by default a :class:`NonlinearEncoder`
        with Gaussian N(0, 1) projection is created at fit time.
    seed:
        Seed for the encoder and bootstrap resampling.
    """

    def __init__(
        self,
        dim: int = 1000,
        *,
        lr: float = 0.035,
        epochs: int = 20,
        bootstrap: bool = True,
        bandwidth: float = 1.5,
        encoder: Encoder | None = None,
        seed: int | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.dim = int(dim)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.bootstrap = bool(bootstrap)
        self.bandwidth = float(bandwidth)
        self.encoder = encoder
        self.seed = seed
        self.class_hypervectors_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None
        self._adapt_rng: np.random.Generator | None = None

    # ------------------------------------------------------------------ fit
    def _ensure_encoder(self, n_features: int) -> Encoder:
        if self.encoder is None:
            self.encoder = NonlinearEncoder(
                n_features, self.dim, bandwidth=self.bandwidth, rng=self.seed
            )
        return self.encoder

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "OnlineHD":
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        weighted = sample_weight is not None
        encoder = self._ensure_encoder(X.shape[1])
        rng = np.random.default_rng(self.seed)

        self.classes_ = np.unique(y)
        label_index = np.searchsorted(self.classes_, y)
        encoded = encoder.encode(X)

        # Initial single-pass bundling (weighted when boosting provides weights).
        model = np.zeros((len(self.classes_), encoder.dim))
        initial_scale = weights * len(y) if weighted else np.ones(len(y))
        np.add.at(model, label_index, initial_scale[:, None] * encoded)

        for _ in range(self.epochs):
            if weighted and self.bootstrap:
                order = rng.choice(len(y), size=len(y), p=weights)
                update_scale = np.ones(len(y))
            else:
                order = rng.permutation(len(y))
                update_scale = weights * len(y) if weighted else np.ones(len(y))
            self._adaptive_pass(model, encoded, label_index, order, update_scale)

        self.class_hypervectors_ = model
        # Keep the generator so partial_fit continues the same random stream:
        # one partial_fit epoch after fit(epochs=k) replays exactly what
        # fit(epochs=k+1) would have done for its final epoch.
        self._adapt_rng = rng
        return self

    # ---------------------------------------------------------- partial_fit
    def _extend_classes(self, new_labels: np.ndarray) -> None:
        """Grow ``classes_`` / ``class_hypervectors_`` for unseen labels.

        New classes start from a zero hypervector (no bundling history), so
        the first adaptive updates fully determine their direction.
        """
        combined = np.union1d(self.classes_, new_labels)
        if len(combined) == len(self.classes_):
            return
        grown = np.zeros((len(combined), self.class_hypervectors_.shape[1]))
        grown[np.searchsorted(combined, self.classes_)] = self.class_hypervectors_
        self.classes_ = combined
        self.class_hypervectors_ = grown

    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "OnlineHD":
        """One incremental adaptive epoch on ``(X, y)``, reusing the fitted model.

        The fitted encoder and class hypervectors are updated in place with
        exactly one OnlineHD adaptive pass — the same update rule as
        :meth:`fit`'s refinement epochs, continuing :meth:`fit`'s random
        stream — so ``fit(epochs=k)`` followed by one ``partial_fit`` on the
        same data reproduces ``fit(epochs=k+1)``.  This is the primitive the
        serving layer's online adaptation (:mod:`repro.serving.adaptation`)
        applies to labeled feedback; labels unseen at fit time grow the model
        with a fresh zero-initialised class hypervector.

        Requires a fitted model (:meth:`fit` first): the encoder and the
        initial bundling pass define the representation being adapted.
        """
        self._check_fitted("class_hypervectors_")
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        weighted = sample_weight is not None
        if X.shape[1] != self.encoder.in_features:
            raise ValueError(
                f"expected {self.encoder.in_features} features, got {X.shape[1]}"
            )
        if self._adapt_rng is None:
            # Model restored from the registry (never fitted in-process):
            # start a fresh stream from the configured seed.
            self._adapt_rng = np.random.default_rng(self.seed)
        rng = self._adapt_rng

        self._extend_classes(np.unique(y))
        label_index = np.searchsorted(self.classes_, y)
        encoded = self.encoder.encode(X)

        if weighted and self.bootstrap:
            order = rng.choice(len(y), size=len(y), p=weights)
            update_scale = np.ones(len(y))
        else:
            order = rng.permutation(len(y))
            update_scale = weights * len(y) if weighted else np.ones(len(y))
        self._adaptive_pass(
            self.class_hypervectors_, encoded, label_index, order, update_scale
        )
        return self

    def _adaptive_pass(
        self,
        model: np.ndarray,
        encoded: np.ndarray,
        label_index: np.ndarray,
        order: np.ndarray,
        update_scale: np.ndarray,
    ) -> None:
        """One epoch of OnlineHD adaptive updates over samples in ``order``."""
        for sample in order:
            hypervector = encoded[sample]
            true_class = label_index[sample]
            scores = cosine_similarity(hypervector, model)
            predicted = int(np.argmax(scores))
            scale = update_scale[sample] * self.lr
            if predicted == true_class:
                model[true_class] += scale * (1.0 - scores[true_class]) * hypervector
            else:
                model[true_class] += scale * (1.0 - scores[true_class]) * hypervector
                model[predicted] -= scale * (1.0 - scores[predicted]) * hypervector

    # -------------------------------------------------------------- predict
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Cosine similarity of each query to each class hypervector."""
        self._check_fitted("class_hypervectors_")
        X = self._validate_predict_args(X)
        encoded = self.encoder.encode(X)
        return cosine_similarity(encoded, self.class_hypervectors_)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax over similarity scores (a convenience, not calibrated)."""
        scores = self.decision_function(X)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exponent = np.exp(shifted)
        return exponent / exponent.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def compile(self, **options):
        """Compile the fitted model into a fused batch scorer.

        A single OnlineHD model compiles as a one-learner ensemble: the
        returned :class:`repro.engine.CompiledModel` reproduces
        :meth:`decision_function` (cosine similarities) and :meth:`predict`
        with the engine's fused encoding, configurable ``dtype``, chunked
        streaming and optional encoding cache.  Keyword ``options`` are
        forwarded to :func:`repro.engine.compile_model`.
        """
        from ..engine import compile_model

        return compile_model(self, **options)
