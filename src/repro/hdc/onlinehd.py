"""OnlineHD classifier (Hernandez-Cano et al., DATE 2021).

OnlineHD is the "strong learner" the paper partitions.  It improves on the
single-pass centroid model with *adaptive* updates: each training sample only
modifies the class hypervectors in proportion to how badly the model currently
scores it.  With learning rate ``lr`` and cosine similarities ``δ``:

* correct prediction with true class ``y``:  ``C_y += lr · (1 − δ_y) · H``
* misprediction (predicted ``ŷ ≠ y``)::

      C_y  += lr · (1 − δ_y)  · H
      C_ŷ  -= lr · (1 − δ_ŷ)  · H

so confidently-correct samples barely move the model while confusing samples
drive the largest corrections.  Training performs one bundling pass (the
initial model) followed by ``epochs`` adaptive passes.

Sample weights are supported in two ways so that the model can serve as a
boosting weak learner (see :class:`repro.core.BoostHD`):

* ``bootstrap=True`` (the paper's configuration) — each adaptive epoch draws a
  weighted bootstrap resample of the training set, and the initial bundling
  weights samples directly;
* ``bootstrap=False`` — updates are scaled by the (normalised) sample weight.

Training routes through the fused training engine
(:mod:`repro.engine.train`): the initial bundling uses a sort + segment
reduce, and the adaptive epochs run the exact fast pass (cached class/sample
norms, lean 1-vs-K similarity kernel) — bit-identical to the per-sample
reference loop kept on :meth:`OnlineHD._adaptive_pass`.  ``batch_size=B``
opts into the vectorised mini-batch trainer (frozen-snapshot chunk scoring,
scatter-added rank-1 updates), which changes update sequencing and is gated
by accuracy parity rather than bit-equality; ``trainer="reference"`` on
:meth:`fit`/:meth:`partial_fit` forces the legacy loop for equivalence
testing.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import BaseClassifier
from .encoder import Encoder, NonlinearEncoder
from .similarity import cosine_similarity

__all__ = ["OnlineHD"]


class OnlineHD(BaseClassifier):
    """Adaptive single-pass + iterative hyperdimensional classifier.

    Parameters
    ----------
    dim:
        Hyperdimensionality ``D`` of the model.
    lr:
        Learning rate for adaptive updates (paper: 0.035).
    epochs:
        Number of adaptive refinement passes after the initial bundling pass.
    bootstrap:
        When sample weights are provided, resample each adaptive epoch with
        probability proportional to the weights (paper configuration) instead
        of scaling updates.
    batch_size:
        ``None`` (default) trains with the exact per-sample pass —
        bit-identical to the reference loop.  A positive integer opts into
        the vectorised mini-batch trainer
        (:func:`repro.engine.train.adaptive_pass_minibatch`): chunks of this
        many samples are scored against a frozen model snapshot and their
        rank-1 updates applied together, trading strict sequencing for
        large fit-time speedups at matched accuracy.
    bandwidth:
        Kernel bandwidth of the default nonlinear encoder (ignored when an
        explicit ``encoder`` is supplied).
    encoder:
        Optional pre-built encoder; by default a :class:`NonlinearEncoder`
        with Gaussian N(0, 1) projection is created at fit time.
    seed:
        Seed for the encoder and bootstrap resampling.
    """

    def __init__(
        self,
        dim: int = 1000,
        *,
        lr: float = 0.035,
        epochs: int = 20,
        bootstrap: bool = True,
        batch_size: int | None = None,
        bandwidth: float = 1.5,
        encoder: Encoder | None = None,
        seed: int | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 or None, got {batch_size}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.dim = int(dim)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.bootstrap = bool(bootstrap)
        self.batch_size = None if batch_size is None else int(batch_size)
        self.bandwidth = float(bandwidth)
        self.encoder = encoder
        self.seed = seed
        self.class_hypervectors_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None
        self._adapt_rng: np.random.Generator | None = None

    # ------------------------------------------------------------------ fit
    def _ensure_encoder(self, n_features: int) -> Encoder:
        if self.encoder is None:
            self.encoder = NonlinearEncoder(
                n_features, self.dim, bandwidth=self.bandwidth, rng=self.seed
            )
        return self.encoder

    def _resolve_trainer(self, trainer: str | None) -> str:
        """Resolve the adaptive-pass implementation for this fit call."""
        from ..engine.train import resolve_trainer

        return resolve_trainer(trainer, self.batch_size)

    def _validate_encoded(
        self, encoded: np.ndarray | None, n_samples: int
    ) -> np.ndarray | None:
        if encoded is None:
            return None
        encoded = np.asarray(encoded, dtype=float)
        expected = (n_samples, self.encoder.dim)
        if encoded.shape != expected:
            raise ValueError(
                f"encoded must have shape {expected}, got {encoded.shape}"
            )
        return encoded

    def _train_epochs(
        self,
        model: np.ndarray,
        encoded: np.ndarray,
        label_index: np.ndarray,
        weights: np.ndarray,
        weighted: bool,
        rng: np.random.Generator,
        n_epochs: int,
        trainer: str,
    ) -> None:
        """Draw per-epoch sample orders and run the selected adaptive pass.

        The random draws are identical for every trainer (and to the
        original implementation), so the trainer choice never perturbs the
        epoch resamples/permutations — nor the stream that
        :meth:`partial_fit` continues.
        """
        n = len(label_index)
        state = None
        if trainer == "exact" and n_epochs > 0:
            from ..engine.train.exact import ExactPassState

            state = ExactPassState(model, encoded)
        for _ in range(n_epochs):
            if weighted and self.bootstrap:
                order = rng.choice(n, size=n, p=weights)
                update_scale = np.ones(n)
            else:
                order = rng.permutation(n)
                update_scale = weights * n if weighted else np.ones(n)
            if trainer == "exact":
                from ..engine.train.exact import adaptive_pass_exact

                state = adaptive_pass_exact(
                    model, encoded, label_index, order, update_scale, self.lr,
                    state,
                )
            elif trainer == "minibatch":
                from ..engine.train.minibatch import adaptive_pass_minibatch

                adaptive_pass_minibatch(
                    model, encoded, label_index, order, update_scale, self.lr,
                    self.batch_size,
                )
            else:
                self._adaptive_pass(model, encoded, label_index, order, update_scale)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        *,
        encoded: np.ndarray | None = None,
        trainer: str | None = None,
    ) -> "OnlineHD":
        """Fit the model: one bundling pass plus ``epochs`` adaptive passes.

        Keyword-only extras route training through the fused engine
        (:mod:`repro.engine.train`):

        * ``encoded`` — pre-encoded hypervectors for ``X`` (shape
          ``(n_samples, dim)``), as produced by
          :func:`repro.engine.train.encode_ensemble`; skips this model's
          own ``encoder.encode(X)``.  The caller guarantees they match.
        * ``trainer`` — ``"exact"`` (default; bit-identical fast path),
          ``"minibatch"`` (requires ``batch_size``; the default whenever
          ``batch_size`` is set) or ``"reference"`` (the original
          per-sample loop plus ``np.add.at`` bundling, kept for
          equivalence testing).
        """
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        weighted = sample_weight is not None
        trainer = self._resolve_trainer(trainer)
        encoder = self._ensure_encoder(X.shape[1])
        rng = np.random.default_rng(self.seed)

        self.classes_ = np.unique(y)
        label_index = np.searchsorted(self.classes_, y)
        encoded = self._validate_encoded(encoded, len(y))
        if encoded is None:
            encoded = encoder.encode(X)

        # Initial single-pass bundling (weighted when boosting provides weights).
        model = np.zeros((len(self.classes_), encoder.dim))
        if trainer == "reference":
            initial_scale = weights * len(y) if weighted else np.ones(len(y))
            np.add.at(model, label_index, initial_scale[:, None] * encoded)
        else:
            from ..engine.train.bundling import bundle_classes

            bundle_classes(
                model,
                encoded,
                label_index,
                weights * len(y) if weighted else None,
            )

        self._train_epochs(
            model, encoded, label_index, weights, weighted, rng, self.epochs,
            trainer,
        )

        self.class_hypervectors_ = model
        # Keep the generator so partial_fit continues the same random stream:
        # one partial_fit epoch after fit(epochs=k) replays exactly what
        # fit(epochs=k+1) would have done for its final epoch.
        self._adapt_rng = rng
        return self

    # ---------------------------------------------------------- partial_fit
    def _extend_classes(self, new_labels: np.ndarray) -> None:
        """Grow ``classes_`` / ``class_hypervectors_`` for unseen labels.

        New classes start from a zero hypervector (no bundling history), so
        the first adaptive updates fully determine their direction.
        """
        combined = np.union1d(self.classes_, new_labels)
        if len(combined) == len(self.classes_):
            return
        grown = np.zeros((len(combined), self.class_hypervectors_.shape[1]))
        grown[np.searchsorted(combined, self.classes_)] = self.class_hypervectors_
        self.classes_ = combined
        self.class_hypervectors_ = grown

    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        *,
        encoded: np.ndarray | None = None,
        trainer: str | None = None,
    ) -> "OnlineHD":
        """One incremental adaptive epoch on ``(X, y)``, reusing the fitted model.

        The fitted encoder and class hypervectors are updated in place with
        exactly one OnlineHD adaptive pass — the same update rule as
        :meth:`fit`'s refinement epochs, continuing :meth:`fit`'s random
        stream — so ``fit(epochs=k)`` followed by one ``partial_fit`` on the
        same data reproduces ``fit(epochs=k+1)``.  This is the primitive the
        serving layer's online adaptation (:mod:`repro.serving.adaptation`)
        applies to labeled feedback; labels unseen at fit time grow the model
        with a fresh zero-initialised class hypervector.

        Like :meth:`fit`, the pass runs on the fused training engine:
        ``trainer`` defaults to the exact fast path (bit-identical to the
        reference loop, so adaptation behaves exactly as before), or to the
        mini-batch trainer when ``batch_size`` is set; ``encoded`` supplies
        pre-encoded hypervectors (:class:`~repro.core.BoostHD` shares one
        ensemble encoding across its weak learners this way).

        Requires a fitted model (:meth:`fit` first): the encoder and the
        initial bundling pass define the representation being adapted.
        """
        self._check_fitted("class_hypervectors_")
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        weighted = sample_weight is not None
        trainer = self._resolve_trainer(trainer)
        if X.shape[1] != self.encoder.in_features:
            raise ValueError(
                f"expected {self.encoder.in_features} features, got {X.shape[1]}"
            )
        if self._adapt_rng is None:
            # Model restored from the registry (never fitted in-process):
            # start a fresh stream from the configured seed.
            self._adapt_rng = np.random.default_rng(self.seed)
        rng = self._adapt_rng

        self._extend_classes(np.unique(y))
        label_index = np.searchsorted(self.classes_, y)
        encoded = self._validate_encoded(encoded, len(y))
        if encoded is None:
            encoded = self.encoder.encode(X)

        self._train_epochs(
            self.class_hypervectors_, encoded, label_index, weights, weighted,
            rng, 1, trainer,
        )
        return self

    def _adaptive_pass(
        self,
        model: np.ndarray,
        encoded: np.ndarray,
        label_index: np.ndarray,
        order: np.ndarray,
        update_scale: np.ndarray,
    ) -> None:
        """One epoch of OnlineHD adaptive updates over samples in ``order``.

        This is the *reference implementation* — the original per-sample
        loop, no longer on the default path.  :meth:`fit`/:meth:`partial_fit`
        run :func:`repro.engine.train.adaptive_pass_exact` instead, which is
        bit-identical (same scores, same argmax, same update arithmetic) but
        caches class/sample norms rather than re-deriving every class norm
        from scratch each sample through the general ``cosine_similarity``.
        Selectable with ``trainer="reference"``; the equivalence contract
        lives in ``tests/test_train_engine.py``.
        """
        for sample in order:
            hypervector = encoded[sample]
            true_class = label_index[sample]
            scores = cosine_similarity(hypervector, model)
            predicted = int(np.argmax(scores))
            scale = update_scale[sample] * self.lr
            if predicted == true_class:
                model[true_class] += scale * (1.0 - scores[true_class]) * hypervector
            else:
                model[true_class] += scale * (1.0 - scores[true_class]) * hypervector
                model[predicted] -= scale * (1.0 - scores[predicted]) * hypervector

    # -------------------------------------------------------------- predict
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Cosine similarity of each query to each class hypervector."""
        self._check_fitted("class_hypervectors_")
        X = self._validate_predict_args(X)
        encoded = self.encoder.encode(X)
        return cosine_similarity(encoded, self.class_hypervectors_)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax over similarity scores (a convenience, not calibrated)."""
        scores = self.decision_function(X)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exponent = np.exp(shifted)
        return exponent / exponent.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def decision_function_encoded(self, encoded: np.ndarray) -> np.ndarray:
        """Cosine scores for pre-encoded hypervectors (skips the encoder).

        ``encoded`` must come from this model's encoder (e.g. one block of
        :func:`repro.engine.train.encode_ensemble`); the result is then
        bit-identical to :meth:`decision_function` on the raw features.
        :class:`~repro.core.BoostHD` uses this to estimate each weak
        learner's boosting error without re-encoding the training matrix.
        """
        self._check_fitted("class_hypervectors_")
        return cosine_similarity(encoded, self.class_hypervectors_)

    def predict_encoded(self, encoded: np.ndarray) -> np.ndarray:
        """Predict labels for pre-encoded hypervectors (skips the encoder)."""
        scores = self.decision_function_encoded(encoded)
        return self.classes_[np.argmax(scores, axis=1)]

    def compile(self, **options):
        """Compile the fitted model into a fused batch scorer.

        A single OnlineHD model compiles as a one-learner ensemble: the
        returned :class:`repro.engine.CompiledModel` reproduces
        :meth:`decision_function` (cosine similarities) and :meth:`predict`
        with the engine's fused encoding, configurable ``dtype``, chunked
        streaming and optional encoding cache.  Keyword ``options`` are
        forwarded to :func:`repro.engine.compile_model`; a quantized
        ``precision`` selects the integer-domain engines of
        :mod:`repro.engine.quant`.
        """
        from ..engine import compile_model

        return compile_model(self, **options)
