"""Similarity metrics between hypervectors.

The paper's Equation (1) defines the similarity between two hypervectors as
normalised dot product (cosine similarity):

.. math::

   \\delta(V_1, V_2) = \\frac{V_1^\\dagger V_2}{\\lVert V_1 \\rVert\\,\\lVert V_2 \\rVert}

All HDC classifiers in this repository compare encoded queries against class
hypervectors with :func:`cosine_similarity`.  Hamming similarity is provided
for binary/bipolar models.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity",
    "dot_similarity",
    "hamming_similarity",
    "pairwise_cosine",
]

_EPS = 1e-12


def _prepare(first: np.ndarray, second: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    lhs = np.atleast_2d(np.asarray(first, dtype=float))
    rhs = np.atleast_2d(np.asarray(second, dtype=float))
    if lhs.shape[1] != rhs.shape[1]:
        raise ValueError(f"dimension mismatch: {lhs.shape[1]} vs {rhs.shape[1]}")
    return lhs, rhs


def dot_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Plain dot-product similarity between batches of hypervectors.

    ``first`` has shape ``(n, dim)`` (or ``(dim,)``) and ``second`` has shape
    ``(m, dim)`` (or ``(dim,)``).  The result has shape ``(n, m)`` and is
    squeezed to a scalar when both inputs are single hypervectors.
    """
    lhs, rhs = _prepare(first, second)
    result = lhs @ rhs.T
    return _maybe_squeeze(result, first, second)


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Cosine similarity (Equation 1) between batches of hypervectors."""
    lhs, rhs = _prepare(first, second)
    lhs_norm = np.linalg.norm(lhs, axis=1, keepdims=True)
    rhs_norm = np.linalg.norm(rhs, axis=1, keepdims=True)
    denominator = np.maximum(lhs_norm @ rhs_norm.T, _EPS)
    result = (lhs @ rhs.T) / denominator
    return _maybe_squeeze(result, first, second)


def hamming_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Fraction of matching elements between quantized hypervectors.

    Inputs are interpreted as sign patterns: any non-negative element counts
    as +1 and any negative element as -1, so the metric works for bipolar,
    binary and real-valued hypervectors alike.
    """
    lhs, rhs = _prepare(first, second)
    lhs_sign = np.where(lhs >= 0.0, 1.0, -1.0)
    rhs_sign = np.where(rhs >= 0.0, 1.0, -1.0)
    matches = (lhs_sign[:, None, :] == rhs_sign[None, :, :]).mean(axis=2)
    return _maybe_squeeze(matches, first, second)


def pairwise_cosine(vectors: np.ndarray) -> np.ndarray:
    """Symmetric cosine-similarity matrix of a batch of hypervectors."""
    batch = np.atleast_2d(np.asarray(vectors, dtype=float))
    return cosine_similarity(batch, batch)


def _maybe_squeeze(result: np.ndarray, first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Squeeze the output back to the natural rank of the inputs."""
    first_is_vector = np.asarray(first).ndim == 1
    second_is_vector = np.asarray(second).ndim == 1
    if first_is_vector and second_is_vector:
        return float(result[0, 0])
    if first_is_vector:
        return result[0]
    if second_is_vector:
        return result[:, 0]
    return result
