"""Similarity metrics between hypervectors.

The paper's Equation (1) defines the similarity between two hypervectors as
normalised dot product (cosine similarity):

.. math::

   \\delta(V_1, V_2) = \\frac{V_1^\\dagger V_2}{\\lVert V_1 \\rVert\\,\\lVert V_2 \\rVert}

All HDC classifiers in this repository compare encoded queries against class
hypervectors with :func:`cosine_similarity`.  Hamming similarity is provided
for binary/bipolar models.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity",
    "dot_similarity",
    "hamming_similarity",
    "packed_hamming_similarity",
    "pairwise_cosine",
    "popcount_rows",
]

_EPS = 1e-12

#: NumPy >= 2 ships a vectorised popcount ufunc; older versions fall back to
#: a 16-bit lookup table (built lazily, 64 KiB once per process).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_POPCOUNT_TABLE: np.ndarray | None = None


def _popcount_table() -> np.ndarray:
    """65536-entry ``uint8`` table of 16-bit popcounts (lazy, cached)."""
    global _POPCOUNT_TABLE
    if _POPCOUNT_TABLE is None:
        bits = np.unpackbits(np.arange(65536, dtype=">u2").view(np.uint8))
        _POPCOUNT_TABLE = bits.reshape(65536, 16).sum(axis=1).astype(np.uint8)
    return _POPCOUNT_TABLE


def _popcount_rows_lut(words: np.ndarray) -> np.ndarray:
    """Lookup-table popcount row reduction over ``uint8`` words.

    Adjacent byte pairs index the 16-bit table in one gather; an odd trailing
    byte indexes the same table directly (its high byte is implicitly zero).
    """
    width = words.shape[-1]
    table = _popcount_table()
    even = width - (width % 2)
    pairs = (words[..., :even:2].astype(np.uint16) << 8) | words[..., 1:even:2]
    counts = table[pairs].sum(axis=-1, dtype=np.int64)
    if width % 2:
        counts = counts + table[words[..., -1]].astype(np.int64)
    return counts


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Total number of set bits per row (summed over the last axis).

    Accepts any unsigned-integer array; uses :func:`numpy.bitwise_count` when
    available and an exact 16-bit lookup-table fallback otherwise
    (property-tested equal in ``tests/test_quant_engine.py``).
    """
    words = np.asarray(words)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    flat = np.ascontiguousarray(words)
    as_bytes = flat.view(np.uint8).reshape(*flat.shape[:-1], -1)
    return _popcount_rows_lut(as_bytes)


def _prepare(first: np.ndarray, second: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    lhs = np.atleast_2d(np.asarray(first, dtype=float))
    rhs = np.atleast_2d(np.asarray(second, dtype=float))
    if lhs.shape[1] != rhs.shape[1]:
        raise ValueError(f"dimension mismatch: {lhs.shape[1]} vs {rhs.shape[1]}")
    return lhs, rhs


def dot_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Plain dot-product similarity between batches of hypervectors.

    ``first`` has shape ``(n, dim)`` (or ``(dim,)``) and ``second`` has shape
    ``(m, dim)`` (or ``(dim,)``).  The result has shape ``(n, m)`` and is
    squeezed to a scalar when both inputs are single hypervectors.
    """
    lhs, rhs = _prepare(first, second)
    result = lhs @ rhs.T
    return _maybe_squeeze(result, first, second)


def packed_hamming_similarity(
    first_packed: np.ndarray, second_packed: np.ndarray, dim: int
) -> np.ndarray:
    """Hamming similarity on :func:`~repro.hdc.hypervector.pack_signs` words.

    Operates entirely in the integer domain: mismatching sign bits are
    counted with XOR + popcount on the packed ``uint8`` rows, and the match
    fraction is ``(dim - mismatches) / dim``.  ``dim`` must be the *unpadded*
    hypervector length — the packed rows are ``ceil(dim / 8)`` bytes, and the
    zero pad bits of the final byte cancel in the XOR (0 ^ 0 = 0), so they
    never count as matches or mismatches.

    Bit-identical to :func:`hamming_similarity` on the unpacked sign
    patterns: both reduce to the correctly rounded float64 quotient of the
    exact integers ``matches`` and ``dim`` (hypothesis-tested in
    ``tests/test_quant_engine.py``, including dims not divisible by 8).
    """
    lhs = np.atleast_2d(np.asarray(first_packed, dtype=np.uint8))
    rhs = np.atleast_2d(np.asarray(second_packed, dtype=np.uint8))
    if lhs.shape[-1] != rhs.shape[-1]:
        raise ValueError(f"packed width mismatch: {lhs.shape[-1]} vs {rhs.shape[-1]}")
    width = (int(dim) + 7) // 8
    if dim < 1 or lhs.shape[-1] != width:
        raise ValueError(
            f"packed width {lhs.shape[-1]} does not match dim={dim} "
            f"(expected {width} bytes per row)"
        )
    # Row-chunk the (n, m, width) XOR tensor so huge batches stay bounded.
    n, m = lhs.shape[0], rhs.shape[0]
    mismatches = np.empty((n, m), dtype=np.int64)
    rows = max(1, (1 << 24) // max(1, m * width))
    for start in range(0, n, rows):
        block = lhs[start : start + rows]
        mismatches[start : start + rows] = popcount_rows(
            block[:, None, :] ^ rhs[None, :, :]
        )
    matches = (dim - mismatches) / dim
    return _maybe_squeeze(matches, first_packed, second_packed)


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Cosine similarity (Equation 1) between batches of hypervectors.

    The 1-vs-many case (a single float64 query against a float64 reference
    matrix — the shape of every per-sample adaptive update and every
    single-window serving score) takes a fast path that skips the
    ``atleast_2d``/dtype-coercion plumbing.  It performs the *same*
    ``(1, dim) @ (dim, m)`` matmul, row norms, clip and division as the
    general path, so the result is bit-identical — asserted in
    ``tests/test_similarity.py``.
    """
    if (
        type(first) is np.ndarray
        and type(second) is np.ndarray
        and first.dtype == np.float64
        and second.dtype == np.float64
        and first.ndim == 1
        and second.ndim == 2
        and first.shape[0] == second.shape[1]
    ):
        lhs = first[None, :]
        lhs_norm = np.linalg.norm(lhs, axis=1)
        rhs_norm = np.linalg.norm(second, axis=1)
        denominator = np.maximum(lhs_norm[0] * rhs_norm, _EPS)
        return (lhs @ second.T)[0] / denominator
    lhs, rhs = _prepare(first, second)
    lhs_norm = np.linalg.norm(lhs, axis=1, keepdims=True)
    rhs_norm = np.linalg.norm(rhs, axis=1, keepdims=True)
    denominator = np.maximum(lhs_norm @ rhs_norm.T, _EPS)
    result = (lhs @ rhs.T) / denominator
    return _maybe_squeeze(result, first, second)


def hamming_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Fraction of matching elements between quantized hypervectors.

    Inputs are interpreted as sign patterns: any non-negative element counts
    as +1 and any negative element as -1, so the metric works for bipolar,
    binary and real-valued hypervectors alike.

    Computed as a sign matmul: for ±1 sign batches, ``S_l @ S_r.T`` counts
    ``matches − mismatches``, so the match fraction is ``(dim + S_l @
    S_r.T) / (2 · dim)``.  A broadcast comparison would materialise the full
    ``(n, m, dim)`` boolean tensor — ~6 GB for two 1024-row batches at the
    paper's ``D_total = 10000`` — where the matmul needs only the ``(n, m)``
    result.  Both numerator and denominator are exact integers in float64
    (for any realistic ``dim``), and IEEE division is correctly rounded, so
    the value is bit-identical to the mean-of-booleans formulation.

    The normalising ``dim`` is always the *unpadded* hypervector length of
    the float inputs.  When interoperating with bit-packed sign rows
    (:func:`packed_hamming_similarity`), pass that same unpadded ``dim`` —
    never ``8 * packed_width`` — or the zero pad bits of the final packed
    byte would be silently counted as matching elements.
    """
    lhs, rhs = _prepare(first, second)
    dim = lhs.shape[1]
    lhs_sign = np.where(lhs >= 0.0, 1.0, -1.0)
    rhs_sign = np.where(rhs >= 0.0, 1.0, -1.0)
    matches = (dim + lhs_sign @ rhs_sign.T) / (2.0 * dim)
    return _maybe_squeeze(matches, first, second)


def pairwise_cosine(vectors: np.ndarray) -> np.ndarray:
    """Symmetric cosine-similarity matrix of a batch of hypervectors."""
    batch = np.atleast_2d(np.asarray(vectors, dtype=float))
    return cosine_similarity(batch, batch)


def _maybe_squeeze(result: np.ndarray, first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Squeeze the output back to the natural rank of the inputs."""
    first_is_vector = np.asarray(first).ndim == 1
    second_is_vector = np.asarray(second).ndim == 1
    if first_is_vector and second_is_vector:
        return float(result[0, 0])
    if first_is_vector:
        return result[0]
    if second_is_vector:
        return result[:, 0]
    return result
