"""Similarity metrics between hypervectors.

The paper's Equation (1) defines the similarity between two hypervectors as
normalised dot product (cosine similarity):

.. math::

   \\delta(V_1, V_2) = \\frac{V_1^\\dagger V_2}{\\lVert V_1 \\rVert\\,\\lVert V_2 \\rVert}

All HDC classifiers in this repository compare encoded queries against class
hypervectors with :func:`cosine_similarity`.  Hamming similarity is provided
for binary/bipolar models.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity",
    "dot_similarity",
    "hamming_similarity",
    "pairwise_cosine",
]

_EPS = 1e-12


def _prepare(first: np.ndarray, second: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    lhs = np.atleast_2d(np.asarray(first, dtype=float))
    rhs = np.atleast_2d(np.asarray(second, dtype=float))
    if lhs.shape[1] != rhs.shape[1]:
        raise ValueError(f"dimension mismatch: {lhs.shape[1]} vs {rhs.shape[1]}")
    return lhs, rhs


def dot_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Plain dot-product similarity between batches of hypervectors.

    ``first`` has shape ``(n, dim)`` (or ``(dim,)``) and ``second`` has shape
    ``(m, dim)`` (or ``(dim,)``).  The result has shape ``(n, m)`` and is
    squeezed to a scalar when both inputs are single hypervectors.
    """
    lhs, rhs = _prepare(first, second)
    result = lhs @ rhs.T
    return _maybe_squeeze(result, first, second)


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Cosine similarity (Equation 1) between batches of hypervectors.

    The 1-vs-many case (a single float64 query against a float64 reference
    matrix — the shape of every per-sample adaptive update and every
    single-window serving score) takes a fast path that skips the
    ``atleast_2d``/dtype-coercion plumbing.  It performs the *same*
    ``(1, dim) @ (dim, m)`` matmul, row norms, clip and division as the
    general path, so the result is bit-identical — asserted in
    ``tests/test_similarity.py``.
    """
    if (
        type(first) is np.ndarray
        and type(second) is np.ndarray
        and first.dtype == np.float64
        and second.dtype == np.float64
        and first.ndim == 1
        and second.ndim == 2
        and first.shape[0] == second.shape[1]
    ):
        lhs = first[None, :]
        lhs_norm = np.linalg.norm(lhs, axis=1)
        rhs_norm = np.linalg.norm(second, axis=1)
        denominator = np.maximum(lhs_norm[0] * rhs_norm, _EPS)
        return (lhs @ second.T)[0] / denominator
    lhs, rhs = _prepare(first, second)
    lhs_norm = np.linalg.norm(lhs, axis=1, keepdims=True)
    rhs_norm = np.linalg.norm(rhs, axis=1, keepdims=True)
    denominator = np.maximum(lhs_norm @ rhs_norm.T, _EPS)
    result = (lhs @ rhs.T) / denominator
    return _maybe_squeeze(result, first, second)


def hamming_similarity(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Fraction of matching elements between quantized hypervectors.

    Inputs are interpreted as sign patterns: any non-negative element counts
    as +1 and any negative element as -1, so the metric works for bipolar,
    binary and real-valued hypervectors alike.

    Computed as a sign matmul: for ±1 sign batches, ``S_l @ S_r.T`` counts
    ``matches − mismatches``, so the match fraction is ``(dim + S_l @
    S_r.T) / (2 · dim)``.  A broadcast comparison would materialise the full
    ``(n, m, dim)`` boolean tensor — ~6 GB for two 1024-row batches at the
    paper's ``D_total = 10000`` — where the matmul needs only the ``(n, m)``
    result.  Both numerator and denominator are exact integers in float64
    (for any realistic ``dim``), and IEEE division is correctly rounded, so
    the value is bit-identical to the mean-of-booleans formulation.
    """
    lhs, rhs = _prepare(first, second)
    dim = lhs.shape[1]
    lhs_sign = np.where(lhs >= 0.0, 1.0, -1.0)
    rhs_sign = np.where(rhs >= 0.0, 1.0, -1.0)
    matches = (dim + lhs_sign @ rhs_sign.T) / (2.0 * dim)
    return _maybe_squeeze(matches, first, second)


def pairwise_cosine(vectors: np.ndarray) -> np.ndarray:
    """Symmetric cosine-similarity matrix of a batch of hypervectors."""
    batch = np.atleast_2d(np.asarray(vectors, dtype=float))
    return cosine_similarity(batch, batch)


def _maybe_squeeze(result: np.ndarray, first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Squeeze the output back to the natural rank of the inputs."""
    first_is_vector = np.asarray(first).ndim == 1
    second_is_vector = np.asarray(second).ndim == 1
    if first_is_vector and second_is_vector:
        return float(result[0, 0])
    if first_is_vector:
        return result[0]
    if second_is_vector:
        return result[:, 0]
    return result
