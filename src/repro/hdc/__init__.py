"""Hyperdimensional computing substrate.

This subpackage implements the HDC machinery the paper builds on: hypervector
algebra (bundle/bind/permute), similarity metrics, feature encoders (the
OnlineHD nonlinear cos·sin encoder plus a classic record-based encoder), the
single-pass centroid classifier, the OnlineHD adaptive classifier that BoostHD
uses as its weak learner, and model quantisation utilities.
"""

from .centroid import CentroidHD
from .encoder import (
    Encoder,
    LevelIdEncoder,
    NonlinearEncoder,
    ProjectionParams,
    SlicedEncoder,
)
from .hypervector import (
    as_batch,
    binarize,
    bind,
    bipolarize,
    bundle,
    hard_quantize,
    normalize,
    pack_signs,
    permute,
    random_hypervector,
    unpack_signs,
)
from .onlinehd import OnlineHD
from .quantize import (
    FixedPointFormat,
    from_fixed_point,
    quantize_codes,
    quantize_model,
    to_fixed_point,
)
from .similarity import (
    cosine_similarity,
    dot_similarity,
    hamming_similarity,
    packed_hamming_similarity,
    pairwise_cosine,
    popcount_rows,
)

__all__ = [
    "CentroidHD",
    "Encoder",
    "LevelIdEncoder",
    "NonlinearEncoder",
    "ProjectionParams",
    "SlicedEncoder",
    "OnlineHD",
    "FixedPointFormat",
    "from_fixed_point",
    "quantize_codes",
    "quantize_model",
    "to_fixed_point",
    "as_batch",
    "binarize",
    "bind",
    "bipolarize",
    "bundle",
    "hard_quantize",
    "normalize",
    "pack_signs",
    "permute",
    "random_hypervector",
    "unpack_signs",
    "cosine_similarity",
    "dot_similarity",
    "hamming_similarity",
    "packed_hamming_similarity",
    "pairwise_cosine",
    "popcount_rows",
]
