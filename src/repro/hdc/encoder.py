"""Encoders that map feature vectors into hyperdimensional space.

The paper (Section II-C) uses the OnlineHD-style *nonlinear* encoder: features
are multiplied by a Gaussian random projection matrix and passed through
trigonometric activation functions.  For an input ``x`` of dimension ``f`` and
a target hyperdimension ``D``::

    h_i = cos(w_i . x + b_i) * sin(w_i . x)          with  w_i ~ N(0, 1)^f,  b_i ~ U(0, 2*pi)

This is a random-Fourier-feature style mapping whose projection matrix plays
the role of the Gaussian kernel analysed by the Marchenko–Pastur theory in
:mod:`repro.core.theory`.

Two additional classic HDC encoders are provided:

* :class:`LevelIdEncoder` — record-based encoding that binds per-feature ID
  hypervectors with quantized level hypervectors and bundles the result.
* :class:`SlicedEncoder` — a view of a contiguous dimension slice of another
  encoder; used by the partitioning ablation in which BoostHD weak learners
  share a single ``D_total`` projection instead of drawing independent ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple

import numpy as np

from .hypervector import random_hypervector

__all__ = [
    "Encoder",
    "NonlinearEncoder",
    "LevelIdEncoder",
    "SlicedEncoder",
    "ProjectionParams",
]


class ProjectionParams(NamedTuple):
    """Linear-algebra internals of a trigonometric random-projection encoder.

    ``basis`` is the *pre-scaled* projection matrix of shape ``(dim,
    in_features)`` (bandwidth normalisation already folded in) and ``bias`` the
    phase vector of shape ``(dim,)``, so that the encoding of a batch ``X`` is
    exactly ``cos(X @ basis.T + bias) * sin(X @ basis.T)``.  The fused
    inference engine (:mod:`repro.engine`) stacks these blocks from every weak
    learner into one projection and encodes a batch once for the whole
    ensemble.
    """

    basis: np.ndarray
    bias: np.ndarray


class Encoder(ABC):
    """Abstract mapping from feature space to hyperdimensional space.

    Concrete encoders expose ``dim`` (output hyperdimension), ``in_features``
    (expected input width) and :meth:`encode`, which accepts a single sample
    ``(f,)`` or a batch ``(n, f)`` and returns hypervectors of matching rank.
    """

    #: Output hyperdimensionality.
    dim: int
    #: Expected number of input features.
    in_features: int

    @abstractmethod
    def encode(self, features: np.ndarray) -> np.ndarray:
        """Encode features into hypervectors."""

    def __call__(self, features: np.ndarray) -> np.ndarray:
        return self.encode(features)

    def _validate(self, features: np.ndarray) -> tuple[np.ndarray, bool]:
        """Coerce input to a 2-D batch, remembering whether it was a vector."""
        array = np.asarray(features, dtype=float)
        single = array.ndim == 1
        batch = array[None, :] if single else array
        if batch.ndim != 2:
            raise ValueError(f"expected 1-D or 2-D features, got ndim={array.ndim}")
        if batch.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} features, got {batch.shape[1]}"
            )
        return batch, single


class NonlinearEncoder(Encoder):
    """OnlineHD nonlinear encoder: Gaussian projection + cos·sin activation.

    Parameters
    ----------
    in_features:
        Number of input features.
    dim:
        Hyperdimensionality ``D`` of the output space.
    bandwidth:
        Kernel bandwidth of the random-Fourier-feature projection.  The raw
        projection ``xW^T`` is divided by ``bandwidth * sqrt(in_features)``
        so that, for standardised features, the argument of the trigonometric
        activations has unit-order variance regardless of the feature count —
        otherwise the implied Gaussian kernel becomes so narrow that encoded
        samples are mutually orthogonal and the model cannot generalise.
    rng:
        Seed or generator controlling the random projection.

    Notes
    -----
    The projection matrix ``basis`` has shape ``(dim, in_features)`` with
    entries drawn from N(0, 1) (the paper's configuration), and ``bias`` is
    uniform on ``[0, 2π)``.  Both are fixed at construction time, so encoding
    is deterministic afterwards.
    """

    def __init__(
        self,
        in_features: int,
        dim: int,
        *,
        bandwidth: float = 1.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if in_features <= 0:
            raise ValueError(f"in_features must be positive, got {in_features}")
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        generator = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        self.in_features = int(in_features)
        self.dim = int(dim)
        self.bandwidth = float(bandwidth)
        self.basis = generator.standard_normal((self.dim, self.in_features))
        self.bias = generator.uniform(0.0, 2.0 * np.pi, size=self.dim)

    @classmethod
    def from_params(
        cls, basis: np.ndarray, bias: np.ndarray, *, bandwidth: float = 1.0
    ) -> "NonlinearEncoder":
        """Rebuild an encoder from stored *raw* projection parameters.

        ``basis`` is the un-scaled ``(dim, in_features)`` projection matrix
        (i.e. :attr:`basis`, not the pre-scaled form returned by
        :meth:`projection_params`) and ``bias`` the phase vector.  Used by the
        model registry (:mod:`repro.serving.registry`) to reconstruct a fitted
        model's encoder exactly — no random draws are made, so the rebuilt
        encoder's :meth:`encode` is bit-identical to the original's.
        """
        basis = np.array(basis, dtype=np.float64)
        bias = np.array(bias, dtype=np.float64)
        if basis.ndim != 2:
            raise ValueError(f"basis must be 2-D (dim, in_features), got ndim={basis.ndim}")
        if bias.shape != (basis.shape[0],):
            raise ValueError(
                f"bias shape {bias.shape} does not match basis rows {basis.shape[0]}"
            )
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        encoder = cls.__new__(cls)
        encoder.in_features = int(basis.shape[1])
        encoder.dim = int(basis.shape[0])
        encoder.bandwidth = float(bandwidth)
        encoder.basis = basis
        encoder.bias = bias
        return encoder

    @property
    def _projection_scale(self) -> float:
        return 1.0 / (self.bandwidth * np.sqrt(self.in_features))

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Map features to hypervectors ``cos(xW^T + b) * sin(xW^T)``."""
        batch, single = self._validate(features)
        projected = batch @ self.basis.T * self._projection_scale
        encoded = np.cos(projected + self.bias) * np.sin(projected)
        return encoded[0] if single else encoded

    def slice(self, start: int, stop: int) -> "SlicedEncoder":
        """Return a view encoder restricted to dimensions ``[start, stop)``."""
        return SlicedEncoder(self, start, stop)

    def projection_params(self) -> ProjectionParams:
        """Stackable ``(basis, bias)`` with the bandwidth scale folded in.

        The returned basis is ``self.basis * _projection_scale``, so consumers
        can compute ``X @ basis.T`` directly without knowing the bandwidth.
        """
        return ProjectionParams(
            basis=self.basis * self._projection_scale, bias=self.bias.copy()
        )


class SlicedEncoder(Encoder):
    """Encoder exposing a contiguous dimension slice of a parent encoder.

    Used for the "shared projection" partitioning strategy: weak learner ``i``
    sees dimensions ``[i * D/n, (i+1) * D/n)`` of one ``D_total`` encoder.
    """

    def __init__(self, parent: Encoder, start: int, stop: int) -> None:
        if not 0 <= start < stop <= parent.dim:
            raise ValueError(
                f"invalid slice [{start}, {stop}) for parent dim {parent.dim}"
            )
        self.parent = parent
        self.start = int(start)
        self.stop = int(stop)
        self.dim = self.stop - self.start
        self.in_features = parent.in_features

    def encode(self, features: np.ndarray) -> np.ndarray:
        encoded = self.parent.encode(features)
        return encoded[..., self.start : self.stop]

    def flatten(self) -> tuple[Encoder, int, int]:
        """Resolve nested slices to ``(root_encoder, start, stop)``.

        A slice of a slice collapses into a single offset into the innermost
        non-sliced encoder, which is what the fused engine needs both to
        extract the right projection rows and to detect when several weak
        learners share one parent projection.
        """
        encoder: Encoder = self
        start, stop = self.start, self.stop
        while isinstance(encoder, SlicedEncoder):
            parent = encoder.parent
            if isinstance(parent, SlicedEncoder):
                start += parent.start
                stop += parent.start
            encoder = parent
        return encoder, start, stop

    def projection_params(self) -> ProjectionParams:
        """Projection rows ``[start, stop)`` of the flattened root encoder."""
        root, start, stop = self.flatten()
        if not hasattr(root, "projection_params"):
            raise TypeError(
                f"{type(root).__name__} does not expose projection parameters; "
                "only trigonometric random-projection encoders can be fused"
            )
        basis, bias = root.projection_params()
        return ProjectionParams(basis=basis[start:stop], bias=bias[start:stop])


class LevelIdEncoder(Encoder):
    """Record-based encoder with ID/level hypervector binding.

    Each feature ``j`` owns a random bipolar *ID* hypervector; feature values
    are quantized into ``levels`` correlated *level* hypervectors (neighbouring
    levels share most of their elements).  A sample is encoded as the bundle of
    ``bind(id_j, level(x_j))`` over features, which is the classic "record"
    encoding used throughout the HDC literature.

    Parameters
    ----------
    in_features:
        Number of input features.
    dim:
        Hyperdimensionality of the output.
    levels:
        Number of quantization levels for feature values.
    feature_range:
        Expected ``(low, high)`` range of feature values; values outside are
        clipped.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        in_features: int,
        dim: int,
        *,
        levels: int = 32,
        feature_range: tuple[float, float] = (0.0, 1.0),
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if levels < 2:
            raise ValueError(f"levels must be >= 2, got {levels}")
        low, high = feature_range
        if not high > low:
            raise ValueError(f"feature_range must satisfy high > low, got {feature_range}")
        generator = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        self.in_features = int(in_features)
        self.dim = int(dim)
        self.levels = int(levels)
        self.feature_range = (float(low), float(high))
        self.id_vectors = random_hypervector(
            self.dim, self.in_features, flavour="bipolar", rng=generator
        )
        self.level_vectors = self._build_level_vectors(generator)

    def _build_level_vectors(self, generator: np.random.Generator) -> np.ndarray:
        """Create correlated level hypervectors by progressive bit flipping."""
        base = random_hypervector(self.dim, flavour="bipolar", rng=generator)
        flips_per_level = self.dim // max(self.levels - 1, 1)
        order = generator.permutation(self.dim)
        levels = np.empty((self.levels, self.dim))
        current = base.copy()
        levels[0] = current
        for level in range(1, self.levels):
            start = (level - 1) * flips_per_level
            stop = min(level * flips_per_level, self.dim)
            current = current.copy()
            current[order[start:stop]] *= -1.0
            levels[level] = current
        return levels

    def _quantize(self, batch: np.ndarray) -> np.ndarray:
        low, high = self.feature_range
        clipped = np.clip(batch, low, high)
        scaled = (clipped - low) / (high - low)
        return np.minimum((scaled * self.levels).astype(int), self.levels - 1)

    def encode(self, features: np.ndarray) -> np.ndarray:
        batch, single = self._validate(features)
        level_index = self._quantize(batch)
        # bind(id_j, level(x_j)) summed over features, vectorised over samples
        encoded = np.einsum(
            "fd,nfd->nd", self.id_vectors, self.level_vectors[level_index]
        )
        return encoded[0] if single else encoded
