"""Hypervector primitives.

Hyperdimensional computing (HDC) represents information as very wide vectors
("hypervectors") and manipulates them with a small algebra:

* **bundling** (element-wise addition) superimposes hypervectors so that the
  result stays similar to each operand — this is the memorisation primitive,
* **binding** (element-wise multiplication) associates hypervectors and
  produces a result that is quasi-orthogonal to its operands,
* **permutation** (cyclic shift) encodes order/position.

The functions in this module operate on plain ``numpy`` arrays.  A hypervector
is a 1-D array of length ``dim``; batches of hypervectors are 2-D arrays of
shape ``(n, dim)``.  Three flavours of random hypervectors are supported:

* ``"gaussian"``  — dense real values drawn from N(0, 1),
* ``"bipolar"``   — entries in {-1, +1},
* ``"binary"``    — entries in {0, 1}.

These are the building blocks used by :mod:`repro.hdc.encoder` and the
classifiers built on top of it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "random_hypervector",
    "bundle",
    "bind",
    "permute",
    "normalize",
    "bipolarize",
    "binarize",
    "hard_quantize",
    "pack_signs",
    "unpack_signs",
    "as_batch",
]

_FLAVOURS = ("gaussian", "bipolar", "binary")


def _as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed or
    ``None`` (fresh nondeterministic generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_hypervector(
    dim: int,
    count: int | None = None,
    *,
    flavour: str = "gaussian",
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw random hypervectors.

    Parameters
    ----------
    dim:
        Dimensionality of each hypervector.  Must be positive.
    count:
        Number of hypervectors.  ``None`` returns a single 1-D hypervector;
        an integer returns a ``(count, dim)`` batch.
    flavour:
        ``"gaussian"`` (default), ``"bipolar"`` or ``"binary"``.
    rng:
        Seed or generator for reproducibility.

    Returns
    -------
    numpy.ndarray
        A float64 array of shape ``(dim,)`` or ``(count, dim)``.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if count is not None and count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if flavour not in _FLAVOURS:
        raise ValueError(f"flavour must be one of {_FLAVOURS}, got {flavour!r}")

    generator = _as_rng(rng)
    shape = (dim,) if count is None else (count, dim)
    if flavour == "gaussian":
        return generator.standard_normal(shape)
    if flavour == "bipolar":
        return generator.choice(np.array([-1.0, 1.0]), size=shape)
    return generator.integers(0, 2, size=shape).astype(float)


def as_batch(vectors: Iterable[np.ndarray] | np.ndarray) -> np.ndarray:
    """Stack hypervectors into a 2-D ``(n, dim)`` batch.

    A single 1-D hypervector becomes a batch of one.  All hypervectors must
    share the same dimensionality.
    """
    array = np.asarray(vectors, dtype=float)
    if array.ndim == 1:
        return array[None, :]
    if array.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got ndim={array.ndim}")
    return array


def bundle(vectors: Iterable[np.ndarray] | np.ndarray, weights: Sequence[float] | np.ndarray | None = None) -> np.ndarray:
    """Bundle (superimpose) hypervectors by weighted element-wise addition.

    Bundling is the HDC memorisation primitive: the bundled hypervector stays
    similar (high cosine similarity) to each of its operands.

    Parameters
    ----------
    vectors:
        Hypervectors to bundle, shape ``(n, dim)`` or an iterable of 1-D
        hypervectors.
    weights:
        Optional per-hypervector weights of length ``n``.

    Returns
    -------
    numpy.ndarray
        The bundled hypervector of shape ``(dim,)``.
    """
    batch = as_batch(vectors)
    if batch.shape[0] == 0:
        raise ValueError("cannot bundle an empty set of hypervectors")
    if weights is None:
        return batch.sum(axis=0)
    weight_array = np.asarray(weights, dtype=float)
    if weight_array.shape != (batch.shape[0],):
        raise ValueError(
            f"weights must have shape ({batch.shape[0]},), got {weight_array.shape}"
        )
    return weight_array @ batch


def bind(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Bind two hypervectors by element-wise multiplication.

    The bound hypervector is quasi-orthogonal to both operands, which makes
    binding suitable for associating key/value pairs.
    """
    lhs = np.asarray(first, dtype=float)
    rhs = np.asarray(second, dtype=float)
    if lhs.shape[-1] != rhs.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {lhs.shape[-1]} vs {rhs.shape[-1]}"
        )
    return lhs * rhs


def permute(vector: np.ndarray, shifts: int = 1) -> np.ndarray:
    """Cyclically shift a hypervector to encode sequence position."""
    array = np.asarray(vector, dtype=float)
    return np.roll(array, shifts, axis=-1)


def normalize(vector: np.ndarray, *, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Scale hypervectors to unit L2 norm along ``axis``.

    Zero hypervectors are returned unchanged (instead of dividing by zero).
    """
    array = np.asarray(vector, dtype=float)
    norms = np.linalg.norm(array, axis=axis, keepdims=True)
    safe = np.where(norms < eps, 1.0, norms)
    return array / safe


def bipolarize(vector: np.ndarray) -> np.ndarray:
    """Quantize a hypervector to {-1, +1} using the sign of each element.

    Zeros map to +1 so that the output is always a valid bipolar hypervector.
    """
    array = np.asarray(vector, dtype=float)
    return np.where(array >= 0.0, 1.0, -1.0)


def pack_signs(vectors: np.ndarray) -> np.ndarray:
    """Bit-pack the sign pattern of hypervectors into ``uint8`` words.

    Bit ``j`` of a row is 1 where element ``j`` is non-negative and 0 where it
    is negative — the same zero-maps-to-+1 convention as :func:`bipolarize`,
    so ``pack_signs(v)`` is the 1-bit storage form of ``bipolarize(v)``.  Each
    ``dim``-element row packs to ``ceil(dim / 8)`` bytes (a 64x reduction over
    float64); when ``dim`` is not a multiple of 8 the final byte is
    zero-padded, and consumers must carry the *unpadded* ``dim`` alongside the
    packed words (see :func:`repro.hdc.similarity.packed_hamming_similarity`).

    Accepts a single hypervector ``(dim,)`` or a batch ``(n, dim)`` and
    returns the packed words with the matching leading shape.
    """
    array = np.asarray(vectors)
    if array.ndim not in (1, 2):
        raise ValueError(f"expected a 1-D or 2-D array, got ndim={array.ndim}")
    if array.shape[-1] == 0:
        raise ValueError("cannot pack zero-dimensional hypervectors")
    return np.packbits(array >= 0, axis=-1)


def unpack_signs(packed: np.ndarray, dim: int) -> np.ndarray:
    """Unpack :func:`pack_signs` words back to float ±1 hypervectors.

    ``dim`` is the unpadded hypervector length; pad bits in the final byte
    are discarded.  Round trip: ``unpack_signs(pack_signs(v), v.shape[-1])``
    equals ``bipolarize(v)`` exactly.
    """
    array = np.asarray(packed, dtype=np.uint8)
    if array.ndim not in (1, 2):
        raise ValueError(f"expected a 1-D or 2-D array, got ndim={array.ndim}")
    width = (int(dim) + 7) // 8
    if dim < 1 or array.shape[-1] != width:
        raise ValueError(
            f"packed width {array.shape[-1]} does not match dim={dim} "
            f"(expected {width} bytes per row)"
        )
    bits = np.unpackbits(array, axis=-1)[..., :dim]
    return np.where(bits > 0, 1.0, -1.0)


def binarize(vector: np.ndarray) -> np.ndarray:
    """Quantize a hypervector to {0, 1} by thresholding at zero."""
    array = np.asarray(vector, dtype=float)
    return (array >= 0.0).astype(float)


def hard_quantize(vector: np.ndarray, *, scheme: str = "bipolar") -> np.ndarray:
    """Quantize with the requested ``scheme`` (``"bipolar"`` or ``"binary"``)."""
    if scheme == "bipolar":
        return bipolarize(vector)
    if scheme == "binary":
        return binarize(vector)
    raise ValueError(f"unknown quantization scheme {scheme!r}")
