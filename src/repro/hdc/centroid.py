"""Baseline single-pass centroid HDC classifier.

The simplest HDC classifier bundles every encoded training sample into its
class hypervector (one pass, no error feedback) and predicts by cosine
similarity.  OnlineHD (:mod:`repro.hdc.onlinehd`) refines this with adaptive,
similarity-weighted updates; the centroid model is kept as a reference point
and as the initialisation used by OnlineHD's first pass.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import BaseClassifier
from .encoder import Encoder, NonlinearEncoder
from .similarity import cosine_similarity

__all__ = ["CentroidHD"]


class CentroidHD(BaseClassifier):
    """Single-pass bundling ("centroid") hyperdimensional classifier.

    Parameters
    ----------
    dim:
        Hyperdimensionality ``D``.
    bandwidth:
        Kernel bandwidth of the default nonlinear encoder (ignored when an
        explicit ``encoder`` is supplied).
    encoder:
        Optional pre-built encoder.  When omitted a :class:`NonlinearEncoder`
        is created at fit time for the observed number of features.
    seed:
        Seed controlling the random encoder.
    """

    def __init__(
        self,
        dim: int = 1000,
        *,
        bandwidth: float = 1.5,
        encoder: Encoder | None = None,
        seed: int | None = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.dim = int(dim)
        self.bandwidth = float(bandwidth)
        self.encoder = encoder
        self.seed = seed
        self.class_hypervectors_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def _ensure_encoder(self, n_features: int) -> Encoder:
        if self.encoder is None:
            self.encoder = NonlinearEncoder(
                n_features, self.dim, bandwidth=self.bandwidth, rng=self.seed
            )
        return self.encoder

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "CentroidHD":
        """Bundle encoded samples per class, optionally weighted."""
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        encoder = self._ensure_encoder(X.shape[1])
        encoded = encoder.encode(X)
        self.classes_ = np.unique(y)
        hypervectors = np.zeros((len(self.classes_), encoder.dim))
        for index, label in enumerate(self.classes_):
            mask = y == label
            hypervectors[index] = (weights[mask, None] * encoded[mask]).sum(axis=0)
        self.class_hypervectors_ = hypervectors
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Cosine similarity of each query against each class hypervector."""
        self._check_fitted("class_hypervectors_")
        X = self._validate_predict_args(X)
        encoded = self.encoder.encode(X)
        return cosine_similarity(encoded, self.class_hypervectors_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
