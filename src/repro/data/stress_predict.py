"""Synthetic Stress-Predict-like dataset.

The real Stress-Predict dataset [Iqbal et al., 2022] is a pilot study with 15
participants wearing an Empatica E4 through a series of stressor tasks, with
the same reduced three-level labels (good / common / stress).  Accuracies in
the paper sit in the 65–68 % band — harder than WESAD, easier than the nurse
field study — so the synthetic analogue uses intermediate class overlap and
noise.
"""

from __future__ import annotations

import numpy as np

from .loaders import SubjectRecord, TabularDataset, generate_subject_dataset
from .signals import STRESS_LEVEL_STATES, SignalSimulator

__all__ = ["load_stress_predict"]


def load_stress_predict(
    *,
    n_subjects: int = 15,
    windows_per_state: int = 20,
    window_seconds: float = 30.0,
    sampling_rate: float = 32.0,
    seed: int | None = 2,
) -> TabularDataset:
    """Generate the Stress-Predict-like dataset (moderate difficulty)."""
    rng = np.random.default_rng(seed)
    simulator = SignalSimulator(
        sampling_rate=sampling_rate,
        window_seconds=window_seconds,
        noise_level=2.0,
        class_overlap=0.55,
        rng=rng,
    )
    subjects = []
    for subject_id in range(n_subjects):
        subjects.append(
            SubjectRecord(
                subject_id=subject_id,
                hand="left" if rng.random() < 0.12 else "right",
                gender="female" if rng.random() < 0.5 else "male",
                age=int(np.clip(rng.normal(30.0, 7.0), 20, 55)),
                height=float(np.clip(rng.normal(172.0, 9.0), 150, 200)),
                physiology=simulator.random_subject(strength=1.3),
            )
        )
    return generate_subject_dataset(
        name="Stress-Predict (synthetic)",
        states=STRESS_LEVEL_STATES,
        subject_records=subjects,
        windows_per_state=windows_per_state,
        simulator=simulator,
    )
