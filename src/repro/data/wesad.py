"""Synthetic WESAD-like dataset (wearable stress & affect detection).

The real WESAD dataset [Schmidt et al., 2018] contains chest- and wrist-worn
recordings from 15 subjects across three affective states (baseline, stress,
amusement), with per-subject demographics collected in a questionnaire.  This
module generates a statistically analogous dataset:

* 15 subjects with demographic attributes (handedness, gender, age, height)
  drawn to roughly match the published cohort (graduate-student age range,
  mostly right-handed, mixed gender),
* demographics correlate with physiology (older subjects have slightly lower
  resting heart rate and more attenuated stress responses; taller subjects
  have slightly lower heart rates), so the person-specific groups of
  Table III genuinely behave differently,
* three classes with the WESAD affective states.
"""

from __future__ import annotations

import numpy as np

from .loaders import SubjectRecord, TabularDataset, generate_subject_dataset
from .signals import SignalSimulator, SubjectPhysiology, WESAD_STATES

__all__ = ["make_wesad_subjects", "load_wesad"]


def make_wesad_subjects(
    n_subjects: int = 15, *, rng: int | np.random.Generator | None = None
) -> list[SubjectRecord]:
    """Create WESAD-like subject records with correlated demographics/physiology."""
    if n_subjects < 2:
        raise ValueError("need at least two subjects")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    records = []
    for subject_id in range(n_subjects):
        gender = "female" if generator.random() < 0.4 else "male"
        hand = "left" if generator.random() < 0.2 else "right"
        age = int(np.clip(generator.normal(27.0, 4.0), 21, 40))
        base_height = 165.0 if gender == "female" else 178.0
        height = float(np.clip(generator.normal(base_height, 7.0), 150, 200))

        # Demographics → physiology couplings: these make the person-specific
        # groups of Table III behave differently without being degenerate.
        # Offsets are kept small because WESAD is a controlled lab study in
        # which every baseline model reaches >= 93 % accuracy.
        heart_rate_offset = generator.normal(0.0, 2.2) - 0.2 * (age - 27) - 0.04 * (height - 172)
        eda_offset = generator.normal(0.0, 0.45) + (0.2 if gender == "female" else 0.0)
        physiology = SubjectPhysiology(
            heart_rate_offset=float(heart_rate_offset),
            eda_offset=float(eda_offset),
            emg_offset=float(generator.normal(0.0, 0.022)),
            respiration_offset=float(generator.normal(0.0, 0.6)),
            temperature_offset=float(generator.normal(0.0, 0.18)),
            movement_offset=float(generator.normal(0.0, 0.011)),
            noise_scale=float(np.clip(generator.normal(1.0, 0.1), 0.7, 1.5)),
        )
        records.append(
            SubjectRecord(
                subject_id=subject_id,
                hand=hand,
                gender=gender,
                age=age,
                height=height,
                physiology=physiology,
            )
        )
    return records


def load_wesad(
    *,
    n_subjects: int = 15,
    windows_per_state: int = 25,
    window_seconds: float = 20.0,
    sampling_rate: float = 32.0,
    seed: int | None = 0,
) -> TabularDataset:
    """Generate the WESAD-like dataset used throughout the experiments.

    Classes are well separated (the paper reports ~93–98 % accuracy on WESAD),
    so ``class_overlap`` and ``noise_level`` are kept low.
    """
    rng = np.random.default_rng(seed)
    subjects = make_wesad_subjects(n_subjects, rng=rng)
    simulator = SignalSimulator(
        sampling_rate=sampling_rate,
        window_seconds=window_seconds,
        noise_level=0.9,
        class_overlap=0.03,
        rng=rng,
    )
    return generate_subject_dataset(
        name="WESAD (synthetic)",
        states=WESAD_STATES,
        subject_records=subjects,
        windows_per_state=windows_per_state,
        simulator=simulator,
    )
