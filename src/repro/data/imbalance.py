"""Imbalance induction for the overfitting experiment (Figure 7, Eq. 8).

The paper intentionally induces overfitting by shrinking the training data of
every class *except* a chosen target class:

.. math::

   D = \\begin{cases} x & \\text{if } y = C_{target} \\\\ x \\times r & \\text{if } y \\ne C_{target} \\end{cases}

i.e. non-target classes keep only a fraction ``r`` of their samples (the
paper sweeps ``r`` downward, so small ``r`` means severe imbalance).  Macro
accuracy is then used so minority-class collapse is visible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["imbalance_indices", "make_imbalanced"]


def imbalance_indices(
    y: np.ndarray,
    target_class: object,
    keep_fraction: float,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Indices implementing Equation 8.

    All samples of ``target_class`` are kept; every other class keeps a
    random ``keep_fraction`` of its samples (at least one, so no class
    disappears entirely).

    Parameters
    ----------
    y:
        Label array.
    target_class:
        The class whose samples are all retained (``C_target``).
    keep_fraction:
        The retention ratio ``r`` in ``[0, 1]`` applied to non-target classes.
    rng:
        Seed or generator controlling which samples are dropped.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1], got {keep_fraction}")
    y = np.asarray(y)
    if target_class not in np.unique(y):
        raise ValueError(f"target_class {target_class!r} not present in y")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    kept: list[np.ndarray] = []
    for label in np.unique(y):
        indices = np.flatnonzero(y == label)
        if label == target_class or keep_fraction >= 1.0:
            kept.append(indices)
            continue
        count = max(1, int(round(keep_fraction * len(indices))))
        kept.append(generator.choice(indices, size=count, replace=False))
    return np.sort(np.concatenate(kept))


def make_imbalanced(
    X: np.ndarray,
    y: np.ndarray,
    target_class: object,
    keep_fraction: float,
    *,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return the imbalanced ``(X, y)`` pair defined by Equation 8."""
    indices = imbalance_indices(y, target_class, keep_fraction, rng=rng)
    return np.asarray(X)[indices], np.asarray(y)[indices]
