"""Synthetic Nurse Stress-like dataset.

The real Nurse Stress dataset [Hosseini et al., 2022] contains Empatica E4
recordings from 37 hospital nurses during work shifts, with stress levels
reduced to three labels (good / common / stress).  Field recordings are far
noisier than the lab-controlled WESAD sessions — the paper reports only
~55–62 % accuracy for every model — so the synthetic analogue uses a much
larger class overlap and heavier measurement noise, plus longer windows (the
paper notes the "relatively large input vectors" of this dataset).
"""

from __future__ import annotations

import numpy as np

from .loaders import SubjectRecord, TabularDataset, generate_subject_dataset
from .signals import STRESS_LEVEL_STATES, SignalSimulator

__all__ = ["load_nurse_stress"]


def load_nurse_stress(
    *,
    n_subjects: int = 37,
    windows_per_state: int = 12,
    window_seconds: float = 40.0,
    sampling_rate: float = 32.0,
    seed: int | None = 1,
) -> TabularDataset:
    """Generate the Nurse-Stress-like dataset (hard, noisy, 37 subjects)."""
    rng = np.random.default_rng(seed)
    simulator = SignalSimulator(
        sampling_rate=sampling_rate,
        window_seconds=window_seconds,
        noise_level=3.0,
        class_overlap=0.72,
        rng=rng,
    )
    subjects = []
    for subject_id in range(n_subjects):
        subjects.append(
            SubjectRecord(
                subject_id=subject_id,
                hand="left" if rng.random() < 0.15 else "right",
                gender="female" if rng.random() < 0.8 else "male",
                age=int(np.clip(rng.normal(35.0, 8.0), 22, 60)),
                height=float(np.clip(rng.normal(168.0, 8.0), 150, 195)),
                physiology=simulator.random_subject(strength=1.6),
            )
        )
    return generate_subject_dataset(
        name="Nurse Stress (synthetic)",
        states=STRESS_LEVEL_STATES,
        subject_records=subjects,
        windows_per_state=windows_per_state,
        simulator=simulator,
    )
