"""Data substrate: synthetic wearable-sensor datasets and perturbations.

The paper's three healthcare datasets (WESAD, Nurse Stress, Stress-Predict)
cannot be downloaded offline, so this subpackage generates synthetic analogues
with the same structure — multichannel physiological windows per subject and
affective state, demographic metadata, the paper's moving-average +
statistical-feature pipeline — plus the imbalance (Eq. 8) and bit-flip noise
injections used by the overfitting and robustness experiments.
"""

from .features import (
    STATISTICS,
    extract_features,
    extract_window_features,
    feature_names,
    moving_average,
)
from .imbalance import imbalance_indices, make_imbalanced
from .loaders import SubjectRecord, TabularDataset, generate_subject_dataset
from .noise import (
    flip_bits_fixed_point,
    flip_bits_float32,
    perturb_array,
    perturb_model,
)
from .nurse_stress import load_nurse_stress
from .signals import (
    CHANNELS,
    STRESS_LEVEL_STATES,
    WESAD_STATES,
    SignalSimulator,
    StatePhysiology,
    SubjectPhysiology,
)
from .stress_predict import load_stress_predict
from .wesad import load_wesad, make_wesad_subjects

__all__ = [
    "STATISTICS",
    "extract_features",
    "extract_window_features",
    "feature_names",
    "moving_average",
    "imbalance_indices",
    "make_imbalanced",
    "SubjectRecord",
    "TabularDataset",
    "generate_subject_dataset",
    "flip_bits_fixed_point",
    "flip_bits_float32",
    "perturb_array",
    "perturb_model",
    "load_nurse_stress",
    "CHANNELS",
    "STRESS_LEVEL_STATES",
    "WESAD_STATES",
    "SignalSimulator",
    "StatePhysiology",
    "SubjectPhysiology",
    "load_stress_predict",
    "load_wesad",
    "make_wesad_subjects",
]
