"""Dataset container and shared generation machinery.

Each synthetic dataset (:mod:`repro.data.wesad`, :mod:`repro.data.nurse_stress`,
:mod:`repro.data.stress_predict`) produces a :class:`TabularDataset`: a feature
matrix, integer labels, per-sample subject identifiers and per-subject
metadata.  The container knows how to perform the paper's subject-wise
train/test split and how to restrict itself to a demographic group (used by
the Table III person-specific evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..baselines.preprocessing import StandardScaler, subject_train_test_split
from .features import extract_features, feature_names
from .signals import CHANNELS, SignalSimulator, StatePhysiology, SubjectPhysiology

__all__ = ["SubjectRecord", "TabularDataset", "generate_subject_dataset"]


@dataclass(frozen=True)
class SubjectRecord:
    """Demographic and physiological description of one subject."""

    subject_id: int
    hand: str = "right"
    gender: str = "male"
    age: int = 25
    height: float = 175.0
    physiology: SubjectPhysiology = field(default_factory=SubjectPhysiology)

    def matches(self, **criteria: object) -> bool:
        """True when every ``attribute=value`` (or callable predicate) holds."""
        for attribute, expected in criteria.items():
            actual = getattr(self, attribute)
            if callable(expected):
                if not expected(actual):
                    return False
            elif actual != expected:
                return False
        return True


@dataclass
class TabularDataset:
    """Feature matrix + labels + subject structure for one dataset.

    Attributes
    ----------
    name:
        Human-readable dataset name.
    X:
        Feature matrix of shape ``(n_samples, n_features)`` (already scaled).
    y:
        Integer class labels of shape ``(n_samples,)``.
    subjects:
        Subject identifier for every sample.
    subject_records:
        Mapping from subject id to :class:`SubjectRecord`.
    class_names:
        Class label names indexed by the integer label.
    feature_names:
        Column names of ``X``.
    scaler:
        The fitted :class:`~repro.baselines.preprocessing.StandardScaler`
        that produced ``X`` from raw features (``None`` when the dataset was
        generated unscaled).  A serving process must apply the *same*
        transform to live features before scoring
        (``StreamingService(..., transform=dataset.scaler.transform)``), so
        the scaler travels with the dataset.
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    subjects: np.ndarray
    subject_records: Mapping[int, SubjectRecord]
    class_names: Sequence[str]
    feature_names: Sequence[str]
    scaler: StandardScaler | None = None

    def __post_init__(self) -> None:
        if not (len(self.X) == len(self.y) == len(self.subjects)):
            raise ValueError("X, y and subjects must have the same number of samples")

    # ------------------------------------------------------------ accessors
    @property
    def n_samples(self) -> int:
        return len(self.y)

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    @property
    def subject_ids(self) -> np.ndarray:
        return np.unique(self.subjects)

    def class_counts(self) -> dict[int, int]:
        """Number of samples per integer label."""
        labels, counts = np.unique(self.y, return_counts=True)
        return {int(label): int(count) for label, count in zip(labels, counts)}

    # ----------------------------------------------------------------- views
    def subset(self, mask: np.ndarray, *, name: str | None = None) -> "TabularDataset":
        """Return a new dataset restricted to samples where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_samples,):
            raise ValueError(f"mask must have shape ({self.n_samples},), got {mask.shape}")
        kept_subjects = {int(s) for s in np.unique(self.subjects[mask])}
        return TabularDataset(
            name=name or self.name,
            X=self.X[mask],
            y=self.y[mask],
            subjects=self.subjects[mask],
            subject_records={
                sid: record for sid, record in self.subject_records.items() if sid in kept_subjects
            },
            class_names=self.class_names,
            feature_names=self.feature_names,
            scaler=self.scaler,
        )

    def filter_subjects(
        self, predicate: Callable[[SubjectRecord], bool], *, name: str | None = None
    ) -> "TabularDataset":
        """Keep only samples whose subject satisfies ``predicate``.

        This is the primitive behind the Table III person-specific groups
        (left-handed subjects, female subjects, age/height bands, ...).
        """
        selected = {sid for sid, record in self.subject_records.items() if predicate(record)}
        if not selected:
            raise ValueError("no subjects satisfy the predicate")
        mask = np.isin(self.subjects, sorted(selected))
        return self.subset(mask, name=name)

    def split(
        self,
        *,
        test_fraction: float = 0.3,
        rng: int | np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Subject-wise train/test split (whole subjects held out for test)."""
        return subject_train_test_split(
            self.X, self.y, self.subjects, test_fraction=test_fraction, rng=rng
        )


def generate_subject_dataset(
    *,
    name: str,
    states: Sequence[StatePhysiology],
    subject_records: Sequence[SubjectRecord],
    windows_per_state: int = 25,
    simulator: SignalSimulator,
    smoothing_window: int = 30,
    scale: bool = True,
) -> TabularDataset:
    """Generate a full dataset: raw windows → features → scaled matrix.

    For every subject and every state, ``windows_per_state`` raw windows are
    simulated, filtered and summarised into statistical features; features are
    standard-scaled over the whole dataset (the paper normalises features to
    account for varying sensor ranges).
    """
    if windows_per_state < 1:
        raise ValueError("windows_per_state must be >= 1")
    if not states:
        raise ValueError("states must not be empty")
    if not subject_records:
        raise ValueError("subject_records must not be empty")

    feature_rows: list[np.ndarray] = []
    labels: list[int] = []
    subject_column: list[int] = []
    for record in subject_records:
        for label, state in enumerate(states):
            windows = simulator.generate_windows(state, windows_per_state, record.physiology)
            features = extract_features(windows, smoothing_window=smoothing_window)
            feature_rows.append(features)
            labels.extend([label] * windows_per_state)
            subject_column.extend([record.subject_id] * windows_per_state)

    X = np.vstack(feature_rows)
    scaler = None
    if scale:
        scaler = StandardScaler()
        X = scaler.fit_transform(X)
    return TabularDataset(
        name=name,
        X=X,
        y=np.asarray(labels, dtype=int),
        subjects=np.asarray(subject_column, dtype=int),
        subject_records={record.subject_id: record for record in subject_records},
        class_names=[state.name for state in states],
        feature_names=feature_names(CHANNELS),
        scaler=scaler,
    )
