"""Bit-flip noise injection for the robustness experiment (Figure 8).

Wearable hardware stores model parameters in memory that can suffer bit
errors; the paper flips each stored bit independently with probability
``p_b`` and measures the accuracy degradation of DNN, OnlineHD and BoostHD.

Two injection modes are provided:

* :func:`flip_bits_fixed_point` — parameters are quantised to a signed
  fixed-point format (default 16 bit) and bits of the integer codes are
  flipped.  This is the hardware-realistic mode used by the experiments; a
  flip in a high-order bit causes a large bounded perturbation, a flip in a
  low-order bit a tiny one.
* :func:`flip_bits_float32` — bits of the IEEE-754 float32 representation are
  flipped.  Exponent-bit flips can produce huge or non-finite values, which
  mirrors what happens to an unprotected float model; non-finite results are
  kept (models must cope or fail, as they would on hardware).

:func:`perturb_model` applies the chosen mode to every parameter array of a
fitted classifier (HDC class hypervectors, MLP weight matrices) and returns a
perturbed deep copy, leaving the original model untouched.
"""

from __future__ import annotations

import copy

import numpy as np

from ..hdc.hypervector import bipolarize
from ..hdc.quantize import FixedPointFormat, from_fixed_point, to_fixed_point

__all__ = [
    "flip_bits_bipolar",
    "flip_bits_fixed_point",
    "flip_bits_float32",
    "perturb_array",
    "perturb_model",
]


def _as_generator(rng: int | np.random.Generator | None) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def flip_bits_fixed_point(
    values: np.ndarray,
    probability: float,
    *,
    bits: int = 16,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Flip bits of the fixed-point representation of ``values``.

    Each of the ``bits`` bits of every element is flipped independently with
    ``probability``.  The perturbed values are mapped back to floats with the
    same scale.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    array = np.asarray(values, dtype=float)
    if probability == 0.0 or array.size == 0:
        return array.copy()
    generator = _as_generator(rng)
    codes, fmt = to_fixed_point(array, bits=bits)
    # Work in unsigned space so XOR behaves as raw bit manipulation.
    offset = 1 << (fmt.bits - 1)
    unsigned = (codes + offset).astype(np.uint64)
    flip_mask = np.zeros_like(unsigned)
    for bit in range(fmt.bits):
        flips = generator.random(unsigned.shape) < probability
        flip_mask |= flips.astype(np.uint64) << np.uint64(bit)
    unsigned ^= flip_mask
    perturbed_codes = unsigned.astype(np.int64) - offset
    fmt_out = FixedPointFormat(bits=fmt.bits, scale=fmt.scale)
    # Apply only the *delta* caused by the flipped bits, so elements whose
    # bits were untouched keep their exact original value (no quantisation
    # error is introduced by the storage model itself).
    delta = from_fixed_point(perturbed_codes, fmt_out) - from_fixed_point(codes, fmt_out)
    return array + delta


def flip_bits_bipolar(
    values: np.ndarray,
    probability: float,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Flip signs of the 1-bit bipolar representation of ``values``.

    The bipolar storage model keeps exactly one bit per element (the sign),
    so a stored-bit flip *is* a sign flip: each element of ``bipolarize
    (values)`` is negated independently with ``probability``.  This is the
    float-domain reference for the packed bit-flip backend of
    :func:`repro.analysis.robustness.bitflip_sweep`, which applies the same
    perturbation as XOR masks on the packed class words.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    array = bipolarize(np.asarray(values, dtype=float))
    if probability == 0.0 or array.size == 0:
        return array.copy()
    generator = _as_generator(rng)
    flips = generator.random(array.shape) < probability
    return np.where(flips, -array, array)


def flip_bits_float32(
    values: np.ndarray,
    probability: float,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Flip bits of the IEEE-754 float32 representation of ``values``."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    array = np.asarray(values, dtype=np.float32)
    if probability == 0.0 or array.size == 0:
        return array.astype(float)
    generator = _as_generator(rng)
    raw = array.view(np.uint32).copy()
    flip_mask = np.zeros_like(raw)
    for bit in range(32):
        flips = generator.random(raw.shape) < probability
        flip_mask |= flips.astype(np.uint32) << np.uint32(bit)
    raw ^= flip_mask
    return raw.view(np.float32).astype(float)


def perturb_array(
    values: np.ndarray,
    probability: float,
    *,
    mode: str = "fixed16",
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Dispatch to the requested bit-flip mode (``fixed16``, ``fixed8``,
    ``float32`` or ``bipolar``)."""
    if mode == "fixed16":
        return flip_bits_fixed_point(values, probability, bits=16, rng=rng)
    if mode == "fixed8":
        return flip_bits_fixed_point(values, probability, bits=8, rng=rng)
    if mode == "float32":
        return flip_bits_float32(values, probability, rng=rng)
    if mode == "bipolar":
        return flip_bits_bipolar(values, probability, rng=rng)
    raise ValueError(f"unknown bit-flip mode {mode!r}")


def _model_parameter_arrays(model: object) -> list[np.ndarray]:
    """Locate the parameter arrays of a fitted model, in a fixed order.

    Supports the three model families the robustness experiment perturbs:
    HDC classifiers (``class_hypervectors_``), BoostHD ensembles (the class
    hypervectors of every weak learner) and MLPs (``weights_``/``biases_``).
    """
    arrays: list[np.ndarray] = []
    if getattr(model, "class_hypervectors_", None) is not None:
        arrays.append(model.class_hypervectors_)
    learners = getattr(model, "learners_", None)
    if learners is not None:
        for learner in learners:
            if getattr(learner, "class_hypervectors_", None) is not None:
                arrays.append(learner.class_hypervectors_)
    if getattr(model, "weights_", None) is not None:
        arrays.extend(model.weights_)
    if getattr(model, "biases_", None) is not None:
        arrays.extend(model.biases_)
    return arrays


def perturb_model(
    model: object,
    probability: float,
    *,
    mode: str = "fixed16",
    rng: int | np.random.Generator | None = None,
) -> object:
    """Return a deep copy of ``model`` with bit-flip noise in its parameters.

    Raises ``ValueError`` when the model exposes no recognised parameter
    arrays (e.g. it has not been fitted yet).
    """
    generator = _as_generator(rng)
    perturbed = copy.deepcopy(model)
    arrays = _model_parameter_arrays(perturbed)
    if not arrays:
        raise ValueError(
            f"{type(model).__name__} exposes no parameter arrays to perturb; is it fitted?"
        )
    for array in arrays:
        array[...] = perturb_array(array, probability, mode=mode, rng=generator)
    return perturbed
