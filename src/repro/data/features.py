"""Feature-extraction pipeline matching the paper's preprocessing.

The paper preprocesses each dataset with "a moving average filter with a
window size of 30, extracting statistical features such as minimum, maximum,
mean, and standard deviation", followed by normalisation.  This module
implements exactly that pipeline on the raw windows produced by
:mod:`repro.data.signals`:

1. smooth every channel with a length-30 moving-average filter,
2. compute per-channel statistics (min, max, mean, std by default),
3. flatten into one feature vector per window.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "moving_average",
    "STATISTICS",
    "extract_window_features",
    "extract_features",
    "feature_names",
]

#: Statistical summaries computed per channel, in a fixed order.
STATISTICS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "min": lambda window: window.min(axis=-1),
    "max": lambda window: window.max(axis=-1),
    "mean": lambda window: window.mean(axis=-1),
    "std": lambda window: window.std(axis=-1),
}


def moving_average(signal: np.ndarray, window_size: int = 30) -> np.ndarray:
    """Causal moving-average filter applied along the last axis.

    The output has the same length as the input; the first ``window_size - 1``
    samples average over the (shorter) available history, which avoids edge
    artefacts without shrinking the window.

    The filter is computed from a cumulative sum of the *mean-centred* signal
    (the mean is added back afterwards, which is exact for an averaging
    filter).  A raw cumulative sum of a long stream with a large DC offset —
    e.g. hours of skin temperature around 33 °C — grows to ``n · offset`` and
    the difference of two nearby cumsum entries cancels catastrophically;
    centring keeps the accumulator bounded by the signal's variation instead.
    """
    if window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")
    array = np.asarray(signal, dtype=np.float64)
    if window_size == 1:
        return array.copy()
    offset = array.mean(axis=-1, keepdims=True)
    cumulative = np.cumsum(array - offset, axis=-1)
    length = array.shape[-1]
    effective = min(window_size, length)
    smoothed = np.empty_like(array)
    # Full windows.
    smoothed[..., effective - 1 :] = (
        cumulative[..., effective - 1 :]
        - np.concatenate(
            [np.zeros(array.shape[:-1] + (1,)), cumulative[..., : length - effective]],
            axis=-1,
        )
    ) / effective
    # Growing prefix windows.
    prefix_counts = np.arange(1, effective)
    smoothed[..., : effective - 1] = cumulative[..., : effective - 1] / prefix_counts
    smoothed += offset
    return smoothed


def extract_window_features(
    window: np.ndarray,
    *,
    smoothing_window: int = 30,
    statistics: Sequence[str] = ("min", "max", "mean", "std"),
) -> np.ndarray:
    """Features of one raw window of shape ``(n_channels, n_samples)``.

    Returns a flat vector of ``n_channels * len(statistics)`` values ordered
    channel-major (all statistics of channel 0, then channel 1, ...).
    """
    array = np.asarray(window, dtype=float)
    if array.ndim != 2:
        raise ValueError(f"window must be 2-D (channels, samples), got ndim={array.ndim}")
    unknown = [name for name in statistics if name not in STATISTICS]
    if unknown:
        raise ValueError(f"unknown statistics {unknown}; available: {sorted(STATISTICS)}")
    smoothed = moving_average(array, smoothing_window)
    per_channel = np.stack([STATISTICS[name](smoothed) for name in statistics], axis=1)
    return per_channel.reshape(-1)


def extract_features(
    windows: np.ndarray,
    *,
    smoothing_window: int = 30,
    statistics: Sequence[str] = ("min", "max", "mean", "std"),
) -> np.ndarray:
    """Feature matrix for a batch of windows ``(n_windows, n_channels, n_samples)``."""
    array = np.asarray(windows, dtype=float)
    if array.ndim != 3:
        raise ValueError(
            f"windows must be 3-D (windows, channels, samples), got ndim={array.ndim}"
        )
    unknown = [name for name in statistics if name not in STATISTICS]
    if unknown:
        raise ValueError(f"unknown statistics {unknown}; available: {sorted(STATISTICS)}")
    smoothed = moving_average(array, smoothing_window)
    columns = [STATISTICS[name](smoothed) for name in statistics]
    stacked = np.stack(columns, axis=2)  # (windows, channels, statistics)
    return stacked.reshape(array.shape[0], -1)


def feature_names(
    channels: Sequence[str],
    statistics: Sequence[str] = ("min", "max", "mean", "std"),
) -> list[str]:
    """Column names matching the layout of :func:`extract_features`."""
    return [f"{channel}_{statistic}" for channel in channels for statistic in statistics]
