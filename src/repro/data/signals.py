"""Synthetic wearable physiological-signal models.

The paper evaluates on recordings from wrist/chest wearables (Empatica E4,
RespiBAN): blood volume pulse (BVP), electrodermal activity (EDA),
electrocardiogram (ECG), electromyogram (EMG), respiration (RESP), skin
temperature (TEMP) and 3-axis acceleration (ACC).  Those datasets cannot be
downloaded in this offline environment, so this module provides a generative
substitute with the structure the experiments rely on:

* each *affective state* (class) has its own physiological operating point
  (heart rate, sympathetic arousal, muscle tension, respiration rate, skin
  temperature, movement level),
* each *subject* perturbs that operating point with a persistent personal
  offset (so subject-wise train/test splits are genuinely harder than random
  splits and demographic groups behave differently),
* each *window* contains realistic waveform shapes (pulsatile BVP, spiky ECG,
  tonic+phasic EDA, amplitude-modulated EMG noise, slow temperature drift,
  band-limited accelerometer noise) plus measurement noise.

The resulting windows feed the same moving-average + statistical-feature
pipeline the paper applies to the real recordings
(:mod:`repro.data.features`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "CHANNELS",
    "StatePhysiology",
    "SubjectPhysiology",
    "SignalSimulator",
    "WESAD_STATES",
    "STRESS_LEVEL_STATES",
]

#: Channel order used by every synthetic dataset in this repository.
CHANNELS: tuple[str, ...] = ("BVP", "ECG", "EDA", "EMG", "RESP", "TEMP", "ACC")


@dataclass(frozen=True)
class StatePhysiology:
    """Physiological operating point of one affective state.

    Attributes
    ----------
    name:
        Label of the state (e.g. ``"stress"``).
    heart_rate:
        Mean heart rate in beats per minute.
    heart_rate_variability:
        Standard deviation of beat-to-beat rate fluctuation (bpm).
    eda_level:
        Tonic skin-conductance level in microsiemens.
    eda_responses_per_minute:
        Expected rate of phasic skin-conductance responses.
    emg_amplitude:
        Muscle-tension amplitude (arbitrary units).
    respiration_rate:
        Breaths per minute.
    temperature:
        Mean skin temperature in Celsius.
    movement:
        Accelerometer activity level (g).
    """

    name: str
    heart_rate: float
    heart_rate_variability: float
    eda_level: float
    eda_responses_per_minute: float
    emg_amplitude: float
    respiration_rate: float
    temperature: float
    movement: float


#: The three WESAD affective states (neutral/baseline, stress, amusement).
WESAD_STATES: tuple[StatePhysiology, ...] = (
    StatePhysiology("baseline", 68.0, 3.0, 2.0, 1.5, 0.18, 14.0, 33.8, 0.05),
    StatePhysiology("stress", 88.0, 6.0, 6.5, 6.0, 0.45, 19.0, 33.0, 0.12),
    StatePhysiology("amusement", 75.0, 4.5, 3.5, 3.0, 0.27, 16.0, 33.5, 0.09),
)

#: The reduced three-level stress labels used for the Nurse Stress and
#: Stress-Predict datasets ("good", "common", "stress").
STRESS_LEVEL_STATES: tuple[StatePhysiology, ...] = (
    StatePhysiology("good", 66.0, 3.0, 2.2, 1.2, 0.16, 13.5, 34.0, 0.06),
    StatePhysiology("common", 74.0, 4.0, 3.2, 2.5, 0.24, 15.5, 33.6, 0.08),
    StatePhysiology("stress", 84.0, 5.5, 5.2, 5.0, 0.38, 18.0, 33.1, 0.11),
)


@dataclass(frozen=True)
class SubjectPhysiology:
    """Persistent per-subject physiological offsets.

    The offsets shift every state's operating point for that subject, which is
    what makes held-out-subject generalisation non-trivial and what ties model
    behaviour to demographic attributes (e.g. resting heart rate correlates
    with age in the generator used by :mod:`repro.data.wesad`).
    """

    heart_rate_offset: float = 0.0
    eda_offset: float = 0.0
    emg_offset: float = 0.0
    respiration_offset: float = 0.0
    temperature_offset: float = 0.0
    movement_offset: float = 0.0
    noise_scale: float = 1.0


@dataclass
class SignalSimulator:
    """Generates multichannel raw windows for (state, subject) pairs.

    Parameters
    ----------
    sampling_rate:
        Samples per second for every channel (the real devices mix rates; a
        common rate keeps the window tensors rectangular).
    window_seconds:
        Duration of each generated window.
    noise_level:
        Global measurement-noise multiplier; datasets with poorer class
        separability (Nurse Stress) use larger values.
    class_overlap:
        Fraction in ``[0, 1)`` by which state operating points are pulled
        toward their common mean — the main knob controlling how hard the
        classification problem is.
    rng:
        Seed or generator.
    """

    sampling_rate: float = 32.0
    window_seconds: float = 20.0
    noise_level: float = 1.0
    class_overlap: float = 0.0
    rng: int | np.random.Generator | None = None
    _generator: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.sampling_rate <= 0:
            raise ValueError("sampling_rate must be positive")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if not 0.0 <= self.class_overlap < 1.0:
            raise ValueError("class_overlap must be in [0, 1)")
        self._generator = (
            self.rng
            if isinstance(self.rng, np.random.Generator)
            else np.random.default_rng(self.rng)
        )

    # ----------------------------------------------------------- properties
    @property
    def samples_per_window(self) -> int:
        """Number of samples per channel in one window."""
        return int(round(self.sampling_rate * self.window_seconds))

    @property
    def n_channels(self) -> int:
        return len(CHANNELS)

    # ------------------------------------------------------------ internals
    def _effective_state(
        self, state: StatePhysiology, subject: SubjectPhysiology
    ) -> StatePhysiology:
        """Apply class-overlap shrinkage and subject offsets to a state."""
        overlap = self.class_overlap

        def blend(value: float, neutral: float) -> float:
            return (1.0 - overlap) * value + overlap * neutral

        return StatePhysiology(
            name=state.name,
            heart_rate=blend(state.heart_rate, 75.0) + subject.heart_rate_offset,
            heart_rate_variability=state.heart_rate_variability,
            eda_level=max(0.1, blend(state.eda_level, 3.5) + subject.eda_offset),
            eda_responses_per_minute=max(0.2, blend(state.eda_responses_per_minute, 3.0)),
            emg_amplitude=max(0.02, blend(state.emg_amplitude, 0.28) + subject.emg_offset),
            respiration_rate=max(6.0, blend(state.respiration_rate, 15.5) + subject.respiration_offset),
            temperature=blend(state.temperature, 33.5) + subject.temperature_offset,
            movement=max(0.01, blend(state.movement, 0.08) + subject.movement_offset),
        )

    def _time_axis(self) -> np.ndarray:
        return np.arange(self.samples_per_window) / self.sampling_rate

    def _bvp(self, state: StatePhysiology, noise: float, time: np.ndarray) -> np.ndarray:
        """Pulsatile blood-volume-pulse wave: fundamental + dicrotic harmonic."""
        beat_frequency = state.heart_rate / 60.0
        jitter = self._generator.normal(0.0, state.heart_rate_variability / 60.0 / 10.0)
        phase = 2.0 * np.pi * (beat_frequency + jitter) * time
        wave = np.sin(phase) + 0.35 * np.sin(2.0 * phase + 0.8)
        return wave + noise * 0.15 * self._generator.standard_normal(time.shape)

    def _ecg(self, state: StatePhysiology, noise: float, time: np.ndarray) -> np.ndarray:
        """Spiky R-peak train at the heart rate with baseline wander."""
        beat_frequency = state.heart_rate / 60.0
        phase = (beat_frequency * time) % 1.0
        spikes = np.exp(-((phase - 0.5) ** 2) / 0.0015)
        wander = 0.08 * np.sin(2.0 * np.pi * 0.25 * time)
        return spikes + wander + noise * 0.05 * self._generator.standard_normal(time.shape)

    def _eda(
        self,
        state: StatePhysiology,
        noise: float,
        time: np.ndarray,
        duration: float | None = None,
    ) -> np.ndarray:
        """Tonic level plus exponentially-decaying phasic responses.

        ``duration`` is the span of ``time`` in seconds (defaults to the
        configured window length); phasic-response onsets are drawn uniformly
        over it, so the same code serves both absolute-time streaming chunks
        and zero-based windows.
        """
        if duration is None:
            duration = self.window_seconds
        tonic = state.eda_level + 0.1 * np.sin(2.0 * np.pi * 0.01 * time)
        signal = np.full_like(time, 0.0) + tonic
        expected_events = state.eda_responses_per_minute * duration / 60.0
        n_events = self._generator.poisson(expected_events)
        start = float(time[0])
        for _ in range(int(n_events)):
            onset = self._generator.uniform(start, start + duration)
            amplitude = self._generator.uniform(0.2, 0.8) * (state.eda_level / 3.0)
            rise = 1.0 / (1.0 + np.exp(-(time - onset) * 4.0))
            decay = np.exp(-np.maximum(time - onset, 0.0) / 4.0)
            signal = signal + amplitude * rise * decay
        return signal + noise * 0.05 * self._generator.standard_normal(time.shape)

    def _emg(self, state: StatePhysiology, noise: float, time: np.ndarray) -> np.ndarray:
        """Amplitude-modulated broadband noise (muscle tension bursts)."""
        envelope = state.emg_amplitude * (
            1.0 + 0.5 * np.sin(2.0 * np.pi * 0.3 * time + self._generator.uniform(0, 2 * np.pi))
        )
        return envelope * self._generator.standard_normal(time.shape) * (1.0 + 0.2 * noise)

    def _resp(self, state: StatePhysiology, noise: float, time: np.ndarray) -> np.ndarray:
        """Respiration wave at the breathing rate."""
        breath_frequency = state.respiration_rate / 60.0
        wave = np.sin(2.0 * np.pi * breath_frequency * time)
        return wave + noise * 0.1 * self._generator.standard_normal(time.shape)

    def _temp(self, state: StatePhysiology, noise: float, time: np.ndarray) -> np.ndarray:
        """Skin temperature: slow drift around the state mean."""
        drift = 0.05 * np.sin(2.0 * np.pi * 0.005 * time + self._generator.uniform(0, 2 * np.pi))
        return state.temperature + drift + noise * 0.02 * self._generator.standard_normal(time.shape)

    def _acc(self, state: StatePhysiology, noise: float, time: np.ndarray) -> np.ndarray:
        """Accelerometer magnitude: gravity plus movement bursts."""
        bursts = state.movement * np.abs(
            np.sin(2.0 * np.pi * 0.8 * time + self._generator.uniform(0, 2 * np.pi))
        )
        return 1.0 + bursts + noise * state.movement * 0.5 * self._generator.standard_normal(time.shape)

    def _window_channels(
        self,
        effective: StatePhysiology,
        noise: float,
        time: np.ndarray,
        duration: float | None = None,
    ) -> np.ndarray:
        """Stack every channel's waveform over ``time`` in :data:`CHANNELS` order."""
        return np.vstack(
            [
                self._bvp(effective, noise, time),
                self._ecg(effective, noise, time),
                self._eda(effective, noise, time, duration),
                self._emg(effective, noise, time),
                self._resp(effective, noise, time),
                self._temp(effective, noise, time),
                self._acc(effective, noise, time),
            ]
        )

    # -------------------------------------------------------------- windows
    def generate_window(
        self, state: StatePhysiology, subject: SubjectPhysiology | None = None
    ) -> np.ndarray:
        """Generate one raw window of shape ``(n_channels, samples_per_window)``."""
        subject = subject or SubjectPhysiology()
        effective = self._effective_state(state, subject)
        noise = self.noise_level * subject.noise_scale
        return self._window_channels(effective, noise, self._time_axis())

    def generate_windows(
        self,
        state: StatePhysiology,
        count: int,
        subject: SubjectPhysiology | None = None,
    ) -> np.ndarray:
        """Generate ``count`` windows, shape ``(count, n_channels, samples)``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return np.stack([self.generate_window(state, subject) for _ in range(count)])

    # ------------------------------------------------------------- streaming
    def stream_chunks(
        self,
        state: StatePhysiology,
        subject: SubjectPhysiology | None = None,
        *,
        chunk_samples: int | None = None,
        n_chunks: int | None = None,
    ):
        """Yield consecutive raw chunks of shape ``(n_channels, chunk_samples)``.

        This is the live-signal source for the serving layer
        (:mod:`repro.serving`): unlike :meth:`generate_window`, whose windows
        each restart at ``t = 0``, the chunks share one continuous time axis,
        so periodic channels (BVP, ECG, RESP) carry their phase across chunk
        boundaries and EDA response onsets fall anywhere in the stream.
        Stochastic per-chunk draws (noise, EDA events, envelope phases) are
        still independent between chunks, mirroring the batch generator's
        per-window independence.

        Parameters
        ----------
        state, subject:
            Operating point, as for :meth:`generate_window`.
        chunk_samples:
            Samples per yielded chunk (default: one window's worth).
        n_chunks:
            Stop after this many chunks; ``None`` streams forever.
        """
        if chunk_samples is None:
            chunk_samples = self.samples_per_window
        if chunk_samples < 1:
            raise ValueError(f"chunk_samples must be >= 1, got {chunk_samples}")
        if n_chunks is not None and n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        subject = subject or SubjectPhysiology()
        effective = self._effective_state(state, subject)
        noise = self.noise_level * subject.noise_scale
        duration = chunk_samples / self.sampling_rate
        offset = 0
        produced = 0
        while n_chunks is None or produced < n_chunks:
            time = (offset + np.arange(chunk_samples)) / self.sampling_rate
            yield self._window_channels(effective, noise, time, duration)
            offset += chunk_samples
            produced += 1

    def random_subject(self, strength: float = 1.0) -> SubjectPhysiology:
        """Draw a random subject profile; ``strength`` scales offset spread."""
        return SubjectPhysiology(
            heart_rate_offset=float(self._generator.normal(0.0, 4.0 * strength)),
            eda_offset=float(self._generator.normal(0.0, 0.8 * strength)),
            emg_offset=float(self._generator.normal(0.0, 0.04 * strength)),
            respiration_offset=float(self._generator.normal(0.0, 1.0 * strength)),
            temperature_offset=float(self._generator.normal(0.0, 0.3 * strength)),
            movement_offset=float(self._generator.normal(0.0, 0.02 * strength)),
            noise_scale=float(np.clip(self._generator.normal(1.0, 0.15 * strength), 0.5, 2.0)),
        )
