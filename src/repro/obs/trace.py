"""Context-manager span tracing with a bounded ring-buffer recorder.

A *span* is one timed region of interest — a fused scoring call, a cascade
rerank, a registry load, a grid cell — opened with::

    with recorder.span("engine.score", rows=len(X)):
        ...

Spans nest: each thread keeps its own stack, so a span opened inside
another records the parent's name and its depth, and the recorder's
completed-span order is *close order* (children land before their parents,
the order Chrome trace viewers expect to reconstruct flame graphs from).
Finished spans are plain frozen dataclasses — picklable, so worker
processes can ship theirs back to the parent (see
:mod:`repro.runtime.executor`) — held in a bounded ring buffer: a
long-running service keeps the most recent ``capacity`` spans and O(1)
memory, never an unbounded log.

Exporters:

* :meth:`SpanRecorder.chrome_trace` — Chrome trace-event JSON (``ph: "X"``
  complete events with microsecond timestamps); write it with
  :func:`repro.obs.export.write_chrome_trace` and load the file in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
* :meth:`SpanRecorder.summary` — a human-readable per-name table (count,
  total, mean, max) for quick terminal inspection.

:class:`NullRecorder` is the disabled-path stand-in: ``span()`` hands back
one shared no-op context manager, so tracing instrumentation behind
``OBS.enabled`` costs nothing when observability is off.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Callable, Iterable, NamedTuple, Sequence

__all__ = [
    "SpanRecord",
    "SpanRecorder",
    "NullRecorder",
    "NULL_RECORDER",
]


class SpanRecord(NamedTuple):
    """One finished span: name, wall-clock interval, nesting and attributes.

    ``start`` / ``end`` are in the recorder's clock domain (default
    ``time.perf_counter`` seconds); ``attributes`` is a tuple of ``(key,
    value)`` pairs so records stay hashable and picklable.  A NamedTuple
    rather than a frozen dataclass: span close is on the instrumented hot
    path and tuple construction is several times cheaper than
    ``object.__setattr__``-based frozen-dataclass construction.
    """

    name: str
    start: float
    end: float
    depth: int
    parent: str | None
    thread: int
    pid: int
    attributes: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def attrs(self) -> dict:
        """The attributes as a dict (records store them as item tuples)."""
        return dict(self.attributes)


class _ActiveSpan:
    """Context manager for one open span (created by :meth:`SpanRecorder.span`)."""

    __slots__ = ("_recorder", "name", "_attrs", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self.name = name
        self._attrs = attrs
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. a result count)."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._recorder._stack().append(self.name)
        self._start = self._recorder.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        recorder = self._recorder
        end = recorder.clock()
        stack = recorder._stack()
        stack.pop()
        attrs = self._attrs
        if exc_type is not None:
            attrs.setdefault("error", exc_type.__name__)
        recorder._record(
            SpanRecord(
                self.name,
                self._start,
                end,
                len(stack),
                stack[-1] if stack else None,
                threading.get_ident(),
                os.getpid(),
                tuple(sorted(attrs.items())) if attrs else (),
            )
        )


class _NullSpan:
    """Shared no-op span: the whole disabled tracing path."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder stand-in for the disabled path; records nothing, ever."""

    __slots__ = ()
    capacity = 0

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    @property
    def spans(self) -> tuple:
        return ()

    def drain(self) -> list:
        return []

    def extend(self, records: Iterable[SpanRecord]) -> None:
        pass

    def clear(self) -> None:
        pass


NULL_RECORDER = NullRecorder()


class SpanRecorder:
    """Bounded ring buffer of finished spans with per-thread nesting.

    Parameters
    ----------
    capacity:
        Maximum retained finished spans; older spans fall off the ring.
    clock:
        Time source (injectable for deterministic tests).  All recorded
        spans share this clock domain, so durations and orderings are
        internally consistent regardless of the source.
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.clock = clock
        self._spans: deque[SpanRecord] = deque(maxlen=self.capacity)
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    # ------------------------------------------------------------- recording
    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; use as ``with recorder.span("engine.score", rows=n):``."""
        return _ActiveSpan(self, name, attrs)

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """Finished spans, oldest first (close order)."""
        with self._lock:
            return tuple(self._spans)

    def drain(self) -> list[SpanRecord]:
        """Remove and return every finished span (worker hand-off)."""
        with self._lock:
            records = list(self._spans)
            self._spans.clear()
        return records

    def extend(self, records: Iterable[SpanRecord]) -> None:
        """Append externally produced records (e.g. shipped from a worker)."""
        with self._lock:
            self._spans.extend(records)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------- exporting
    def chrome_trace(self, spans: Sequence[SpanRecord] | None = None) -> dict:
        """Chrome trace-event JSON object (loadable in Perfetto).

        Emits one complete (``ph: "X"``) event per span with microsecond
        timestamps relative to the earliest recorded span, plus process
        metadata naming the repro process.  Serialize with ``json.dump`` or
        :func:`repro.obs.export.write_chrome_trace`.
        """
        records = self.spans if spans is None else tuple(spans)
        events: list[dict] = []
        if records:
            origin = min(record.start for record in records)
            for pid in sorted({record.pid for record in records}):
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": f"repro pid {pid}"},
                    }
                )
            for record in records:
                events.append(
                    {
                        "ph": "X",
                        "name": record.name,
                        "cat": "repro",
                        "ts": (record.start - origin) * 1e6,
                        "dur": record.duration * 1e6,
                        "pid": record.pid,
                        "tid": record.thread,
                        "args": {key: value for key, value in record.attributes},
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def summary(self) -> str:
        """Per-span-name aggregate table: count, total/mean/max seconds."""
        totals: dict[str, list[float]] = {}
        for record in self.spans:
            entry = totals.setdefault(record.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += record.duration
            entry[2] = max(entry[2], record.duration)
        if not totals:
            return "no spans recorded"
        width = max(len(name) for name in totals)
        lines = [f"{'span':<{width}}  {'count':>7}  {'total':>10}  "
                 f"{'mean':>10}  {'max':>10}"]
        for name in sorted(totals, key=lambda key: -totals[key][1]):
            count, total, worst = totals[name]
            lines.append(
                f"{name:<{width}}  {count:>7d}  {total:>9.4f}s  "
                f"{total / count:>9.6f}s  {worst:>9.6f}s"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"SpanRecorder(spans={len(self)}, capacity={self.capacity})"
