"""Unified telemetry: metrics registry, span tracing, exporters.

Every hot layer of the system — the fused engine, the cascade, the
micro-batch scheduler, the model registry, the parallel runtime —
instruments itself through one process-wide switchboard, :data:`OBS`:

.. code-block:: python

    from repro.obs import OBS

    if OBS.enabled:                                   # one attribute read
        OBS.metrics.counter("repro_engine_rows_scored_total").inc(n)
        with OBS.recorder.span("engine.score", rows=n):
            ...

Observability is **off by default**: ``OBS.enabled`` is ``False``,
``OBS.metrics`` is the shared :data:`~repro.obs.metrics.NULL_REGISTRY`
and ``OBS.recorder`` the shared
:data:`~repro.obs.trace.NULL_RECORDER`, so the disabled path is a no-op
attribute read — ``benchmarks/bench_obs.py`` enforces that the *enabled*
path costs < 2% on the serving micro-batch contract, and the disabled
path is cheaper still.  Instrumentation never touches the numbers being
computed, so predictions are bit-identical with observability on or off
(also enforced by the bench and ``tests/test_obs.py``).

Switching on:

* ``REPRO_OBS=1`` in the environment enables telemetry at import time
  (``0`` / unset / empty keeps it off);
* :func:`enable` / :func:`disable` flip it at runtime;
* :func:`capture` is the scoped form — enable with a fresh registry and
  recorder, yield them, restore the previous state on exit (what tests,
  benchmarks and the example use).

Layout: :mod:`repro.obs.metrics` (counters / gauges / log-bucket
histograms, snapshots, associative merge), :mod:`repro.obs.trace`
(nested context-manager spans, ring-buffer recorder, Chrome trace
export), :mod:`repro.obs.export` (Prometheus text exposition, JSON
snapshots, trace files).  The metric catalog instrumented across the
codebase is documented in ``docs/observability.md``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .export import (
    parse_snapshot_json,
    prometheus_text,
    sanitize_metric_name,
    snapshot_json,
    write_chrome_trace,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    empty_snapshot,
    log_bucket_bounds,
    merge_snapshots,
)
from .trace import NULL_RECORDER, NullRecorder, SpanRecord, SpanRecorder

__all__ = [
    "OBS",
    "ObsState",
    "enable",
    "disable",
    "capture",
    "scoped_registry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "empty_snapshot",
    "log_bucket_bounds",
    "merge_snapshots",
    "SpanRecord",
    "SpanRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "prometheus_text",
    "snapshot_json",
    "parse_snapshot_json",
    "sanitize_metric_name",
    "write_chrome_trace",
]

#: Environment switch consulted once at import: ``REPRO_OBS=1`` enables.
OBS_ENV = "REPRO_OBS"


class ObsState:
    """The process-wide observability switchboard (singleton :data:`OBS`).

    ``enabled`` is the hot-path guard; ``metrics`` and ``recorder`` always
    hold *usable* objects (real or null), so un-guarded instrumentation is
    merely cheap rather than broken.
    """

    __slots__ = ("enabled", "metrics", "recorder")

    def __init__(self) -> None:
        self.enabled = False
        self.metrics: MetricsRegistry | NullRegistry = NULL_REGISTRY
        self.recorder: SpanRecorder | NullRecorder = NULL_RECORDER

    def __repr__(self) -> str:
        return (
            f"ObsState(enabled={self.enabled}, metrics={self.metrics!r}, "
            f"recorder={self.recorder!r})"
        )


OBS = ObsState()


def enable(
    registry: MetricsRegistry | None = None,
    recorder: SpanRecorder | None = None,
) -> ObsState:
    """Turn telemetry on, installing (or creating) a registry and recorder.

    Re-enabling with no arguments keeps existing live instances, so
    repeated ``enable()`` calls never drop accumulated telemetry.
    """
    if registry is not None:
        OBS.metrics = registry
    elif not isinstance(OBS.metrics, MetricsRegistry):
        OBS.metrics = MetricsRegistry()
    if recorder is not None:
        OBS.recorder = recorder
    elif not isinstance(OBS.recorder, SpanRecorder):
        OBS.recorder = SpanRecorder()
    OBS.enabled = True
    return OBS


def disable() -> ObsState:
    """Turn telemetry off and drop back to the null instruments."""
    OBS.enabled = False
    OBS.metrics = NULL_REGISTRY
    OBS.recorder = NULL_RECORDER
    return OBS


@contextmanager
def capture(
    registry: MetricsRegistry | None = None,
    recorder: SpanRecorder | None = None,
):
    """Scoped telemetry: enable with fresh state, yield ``(registry, recorder)``.

    Restores the previous enabled/registry/recorder state on exit, so
    nested captures and interleaved tests never observe each other.
    """
    previous = (OBS.enabled, OBS.metrics, OBS.recorder)
    registry = registry if registry is not None else MetricsRegistry()
    recorder = recorder if recorder is not None else SpanRecorder()
    enable(registry, recorder)
    try:
        yield registry, recorder
    finally:
        OBS.enabled, OBS.metrics, OBS.recorder = previous


@contextmanager
def scoped_registry(registry: MetricsRegistry):
    """Swap in ``registry`` as the live metrics sink for the block.

    Used by the runtime's serial path to give one suite run its own
    registry (mirroring what worker processes do naturally), then merge it
    into the surrounding registry afterwards.  The recorder and enabled
    flag are untouched; a no-op when telemetry is disabled.
    """
    if not OBS.enabled:
        yield registry
        return
    previous = OBS.metrics
    OBS.metrics = registry
    try:
        yield registry
    finally:
        OBS.metrics = previous


def _env_enabled() -> bool:
    value = os.environ.get(OBS_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


if _env_enabled():  # pragma: no cover - exercised via subprocess in tests
    enable()
