"""Exporters: Prometheus text exposition, JSON snapshots, Chrome traces.

The in-process registry (:mod:`repro.obs.metrics`) and span recorder
(:mod:`repro.obs.trace`) hold telemetry in memory; this module renders
them into the two interchange formats operators actually consume:

* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4), the body a future HTTP ``/metrics`` endpoint returns.
  Counters map to ``_total``-suffixed counters, gauges to gauges, and
  histograms to the standard ``_bucket{le=...}`` cumulative series plus
  ``_sum`` / ``_count``.  Metric and label names are sanitised to the
  Prometheus grammar (``[a-zA-Z_:][a-zA-Z0-9_:]*``), so dotted span-style
  names survive the trip.
* :func:`snapshot_json` / :func:`parse_snapshot_json` — the registry
  snapshot as JSON, for persisting run telemetry next to artifacts
  (:class:`repro.runtime.report.RunReport` uses the same snapshot shape).
* :func:`write_chrome_trace` — serialize a recorder's Chrome trace-event
  object to a file loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import Mapping

from .metrics import log_bucket_bounds
from .trace import SpanRecorder

__all__ = [
    "prometheus_text",
    "sanitize_metric_name",
    "snapshot_json",
    "parse_snapshot_json",
    "write_chrome_trace",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary metric name into the Prometheus grammar."""
    if _NAME_OK.match(name):
        return name
    sanitized = _NAME_BAD_CHARS.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr, inf/nan named."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{_LABEL_BAD_CHARS.sub("_", str(key))}="{_escape(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_text(snapshot: Mapping) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Accepts the plain-dict snapshot of
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot`.  Series of the
    same metric are grouped under one ``# TYPE`` header; histogram buckets
    are cumulative with a closing ``le="+Inf"`` bucket equal to ``_count``,
    as the exposition format requires.
    """
    help_texts = snapshot.get("help", {})
    lines: list[str] = []

    def _header(name: str, kind: str, source_name: str) -> None:
        help_text = help_texts.get(source_name)
        if help_text:
            lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    by_name: dict[str, list[dict]] = {}
    for entry in snapshot.get("counters", ()):
        by_name.setdefault(entry["name"], []).append(entry)
    for source_name in sorted(by_name):
        name = sanitize_metric_name(source_name)
        _header(name, "counter", source_name)
        for entry in by_name[source_name]:
            labels = _format_labels(entry.get("labels", {}))
            lines.append(f"{name}{labels} {_format_value(entry['value'])}")

    by_name = {}
    for entry in snapshot.get("gauges", ()):
        by_name.setdefault(entry["name"], []).append(entry)
    for source_name in sorted(by_name):
        name = sanitize_metric_name(source_name)
        _header(name, "gauge", source_name)
        for entry in by_name[source_name]:
            if entry["value"] is None:
                continue
            labels = _format_labels(entry.get("labels", {}))
            lines.append(f"{name}{labels} {_format_value(entry['value'])}")

    by_name = {}
    for entry in snapshot.get("histograms", ()):
        by_name.setdefault(entry["name"], []).append(entry)
    for source_name in sorted(by_name):
        name = sanitize_metric_name(source_name)
        _header(name, "histogram", source_name)
        for entry in by_name[source_name]:
            base_labels = entry.get("labels", {})
            bounds = log_bucket_bounds(
                entry["lo"], entry["hi"], entry["per_decade"]
            )
            cumulative = 0
            for bound, count in zip(bounds, entry["counts"]):
                cumulative += count
                labels = _format_labels(
                    base_labels, extra=f'le="{_format_value(float(bound))}"'
                )
                lines.append(f"{name}_bucket{labels} {cumulative}")
            labels = _format_labels(base_labels, extra='le="+Inf"')
            lines.append(f"{name}_bucket{labels} {entry['count']}")
            labels = _format_labels(base_labels)
            lines.append(f"{name}_sum{labels} {_format_value(entry['sum'])}")
            lines.append(f"{name}_count{labels} {entry['count']}")

    return "\n".join(lines) + "\n" if lines else ""


def snapshot_json(snapshot: Mapping, *, indent: int | None = 2) -> str:
    """Registry snapshot as a JSON document (inverse: :func:`parse_snapshot_json`)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def parse_snapshot_json(text: str) -> dict:
    """Parse a :func:`snapshot_json` document back into a snapshot dict."""
    snapshot = json.loads(text)
    if not isinstance(snapshot, dict):
        raise ValueError("snapshot JSON must decode to an object")
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(key, []), list):
            raise ValueError(f"snapshot field {key!r} must be a list")
        snapshot.setdefault(key, [])
    snapshot.setdefault("help", {})
    return snapshot


def write_chrome_trace(
    recorder: SpanRecorder, path: str | os.PathLike, *, spans=None
) -> str:
    """Write a recorder's spans as Chrome trace-event JSON; return the path.

    Load the resulting file in Perfetto (https://ui.perfetto.dev, "Open
    trace file") or ``chrome://tracing`` to see the span flame graph.
    """
    trace = recorder.chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(trace, stream)
    return os.fspath(path)
