"""Process-local metrics registry: counters, gauges, log-bucket histograms.

Every prior PR's observability grew ad hoc — ``SchedulerStats`` kept a
deque of recent latencies and called ``np.percentile`` on it,
``CacheStats`` hand-counted hits, ``CascadeStats`` counted reranks — four
incompatible shapes with no export format and no way to combine counters
across the process pool.  This module is the shared substrate they all
re-base on:

* :class:`Counter` — a monotone accumulator.  Integer increments stay
  integers (so ``CacheStats.hits`` renders as ``5``, never ``5.0``);
  fractional increments promote to float (summed seconds).
* :class:`Gauge` — a last-written value (queue depth, pool size).
* :class:`Histogram` — **fixed log-spaced buckets**: ``per_decade`` bucket
  boundaries per power of ten between ``lo`` and ``hi``, plus an underflow
  and an overflow bucket.  Memory is bounded by the bucket count (never by
  the observation count, unlike a deque), bucket *counts* are exact, and
  :meth:`Histogram.percentile` carries a provable relative-error bound: the
  rank statistic's true value lies in the same bucket as the estimate, so
  the geometric-midpoint estimate is off by at most a factor of
  ``sqrt(growth)`` where ``growth = 10 ** (1 / per_decade)``
  (:attr:`Histogram.relative_error_bound`).
* :class:`MetricsRegistry` — named instruments, created on first use and
  cached; :meth:`MetricsRegistry.snapshot` produces a plain-dict,
  picklable *and* JSON-serializable snapshot, and
  :func:`merge_snapshots` / :meth:`MetricsRegistry.merge` fold snapshots
  together **associatively and commutatively** (counters and histogram
  buckets add, gauges take the maximum, histogram min/max combine), with
  the empty snapshot as identity — which is exactly what lets per-worker
  registries ride back through :mod:`repro.runtime.executor` and fold into
  the parent in any completion order with a serial-equal result.

The null variants (:class:`NullCounter` and friends, :data:`NULL_REGISTRY`)
make the disabled path free: every method is a no-op ``pass`` on a shared
singleton, so instrumentation behind ``OBS.enabled`` costs one attribute
read when observability is off.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "empty_snapshot",
    "log_bucket_bounds",
    "merge_snapshots",
]

#: Default histogram range: 1 microsecond to 10 seconds covers every latency
#: in the system (chunk scoring, fused calls, registry IO, grid cells).
DEFAULT_LO = 1e-6
DEFAULT_HI = 10.0
#: Ten buckets per decade: growth 10^0.1 ≈ 1.259, percentile relative error
#: bound sqrt(growth) - 1 ≈ 12.2%, 71 buckets across 7 decades.
DEFAULT_PER_DECADE = 10


def log_bucket_bounds(
    lo: float = DEFAULT_LO,
    hi: float = DEFAULT_HI,
    per_decade: int = DEFAULT_PER_DECADE,
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` to at least ``hi``.

    Bounds are ``lo * growth**i`` with ``growth = 10**(1/per_decade)``,
    extended until they cover ``hi``.  The bounds are the histogram's
    ``le`` (less-or-equal) edges; values above the last bound land in the
    overflow bucket.
    """
    if lo <= 0:
        raise ValueError(f"lo must be > 0, got {lo}")
    if hi <= lo:
        raise ValueError(f"hi must be > lo, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n_buckets = math.ceil(round(per_decade * math.log10(hi / lo), 9)) + 1
    # Compute each bound from lo directly (not cumulatively) so the grid is
    # reproducible to the last bit across merges of independently created
    # histograms.
    return tuple(lo * 10.0 ** (i / per_decade) for i in range(n_buckets))


class Counter:
    """Monotone accumulator; integer increments keep an integer value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self._value!r})"


class Gauge:
    """Last-written value (None until first set)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: float | None = None

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value = (self._value or 0) + amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float | None:
        return self._value

    def reset(self) -> None:
        self._value = None

    def __repr__(self) -> str:
        return f"Gauge({self._value!r})"


class Histogram:
    """Fixed log-spaced-bucket histogram with bounded-error percentiles.

    ``bounds`` are the inclusive upper edges of the interior buckets; a
    value ``v`` lands in the first bucket whose bound satisfies
    ``v <= bound`` (values ``<= bounds[0]`` share the first bucket, values
    ``> bounds[-1]`` land in the overflow bucket).  Bucket counts are exact
    integers; only the *position* of a value inside its bucket is lost,
    which is what bounds the percentile error.

    :meth:`percentile` locates the bucket containing the requested rank
    statistic and returns the geometric mean of that bucket's edges, so for
    any observation inside ``(bounds[0], bounds[-1]]`` the estimate is
    within a multiplicative factor ``sqrt(growth)`` of the true rank value
    — :attr:`relative_error_bound`.  The exact ``sum`` / ``count`` /
    ``min`` / ``max`` ride alongside for means and Prometheus export.
    """

    __slots__ = ("lo", "hi", "per_decade", "bounds", "counts", "sum", "count",
                 "min", "max")

    def __init__(
        self,
        *,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        per_decade: int = DEFAULT_PER_DECADE,
    ) -> None:
        self.lo = float(lo)
        self.hi = float(hi)
        self.per_decade = int(per_decade)
        self.bounds = log_bucket_bounds(lo, hi, per_decade)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    @property
    def growth(self) -> float:
        """Ratio between consecutive bucket bounds."""
        return 10.0 ** (1.0 / self.per_decade)

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative error of :meth:`percentile` for in-range values.

        For a true rank value ``v`` in bucket ``(b/g, b]`` the estimate is
        ``b / sqrt(g)``, so ``estimate / v`` lies in
        ``[1/sqrt(g), sqrt(g)]`` — the bound is ``sqrt(g) - 1``.
        """
        return math.sqrt(self.growth) - 1.0

    def observe(self, value: float) -> None:
        """Fold one observation into the bucket counts and exact moments."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations in one tight pass.

        Equivalent to calling :meth:`observe` per value; used on per-window
        hot paths (e.g. the scheduler's queue-wait latencies) where the
        per-call method overhead would dominate the bucketing itself.
        """
        bounds = self.bounds
        counts = self.counts
        total = self.sum  # accumulate in observe()'s exact addition order
        n = 0
        low, high = self.min, self.max
        for value in values:
            counts[bisect_left(bounds, value)] += 1
            total += value
            n += 1
            if low is None or value < low:
                low = value
            if high is None or value > high:
                high = value
        self.sum = total
        self.count += n
        self.min = low
        self.max = high

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, percentile: float) -> float:
        """Bounded-relative-error percentile estimate (e.g. 50, 90, 99).

        Returns 0.0 on an empty histogram.  The estimate is clamped to the
        exact observed ``[min, max]``, which both tightens the edge buckets
        (underflow/overflow have no finite geometric midpoint) and keeps
        ``percentile(0) >= min`` / ``percentile(100) <= max`` exact.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(percentile / 100.0 * self.count))
        cumulative = 0
        bucket = len(self.counts) - 1
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                bucket = index
                break
        if bucket == 0:
            estimate = self.bounds[0]
        elif bucket >= len(self.bounds):
            estimate = self.bounds[-1]
        else:
            estimate = math.sqrt(self.bounds[bucket - 1] * self.bounds[bucket])
        return min(max(estimate, self.min), self.max)

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = None
        self.max = None

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, mean={self.mean:.6g}, "
            f"p50={self.percentile(50):.6g}, p99={self.percentile(99):.6g}, "
            f"buckets={len(self.counts)})"
        )


# --------------------------------------------------------------------------
# Null instruments: shared singletons whose every method is a no-op, so the
# disabled path costs an attribute read and a vacuous call at most.
# --------------------------------------------------------------------------


class NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def reset(self) -> None:
        pass


class NullGauge:
    __slots__ = ()
    value = None

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def reset(self) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def percentile(self, percentile: float) -> float:
        return 0.0

    def reset(self) -> None:
        pass


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry stand-in for the disabled path: hands out null singletons."""

    __slots__ = ()

    def counter(self, name: str, help: str = "", **labels: str) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: str) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, help: str = "", **options) -> NullHistogram:
        return NULL_HISTOGRAM

    def snapshot(self, *, reset: bool = False) -> dict:
        return empty_snapshot()

    def merge(self, snapshot: Mapping) -> None:
        pass


NULL_REGISTRY = NullRegistry()


# --------------------------------------------------------------------------
# The registry.
# --------------------------------------------------------------------------


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    if not labels:  # hot path: most instruments are unlabelled
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labelled instruments for one process.

    Instruments are created on first request and cached by
    ``(name, labels)``; requesting an existing name with a different
    instrument kind raises, so a metric can never silently change type.
    The registry is the unit of cross-process aggregation: workers
    :meth:`snapshot` theirs (optionally resetting, to produce deltas) and
    the parent :meth:`merge`\\ s the snapshots in any order.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------ instruments
    def _check_kind(self, name: str, kind: str) -> None:
        for registered_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if registered_kind != kind and any(key[0] == name for key in table):
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{registered_kind}, cannot re-register as a {kind}"
                )

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            self._check_kind(name, "counter")
            instrument = self._counters[key] = Counter()
            if help:
                self._help.setdefault(name, help)
        return instrument

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            self._check_kind(name, "gauge")
            instrument = self._gauges[key] = Gauge()
            if help:
                self._help.setdefault(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        *,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        per_decade: int = DEFAULT_PER_DECADE,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            self._check_kind(name, "histogram")
            instrument = self._histograms[key] = Histogram(
                lo=lo, hi=hi, per_decade=per_decade
            )
            if help:
                self._help.setdefault(name, help)
        return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -------------------------------------------------------------- snapshots
    def snapshot(self, *, reset: bool = False) -> dict:
        """Plain-dict (picklable, JSON-serializable) copy of every instrument.

        With ``reset=True`` the registry's instruments are zeroed after the
        copy, so consecutive snapshots are *deltas* — the form worker
        processes ship back, since deltas from any partition of the work
        merge to the serial total.
        """
        snapshot = {
            "counters": [
                {"name": name, "labels": dict(labels), "value": counter.value}
                for (name, labels), counter in self._counters.items()
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": gauge.value}
                for (name, labels), gauge in self._gauges.items()
                if gauge.value is not None
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "lo": histogram.lo,
                    "hi": histogram.hi,
                    "per_decade": histogram.per_decade,
                    "counts": list(histogram.counts),
                    "sum": histogram.sum,
                    "count": histogram.count,
                    "min": histogram.min,
                    "max": histogram.max,
                }
                for (name, labels), histogram in self._histograms.items()
            ],
            "help": dict(self._help),
        }
        if reset:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for histogram in self._histograms.values():
                histogram.reset()
        return snapshot

    def merge(self, snapshot: Mapping) -> None:
        """Fold one snapshot into this registry (see :func:`merge_snapshots`)."""
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry.get("labels", {})).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            value = entry["value"]
            if value is None:
                continue
            gauge = self.gauge(entry["name"], **entry.get("labels", {}))
            if gauge.value is None or value > gauge.value:
                gauge.set(value)
        for entry in snapshot.get("histograms", ()):
            histogram = self.histogram(
                entry["name"],
                lo=entry["lo"],
                hi=entry["hi"],
                per_decade=entry["per_decade"],
                **entry.get("labels", {}),
            )
            if (
                histogram.lo != entry["lo"]
                or histogram.hi != entry["hi"]
                or histogram.per_decade != entry["per_decade"]
            ):
                raise ValueError(
                    f"histogram {entry['name']!r} bucket layout mismatch: "
                    f"registry has (lo={histogram.lo}, hi={histogram.hi}, "
                    f"per_decade={histogram.per_decade}), snapshot has "
                    f"(lo={entry['lo']}, hi={entry['hi']}, "
                    f"per_decade={entry['per_decade']})"
                )
            for index, count in enumerate(entry["counts"]):
                histogram.counts[index] += count
            histogram.sum += entry["sum"]
            histogram.count += entry["count"]
            for bound_name in ("min", "max"):
                value = entry[bound_name]
                if value is None:
                    continue
                current = getattr(histogram, bound_name)
                if current is None:
                    setattr(histogram, bound_name, value)
                elif bound_name == "min":
                    histogram.min = min(current, value)
                else:
                    histogram.max = max(current, value)
        self._help.update(snapshot.get("help", {}))

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


def empty_snapshot() -> dict:
    """The identity element of :func:`merge_snapshots`."""
    return {"counters": [], "gauges": [], "histograms": [], "help": {}}


def merge_snapshots(snapshots: Iterable[Mapping]) -> dict:
    """Fold snapshots into one (associative, commutative, identity = empty).

    Counters and histogram bucket counts/sums add; gauges take the maximum
    (the one reduction of last-written values that is order-independent);
    histogram min/max combine.  Histograms under the same name must share a
    bucket layout — the layouts are part of the instrument's identity.
    """
    accumulator = MetricsRegistry()
    for snapshot in snapshots:
        accumulator.merge(snapshot)
    return accumulator.snapshot()
