"""Bagged (parallel) ensemble of OnlineHD learners.

The paper warns that "a simplistic parallel ensemble of HDC models may
inadvertently escalate the computational costs ... and may not guarantee
robustness": this module implements exactly that strawman so the ablation
benchmark can compare boosting against bagging under the same dimension
budget.  Each learner receives ``total_dim / n_learners`` dimensions and an
independent bootstrap resample of the training data; predictions are combined
by unweighted majority vote.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import BaseClassifier
from ..hdc.onlinehd import OnlineHD
from .partition import IndependentPartitioner, Partitioner

__all__ = ["BaggedHD"]


class BaggedHD(BaseClassifier):
    """Parallel (bagged) ensemble of partitioned OnlineHD learners.

    Parameters mirror :class:`~repro.core.boosthd.BoostHD` so the two can be
    swapped in experiments; the only differences are the absence of sample
    re-weighting and of learner importance weights.
    """

    def __init__(
        self,
        total_dim: int = 1000,
        n_learners: int = 10,
        *,
        lr: float = 0.035,
        epochs: int = 20,
        bootstrap: bool = True,
        bandwidth: float = 1.5,
        partitioner: Partitioner | None = None,
        seed: int | None = None,
    ) -> None:
        if n_learners < 1:
            raise ValueError(f"n_learners must be >= 1, got {n_learners}")
        if total_dim < n_learners:
            raise ValueError(f"total_dim={total_dim} is too small for {n_learners} learners")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.total_dim = int(total_dim)
        self.n_learners = int(n_learners)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.bootstrap = bool(bootstrap)
        self.bandwidth = float(bandwidth)
        self.partitioner = partitioner
        self.seed = seed
        self.learners_: list[OnlineHD] | None = None
        self.classes_: np.ndarray | None = None

    @property
    def learner_dim(self) -> int:
        return self.total_dim // self.n_learners

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "BaggedHD":
        X, y = self._validate_fit_args(X, y)
        weights = self._validate_sample_weight(sample_weight, len(y))
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)

        partitioner = self.partitioner or IndependentPartitioner(
            self.total_dim, self.n_learners, bandwidth=self.bandwidth
        )
        factories = partitioner.encoder_factories(X.shape[1], rng)

        self.learners_ = []
        for factory in factories:
            learner = OnlineHD(
                dim=self.learner_dim,
                lr=self.lr,
                epochs=self.epochs,
                bootstrap=False,
                encoder=factory(),
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                indices = rng.choice(len(y), size=len(y), replace=True, p=weights)
                learner.fit(X[indices], y[indices])
            else:
                learner.fit(X, y, sample_weight=weights)
            self.learners_.append(learner)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Unweighted vote counts per class."""
        self._check_fitted("learners_")
        X = self._validate_predict_args(X)
        scores = np.zeros((len(X), len(self.classes_)))
        for learner in self.learners_:
            predictions = learner.predict(X)
            columns = np.searchsorted(self.classes_, predictions)
            scores[np.arange(len(X)), columns] += 1.0
        return scores / self.n_learners

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
