"""Span-utilization analysis of class hypervectors (Section III, Figure 5).

The paper defines the theoretical subspace utilisation of a set of class
hypervectors ``K ∈ R^{C×D}`` as ``rank(K) / D`` and the *practical* span
utilisation

.. math::

   SP = \\frac{\\mathrm{rank}(K)/D}{\\prod_i \\pi_i}

where the attenuation factors ``π_i`` are "product sums of cosine similarity
values between class hypervectors": highly aligned class hypervectors waste
the space they nominally span.  BoostHD's claim (Figure 5) is that its
concatenated class hypervectors are less mutually aligned — equivalently,
its ``SP`` is larger — than a single OnlineHD model of the same total
dimension.

Because the paper does not pin down the exact form of the ``π_i`` beyond the
description above, this module exposes the individual quantities (rank ratio,
pairwise cosine matrix, attenuation product) so the benchmark can report the
whole decomposition, and uses a concrete, monotone attenuation definition:
``π_i = 1 + Σ_{j≠i} |cos(C_i, C_j)|`` (aligned classes ⇒ larger ``π`` ⇒
smaller ``SP``), which preserves the comparison the figure makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hdc.similarity import pairwise_cosine

__all__ = ["SpanUtilization", "rank_ratio", "attenuation_factors", "span_utilization"]


@dataclass(frozen=True)
class SpanUtilization:
    """Decomposed span-utilization report for one set of class hypervectors."""

    rank: int
    dim: int
    rank_ratio: float
    attenuation: np.ndarray
    attenuation_product: float
    sp: float
    mean_abs_cosine: float

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return (
            f"rank {self.rank}/{self.dim} (ratio {self.rank_ratio:.4g}), "
            f"mean |cos| {self.mean_abs_cosine:.3f}, SP {self.sp:.4g}"
        )


def rank_ratio(class_hypervectors: np.ndarray, *, tolerance: float | None = None) -> float:
    """Numerical rank of the class-hypervector matrix divided by ``D``."""
    matrix = np.atleast_2d(np.asarray(class_hypervectors, dtype=float))
    rank = int(np.linalg.matrix_rank(matrix, tol=tolerance))
    return rank / matrix.shape[1]


def attenuation_factors(class_hypervectors: np.ndarray) -> np.ndarray:
    """Per-class attenuation ``π_i = 1 + Σ_{j≠i} |cos(C_i, C_j)|``.

    Perfectly orthogonal class hypervectors give ``π_i = 1`` (no attenuation);
    strongly aligned ones inflate ``π_i`` and hence shrink ``SP``.
    """
    matrix = np.atleast_2d(np.asarray(class_hypervectors, dtype=float))
    cosines = np.abs(pairwise_cosine(matrix))
    np.fill_diagonal(cosines, 0.0)
    return 1.0 + cosines.sum(axis=1)


def span_utilization(
    class_hypervectors: np.ndarray, *, tolerance: float | None = None
) -> SpanUtilization:
    """Full span-utilization decomposition of a class-hypervector matrix."""
    matrix = np.atleast_2d(np.asarray(class_hypervectors, dtype=float))
    if matrix.shape[0] < 1:
        raise ValueError("need at least one class hypervector")
    dim = matrix.shape[1]
    rank = int(np.linalg.matrix_rank(matrix, tol=tolerance))
    ratio = rank / dim
    attenuation = attenuation_factors(matrix)
    product = float(np.prod(attenuation))
    cosines = np.abs(pairwise_cosine(matrix))
    np.fill_diagonal(cosines, 0.0)
    n_classes = matrix.shape[0]
    mean_abs_cosine = (
        float(cosines.sum() / (n_classes * (n_classes - 1))) if n_classes > 1 else 0.0
    )
    return SpanUtilization(
        rank=rank,
        dim=dim,
        rank_ratio=ratio,
        attenuation=attenuation,
        attenuation_product=product,
        sp=ratio / product,
        mean_abs_cosine=mean_abs_cosine,
    )
