"""Hyperdimensional-space partitioning strategies.

BoostHD's central idea is to split a total hyperdimensional budget
``D_total`` across ``n_learners`` weak learners, each receiving a
``D_total / n_learners``-dimensional subspace.  Two concrete strategies are
provided:

* :class:`IndependentPartitioner` — every weak learner draws its *own*
  random projection of dimension ``D_total / n``.  Because independent
  Gaussian projections of a lower dimension are quasi-orthogonal, this is the
  straightforward reading of the paper and the default.
* :class:`SharedPartitioner` — a single ``D_total`` projection is drawn once
  and weak learner ``i`` is given the contiguous slice
  ``[i·D/n, (i+1)·D/n)`` of it, literally "partitioning" one hyperspace.
  Used by the partitioning ablation.

Both return per-learner encoder factories, so the boosting loop in
:mod:`repro.core.boosthd` does not care which strategy is in force.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from ..hdc.encoder import Encoder, NonlinearEncoder

__all__ = [
    "split_dimensions",
    "Partitioner",
    "IndependentPartitioner",
    "SharedPartitioner",
]


def split_dimensions(total_dim: int, n_learners: int) -> list[int]:
    """Split ``total_dim`` into ``n_learners`` near-equal positive chunks.

    When ``total_dim`` is not divisible by ``n_learners`` the remainder is
    spread over the first learners, so the sum of the chunks always equals
    ``total_dim``.  Raises ``ValueError`` when there are more learners than
    dimensions (each weak learner must own at least one dimension).
    """
    if total_dim < 1:
        raise ValueError(f"total_dim must be >= 1, got {total_dim}")
    if n_learners < 1:
        raise ValueError(f"n_learners must be >= 1, got {n_learners}")
    if n_learners > total_dim:
        raise ValueError(
            f"cannot split {total_dim} dimensions across {n_learners} learners; "
            "every weak learner needs at least one dimension"
        )
    base = total_dim // n_learners
    remainder = total_dim % n_learners
    return [base + 1 if index < remainder else base for index in range(n_learners)]


class Partitioner(ABC):
    """Factory of per-weak-learner encoders over a partitioned hyperspace.

    Subclasses set :attr:`shared_projection` to declare their layout: whether
    the weak learners' encoders are disjoint slices of one ``D_total``
    projection (no stacking needed, the parent basis *is* the fused basis) or
    independent projections that must be stacked block by block.  The fused
    engine (:mod:`repro.engine`) re-derives this structurally from the fitted
    encoders (via :meth:`~repro.hdc.encoder.SlicedEncoder.flatten`), so it
    also handles hand-built models that never went through a partitioner; the
    flag is the partitioner-level statement of the same contract.
    """

    #: True when all weak learners slice a single shared projection matrix.
    shared_projection: bool = False

    def __init__(self, total_dim: int, n_learners: int, *, bandwidth: float = 1.5) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.total_dim = int(total_dim)
        self.n_learners = int(n_learners)
        self.bandwidth = float(bandwidth)
        self.chunk_dims = split_dimensions(self.total_dim, self.n_learners)

    @abstractmethod
    def encoder_factories(
        self, n_features: int, rng: np.random.Generator
    ) -> list[Callable[[], Encoder]]:
        """Return one encoder factory per weak learner."""


class IndependentPartitioner(Partitioner):
    """Each weak learner draws an independent ``D/n``-dimensional projection."""

    shared_projection = False

    def encoder_factories(
        self, n_features: int, rng: np.random.Generator
    ) -> list[Callable[[], Encoder]]:
        factories: list[Callable[[], Encoder]] = []
        for chunk in self.chunk_dims:
            seed = int(rng.integers(0, 2**31 - 1))

            def factory(chunk: int = chunk, seed: int = seed) -> Encoder:
                return NonlinearEncoder(
                    n_features, chunk, bandwidth=self.bandwidth, rng=seed
                )

            factories.append(factory)
        return factories


class SharedPartitioner(Partitioner):
    """Weak learners slice one shared ``D_total``-dimensional projection."""

    shared_projection = True

    def encoder_factories(
        self, n_features: int, rng: np.random.Generator
    ) -> list[Callable[[], Encoder]]:
        seed = int(rng.integers(0, 2**31 - 1))
        parent = NonlinearEncoder(
            n_features, self.total_dim, bandwidth=self.bandwidth, rng=seed
        )
        factories: list[Callable[[], Encoder]] = []
        start = 0
        for chunk in self.chunk_dims:
            stop = start + chunk

            def factory(start: int = start, stop: int = stop) -> Encoder:
                return parent.slice(start, stop)

            factories.append(factory)
            start = stop
        return factories
