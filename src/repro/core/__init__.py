"""BoostHD core: the paper's primary contribution.

Contains the BoostHD boosted ensemble of partitioned OnlineHD weak learners
(Algorithm 1), the bagged-HD strawman it is compared against, the
hyperspace-partitioning strategies, the span-utilization analysis (Figure 5)
and the Marchenko–Pastur kernel theory (Equations 2–7, Figures 2 and 4).
"""

from .bagging import BaggedHD
from .boosthd import BoostHD
from .partition import (
    IndependentPartitioner,
    Partitioner,
    SharedPartitioner,
    split_dimensions,
)
from .span import SpanUtilization, attenuation_factors, rank_ratio, span_utilization
from .theory import (
    KernelSpectrum,
    empirical_spectrum,
    kernel_axis_ratio,
    marchenko_pastur_bounds,
    mean_lambda,
    singular_value_bounds,
    term_convergence_table,
    variance_lambda,
    variance_terms,
)

__all__ = [
    "BaggedHD",
    "BoostHD",
    "IndependentPartitioner",
    "Partitioner",
    "SharedPartitioner",
    "split_dimensions",
    "SpanUtilization",
    "attenuation_factors",
    "rank_ratio",
    "span_utilization",
    "KernelSpectrum",
    "empirical_spectrum",
    "kernel_axis_ratio",
    "marchenko_pastur_bounds",
    "mean_lambda",
    "singular_value_bounds",
    "term_convergence_table",
    "variance_lambda",
    "variance_terms",
]
