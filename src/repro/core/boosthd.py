"""BoostHD: boosting over partitioned hyperdimensional weak learners.

This is the paper's primary contribution (Algorithm 1).  Instead of one
OnlineHD model with a large hyperdimension ``D_total``, BoostHD trains
``n_learners`` OnlineHD weak learners, each operating in a
``D_total / n_learners``-dimensional subspace, sequentially with
AdaBoost-style sample re-weighting:

1. initialise uniform sample weights ``W_s``;
2. for each learner ``i``: fit on the weighted data, compute the weighted
   error rate ``e_i``, assign the learner importance ``α_i`` and up-weight
   the samples it misclassified;
3. at inference, every learner votes (or contributes its similarity scores)
   scaled by ``α_i`` and the arg-max class wins — learners are independent at
   this point, so inference parallelises even though training is sequential.

Because of that independence, a fitted ensemble can be *compiled* into the
fused batch-inference engine (:mod:`repro.engine`) via :meth:`BoostHD.compile`:
all weak-learner projections stack into one matrix, the batch is encoded once,
and ensemble scores come from a single block-diagonal-aware matmul.  The
compiled path is the fast production route; the per-learner loop in
:meth:`BoostHD.decision_function` remains the reference implementation the
engine is tested against.

Training applies the same fusion (:mod:`repro.engine.train`): although the
boosting loop is sequential in the *sample weights*, the weak learners'
encoders are fixed up front, so :meth:`fit` and :meth:`partial_fit` encode
the training matrix once through a stacked ``(n, f) @ (f, D_total)``
projection and each learner trains on its pre-encoded slice — bit-identical
to per-learner encoding (a shared-projection partitioner encodes literally
once), with the adaptive passes themselves running the exact fast kernel or,
with ``batch_size`` set, the vectorised mini-batch trainer.

The paper's pseudocode writes the importance update loosely (``α = W_s · e``,
``W ← e^{α(y≠ŷ)}/ΣW``); this implementation uses the standard multi-class
SAMME weighting (``α = ln((1-e)/e) + ln(K-1)``), which is the conventional
realisation of that scheme and matches the behaviour the evaluation reports
(weak learners that err more receive less voting weight, hard samples receive
more training attention).
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import BaseClassifier
from ..hdc.onlinehd import OnlineHD
from .partition import IndependentPartitioner, Partitioner

__all__ = ["BoostHD", "effective_alphas"]

#: Below this per-learner average the ensemble is considered degenerate:
#: every learner was worse than chance and received the 1e-10 sentinel weight.
_DEGENERATE_MEAN_ALPHA = 1e-8


def effective_alphas(alphas: np.ndarray) -> tuple[np.ndarray, float]:
    """Learner weights and normaliser actually used at inference time.

    Normally returns ``(alphas, sum(alphas))``.  When *every* learner was
    worse than chance, the stored importances are all the ``1e-10`` sentinel;
    dividing the aggregated scores by their ~1e-9 sum would amplify
    floating-point noise by nine orders of magnitude.  In that degenerate case
    the ensemble falls back to a plain unweighted average: uniform weights
    ``1/n`` with normaliser ``1.0``.

    Shared by :meth:`BoostHD.decision_function` and the fused engine
    (:mod:`repro.engine`) so both paths stay equivalent by construction.
    """
    alphas = np.asarray(alphas, dtype=float)
    n_learners = max(len(alphas), 1)
    total = float(alphas.sum())
    if total <= _DEGENERATE_MEAN_ALPHA * n_learners:
        return np.full(len(alphas), 1.0 / n_learners), 1.0
    return alphas, total


class BoostHD(BaseClassifier):
    """Boosted ensemble of partitioned OnlineHD weak learners.

    Parameters
    ----------
    total_dim:
        Total hyperdimensional budget ``D_total`` split across the ensemble.
    n_learners:
        Number of weak learners ``N_L`` (paper: 10).  Each receives
        ``total_dim / n_learners`` dimensions.
    lr:
        OnlineHD learning rate for every weak learner (paper: 0.035).
    epochs:
        Adaptive refinement epochs per weak learner.
    bootstrap:
        Weak learners resample the training set according to the boosting
        weights (paper configuration).  With ``False`` the weights scale the
        OnlineHD updates instead.
    batch_size:
        ``None`` (default) trains every weak learner with the exact
        per-sample pass (bit-identical to the reference implementation).  A
        positive integer opts the whole ensemble into vectorised mini-batch
        training (see :class:`~repro.hdc.OnlineHD`).
    aggregation:
        ``"score"`` (default) — weighted sum of weak-learner similarity
        scores; ``"vote"`` — weighted majority vote over weak-learner
        predictions (the literal reading of Algorithm 1).  The ablation
        benchmark compares the two.
    uniform_blend:
        Fraction of uniform weight mixed into the boosting sample weights
        before training each weak learner (``0`` = pure AdaBoost weighting,
        ``1`` = every learner sees the original distribution).  The paper
        stresses that "the performance of weak learners must be assured";
        an HDC weak learner trained on a heavily concentrated distribution
        forgets the easy structure entirely, so a 0.5 blend keeps the weak
        learners globally competent while still emphasising hard samples.
        The learner importances and weight updates always use the pure
        boosting weights.
    bandwidth:
        Kernel bandwidth forwarded to every weak learner's encoder.
    partitioner:
        Partitioning strategy; defaults to independent per-learner
        projections (:class:`~repro.core.partition.IndependentPartitioner`).
    learning_rate:
        Shrinkage applied to each learner importance ``α_i``.
    seed:
        Seed for encoders, resampling and weak-learner initialisation.
    """

    def __init__(
        self,
        total_dim: int = 1000,
        n_learners: int = 10,
        *,
        lr: float = 0.035,
        epochs: int = 20,
        bootstrap: bool = True,
        batch_size: int | None = None,
        aggregation: str = "score",
        uniform_blend: float = 0.5,
        bandwidth: float = 1.5,
        partitioner: Partitioner | None = None,
        learning_rate: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if n_learners < 1:
            raise ValueError(f"n_learners must be >= 1, got {n_learners}")
        if total_dim < n_learners:
            raise ValueError(
                f"total_dim={total_dim} is too small for {n_learners} learners"
            )
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 or None, got {batch_size}")
        if aggregation not in ("vote", "score"):
            raise ValueError(f"aggregation must be 'vote' or 'score', got {aggregation!r}")
        if not 0.0 <= uniform_blend <= 1.0:
            raise ValueError(f"uniform_blend must be in [0, 1], got {uniform_blend}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.total_dim = int(total_dim)
        self.n_learners = int(n_learners)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.bootstrap = bool(bootstrap)
        self.batch_size = None if batch_size is None else int(batch_size)
        self.aggregation = aggregation
        self.uniform_blend = float(uniform_blend)
        self.bandwidth = float(bandwidth)
        self.partitioner = partitioner
        self.learning_rate = float(learning_rate)
        self.seed = seed
        self.learners_: list[OnlineHD] | None = None
        self.learner_weights_: np.ndarray | None = None
        self.learner_errors_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    # ------------------------------------------------------------ properties
    @property
    def learner_dim(self) -> int:
        """Dimensionality ``D_total / N_L`` of each weak learner (floor)."""
        return self.total_dim // self.n_learners

    def _fused_encoding_enabled(self, n_samples: int, shared: bool) -> bool:
        """Whether to hold the full ensemble encoding for this batch size.

        The fused path retains every learner's ``(n, d_i)`` block for the
        whole boosting loop — ``n x total_dim`` doubles plus the stacked
        projection transient, where the legacy loop peaked at one block at a
        time.  Above the training engine's memory budget the fit falls back
        to per-learner encoding (identical bits, legacy memory profile).
        Shared-projection layouts always fuse: the legacy path materialises
        the full parent encoding once *per learner*, so encoding the root
        once strictly reduces both compute and peak memory.
        """
        if shared:
            return True
        from ..engine.train.encoding import STACKED_BUDGET_BYTES

        retained = 2 * n_samples * self.total_dim * np.dtype(np.float64).itemsize
        return retained <= STACKED_BUDGET_BYTES

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        *,
        trainer: str | None = None,
    ) -> "BoostHD":
        """Fit the boosted ensemble (Algorithm 1).

        Training runs on the fused training engine: the whole ensemble's
        projections are evaluated in one stacked matmul
        (:func:`repro.engine.train.encode_ensemble` — a shared-projection
        partitioner encodes literally once) and every weak learner fits and
        is error-estimated on its pre-encoded slice, bit-identical to each
        learner encoding on its own.  ``trainer`` forwards to
        :meth:`repro.hdc.OnlineHD.fit`; ``"reference"`` additionally
        disables the fused encoding, reproducing the original per-learner
        path for equivalence testing.
        """
        from ..engine.train import resolve_trainer

        X, y = self._validate_fit_args(X, y)
        sample_weights = self._validate_sample_weight(sample_weight, len(y))
        # Resolve/validate up front: a bad trainer argument must not cost a
        # full ensemble encoding before it is rejected.
        trainer = resolve_trainer(trainer, self.batch_size)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)

        partitioner = self.partitioner or IndependentPartitioner(
            self.total_dim, self.n_learners, bandwidth=self.bandwidth
        )
        factories = partitioner.encoder_factories(X.shape[1], rng)
        # Building every encoder up front (factories hold their own seeds, so
        # the rng stream is untouched) lets the training engine encode the
        # whole ensemble in one stacked projection matmul.
        encoders = [factory() for factory in factories]
        fused = trainer != "reference" and self._fused_encoding_enabled(
            len(y), bool(getattr(partitioner, "shared_projection", False))
        )
        if not fused:
            encoded_blocks: list[np.ndarray | None] = [None] * len(encoders)
        else:
            from ..engine.train.encoding import encode_ensemble

            encoded_blocks = list(encode_ensemble(encoders, X).blocks)

        uniform = np.full(len(y), 1.0 / len(y))
        learners: list[OnlineHD] = []
        alphas: list[float] = []
        errors: list[float] = []
        for encoder, encoded in zip(encoders, encoded_blocks):
            learner = OnlineHD(
                dim=self.learner_dim,
                lr=self.lr,
                epochs=self.epochs,
                bootstrap=self.bootstrap,
                batch_size=self.batch_size,
                encoder=encoder,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            training_weights = (
                self.uniform_blend * uniform + (1.0 - self.uniform_blend) * sample_weights
            )
            learner.fit(
                X, y, sample_weight=training_weights, encoded=encoded,
                trainer=trainer,
            )
            if encoded is None:
                predictions = learner.predict(X)
            else:
                predictions = learner.predict_encoded(encoded)
            incorrect = predictions != y
            error = float(np.clip(np.sum(sample_weights * incorrect), 1e-10, 1.0 - 1e-10))

            if error >= 1.0 - 1.0 / n_classes:
                # Worse than chance: keep it with negligible weight so the
                # ensemble size stays as requested, but do not let it distort
                # the sample distribution.
                learners.append(learner)
                alphas.append(1e-10)
                errors.append(error)
                continue

            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(max(n_classes - 1.0, 1.0 + 1e-12))
            )
            learners.append(learner)
            alphas.append(float(alpha))
            errors.append(error)

            # Up-weight misclassified samples and renormalise (Algorithm 1).
            sample_weights = sample_weights * np.exp(alpha * incorrect)
            sample_weights = sample_weights / sample_weights.sum()

        self.learners_ = learners
        self.learner_weights_ = np.asarray(alphas)
        self.learner_errors_ = np.asarray(errors)
        return self

    # ---------------------------------------------------------- partial_fit
    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        *,
        trainer: str | None = None,
    ) -> "BoostHD":
        """One incremental adaptive epoch on every weak learner.

        Applies :meth:`repro.hdc.OnlineHD.partial_fit` to each fitted weak
        learner — the serving layer's online-adaptation primitive
        (:mod:`repro.serving.adaptation`).  The feedback batch is encoded
        once for the whole ensemble
        (:func:`repro.engine.train.encode_ensemble`) and each learner adapts
        on its pre-encoded slice, so a feedback step costs one stacked
        projection instead of ``n_learners`` separate encodes.  The boosting
        importances ``alpha_i`` are *not* re-estimated: they encode
        training-time competence, and re-weighting from an incremental
        trickle of feedback would be far noisier than the adaptive updates
        themselves.  Labels unseen at fit time grow every learner (and
        ``classes_``) with a zero-initialised class hypervector.
        """
        from ..engine.train import resolve_trainer
        from ..hdc.encoder import SlicedEncoder

        self._check_fitted("learners_")
        trainer = resolve_trainer(trainer, self.batch_size)
        shared = all(
            isinstance(learner.encoder, SlicedEncoder) for learner in self.learners_
        )
        fused = trainer != "reference" and self._fused_encoding_enabled(
            len(np.asarray(y)), shared
        )
        if not fused:
            encoded_blocks: list[np.ndarray | None] = [None] * len(self.learners_)
        else:
            from ..engine.train.encoding import encode_ensemble

            X_validated, _ = self._validate_fit_args(X, y)
            encoded_blocks = list(
                encode_ensemble(
                    [learner.encoder for learner in self.learners_], X_validated
                ).blocks
            )
        for learner, encoded in zip(self.learners_, encoded_blocks):
            learner.partial_fit(
                X, y, sample_weight=sample_weight, encoded=encoded,
                trainer=trainer,
            )
        combined = np.union1d(self.classes_, self.learners_[0].classes_)
        if len(combined) != len(self.classes_):
            self.classes_ = combined
        return self

    # ------------------------------------------------------------ inference
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Aggregated per-class score, shape ``(n_samples, n_classes)``."""
        self._check_fitted("learners_")
        X = self._validate_predict_args(X)
        scores = np.zeros((len(X), len(self.classes_)))
        alphas, total_alpha = effective_alphas(self.learner_weights_)
        for learner, alpha in zip(self.learners_, alphas):
            if self.aggregation == "vote":
                predictions = learner.predict(X)
                columns = np.searchsorted(self.classes_, predictions)
                scores[np.arange(len(X)), columns] += alpha
            else:
                learner_scores = learner.decision_function(X)
                columns = np.searchsorted(self.classes_, learner.classes_)
                scores[:, columns] += alpha * learner_scores
        return scores / total_alpha

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Normalised aggregated scores (softmax), for API parity."""
        scores = self.decision_function(X)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exponent = np.exp(shifted)
        return exponent / exponent.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def compile(self, **options):
        """Compile the fitted ensemble into a fused batch scorer.

        Returns a :class:`repro.engine.CompiledModel` whose ``predict`` /
        ``decision_function`` match this model's loop path (same aggregation
        semantics, scores equal to floating-point tolerance) while encoding
        each batch once through a stacked projection.  Keyword ``options``
        (``dtype``, ``chunk_size``, ``cache_size``, ``precision``) are
        forwarded to :func:`repro.engine.compile_model`;
        ``precision="bipolar-packed"`` / ``"fixed16"`` / ``"fixed8"``
        selects the integer-domain engines of :mod:`repro.engine.quant`.
        """
        from ..engine import compile_model

        return compile_model(self, **options)

    # -------------------------------------------------------------- analysis
    def class_hypervectors(self) -> np.ndarray:
        """Concatenate weak-learner class hypervectors into a ``D_total`` model.

        The concatenation (one block of ``D/n`` dimensions per weak learner)
        is the ensemble-level class representation used by the span-utilization
        analysis (Figure 5): BoostHD's blocks are trained on different sample
        weightings, so the concatenated class hypervectors are less mutually
        aligned than a single OnlineHD model of the same total dimension.
        """
        self._check_fitted("learners_")
        blocks = []
        for learner in self.learners_:
            block = np.zeros((len(self.classes_), learner.class_hypervectors_.shape[1]))
            rows = np.searchsorted(self.classes_, learner.classes_)
            block[rows] = learner.class_hypervectors_
            blocks.append(block)
        return np.hstack(blocks)
