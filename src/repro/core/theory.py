"""Marchenko–Pastur analysis of the HDC encoding kernel (Eqs. 2–7, Figs. 2 & 4).

The paper analyses the Gaussian random-projection kernel ``k_{i,j} ~ N(0, 1)``
of shape ``(N_r, N_c) = (D, features)`` through the Marchenko–Pastur (MP)
distribution of its singular-value spectrum, with aspect ratio
``q = N_c / N_r``.  The key quantities:

* **MP support** — the squared singular values (eigenvalues of the sample
  covariance) lie in ``[λ⁻, λ⁺] = [σ²(1 − √q)², σ²(1 + √q)²]``.
* **Equation 2** — the mean singular value grows like
  ``µ_λ ∼ (λ_max − λ_min)^{3/2} / (3πq)``.
* **Equation 3** — the variance ``σ²_λ`` decomposes into three terms (T1, T2,
  T3 — Equations 4–6) which each converge to a constant as ``q → ∞``
  (Figure 2), so the spread of the spectrum stays bounded while its mean
  grows with ``D``.
* **Consequence (Figure 4)** — the ratio of minor to major axis of the kernel
  ellipsoid, ``A_S / A_L = λ_min / λ_max``, approaches 1 as the dimension
  grows: the kernel becomes "circular" and the encoded data spreads uniformly
  instead of exploiting the structure of the input, which is the paper's
  argument for why moderate per-learner dimensions utilise the space better.

The functions below provide both the analytic expressions and empirical
spectra of actual encoders so the theory can be checked against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "marchenko_pastur_bounds",
    "singular_value_bounds",
    "mean_lambda",
    "variance_terms",
    "variance_lambda",
    "kernel_axis_ratio",
    "KernelSpectrum",
    "empirical_spectrum",
    "term_convergence_table",
]


def marchenko_pastur_bounds(q: float, sigma: float = 1.0) -> tuple[float, float]:
    """Support ``[λ⁻, λ⁺]`` of the MP distribution of squared singular values.

    ``q`` is the aspect ratio ``N_c / N_r`` and ``sigma`` the entry standard
    deviation (1 for the paper's N(0, 1) kernel).
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    sqrt_q = np.sqrt(q)
    lower = sigma**2 * (1.0 - sqrt_q) ** 2
    upper = sigma**2 * (1.0 + sqrt_q) ** 2
    return float(lower), float(upper)


def singular_value_bounds(q: float, sigma: float = 1.0) -> tuple[float, float]:
    """Bounds ``[λ_min, λ_max]`` on the singular values themselves (√ of MP support)."""
    lower, upper = marchenko_pastur_bounds(q, sigma)
    return float(np.sqrt(lower)), float(np.sqrt(upper))


def mean_lambda(q: float, sigma: float = 1.0) -> float:
    """Equation 2: ``µ_λ ≈ (λ_max − λ_min)^{3/2} / (3πq)``."""
    lam_min, lam_max = singular_value_bounds(q, sigma)
    return float((lam_max - lam_min) ** 1.5 / (3.0 * np.pi * q))


def variance_terms(q: float, sigma: float = 1.0) -> tuple[float, float, float]:
    """The three terms T1, T2, T3 of Equation 3 (before the 1/(2πσ²) prefactor).

    * T1 = (λ_max² − λ_min²) / 2 / q            (Equation 4 studies its limit)
    * T2 = −2 µ (λ_max − λ_min) / q             (Equation 5 → 0)
    * T3 = µ² (ln|λ_max| − ln|λ_min|) / q       (Equation 6 → 0)
    """
    lam_min, lam_max = singular_value_bounds(q, sigma)
    mu = mean_lambda(q, sigma)
    term1 = 0.5 * (lam_max**2 - lam_min**2) / q
    term2 = -2.0 * mu * (lam_max - lam_min) / q
    # Guard the logarithm: at q = 1 the lower edge is exactly zero.
    safe_min = max(lam_min, 1e-12)
    term3 = mu**2 * (np.log(abs(lam_max)) - np.log(abs(safe_min))) / q
    return float(term1), float(term2), float(term3)


def variance_lambda(q: float, sigma: float = 1.0) -> float:
    """Equation 3: ``σ²_λ`` as the prefactored sum of T1 + T2 + T3."""
    term1, term2, term3 = variance_terms(q, sigma)
    return float((term1 + term2 + term3) / (2.0 * np.pi * sigma**2))


def kernel_axis_ratio(q: float, sigma: float = 1.0) -> float:
    """Minor/major axis ratio ``A_S / A_L = λ_min / λ_max`` of the kernel ellipsoid.

    Note that with ``q = N_c / N_r`` and a *fixed* number of input features
    ``N_c``, growing the hyperdimension ``D = N_r`` drives ``q → 0`` and this
    ratio toward 1 — the "circular" regime the paper associates with wasted
    space (Figure 4).
    """
    lam_min, lam_max = singular_value_bounds(q, sigma)
    if lam_max == 0:
        return 1.0
    return float(lam_min / lam_max)


@dataclass(frozen=True)
class KernelSpectrum:
    """Empirical singular-value spectrum of an encoder projection matrix."""

    singular_values: np.ndarray
    q: float
    mean: float
    variance: float
    axis_ratio: float


def empirical_spectrum(projection: np.ndarray) -> KernelSpectrum:
    """Singular-value statistics of a concrete projection matrix.

    ``projection`` has shape ``(N_r, N_c) = (D, features)``; the aspect ratio
    reported is ``q = N_c / N_r`` following the paper's convention.
    """
    matrix = np.asarray(projection, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("projection must be a 2-D matrix")
    n_rows, n_cols = matrix.shape
    singular_values = np.linalg.svd(matrix / np.sqrt(n_rows), compute_uv=False)
    return KernelSpectrum(
        singular_values=singular_values,
        q=n_cols / n_rows,
        mean=float(np.mean(singular_values)),
        variance=float(np.var(singular_values)),
        axis_ratio=float(singular_values.min() / singular_values.max()),
    )


def term_convergence_table(
    q_values: np.ndarray | None = None, sigma: float = 1.0
) -> dict[str, np.ndarray]:
    """The Figure 2 sweep: T1, T2, T3 evaluated over a grid of ``q`` values.

    Returns a dictionary with keys ``q``, ``T1``, ``T2``, ``T3`` ready for
    tabulation; the experiment checks that T2 and T3 vanish and T1 converges
    to a constant as ``q`` grows (Equations 4–7).
    """
    if q_values is None:
        q_values = np.linspace(1.0, 100.0, 100)
    q_values = np.asarray(q_values, dtype=float)
    if np.any(q_values <= 0):
        raise ValueError("all q values must be positive")
    terms = np.array([variance_terms(float(q), sigma) for q in q_values])
    return {
        "q": q_values,
        "T1": terms[:, 0],
        "T2": terms[:, 1],
        "T3": terms[:, 2],
    }
